//! Quickstart: bring up a ParBlockchain (OXII) cluster, push a small
//! accounting workload through it, and print what happened.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::time::Duration;

use parblockchain::{run, ClusterSpec, LoadSpec, SystemKind};

fn main() {
    // A paper-like cluster: 3 orderers running the Kafka-like quorum
    // sequencer, 3 applications with one executor (agent) each, one
    // passive peer, 200-transaction blocks.
    let mut spec = ClusterSpec::new(SystemKind::Oxii);
    spec.workload.contention = 0.2; // 20 % of each block conflicts

    let load = LoadSpec {
        rate_tps: 2_000.0,
        duration: Duration::from_secs(2),
        drain: Duration::from_millis(800),
        ..LoadSpec::default()
    };

    println!("starting OXII cluster: {} orderers, {} apps, block size {}",
        spec.orderers, spec.apps, spec.block_cut.max_txns);
    let report = run(&spec, &load);

    println!("blocks processed : {}", report.blocks);
    println!("committed        : {}", report.committed);
    println!("aborted          : {}", report.aborted);
    println!("throughput       : {:.0} tx/s", report.throughput_tps());
    println!("avg latency      : {:.2} ms", report.avg_latency().as_secs_f64() * 1e3);
    println!(
        "p95 latency      : {:.2} ms",
        report.latency_percentile(0.95).as_secs_f64() * 1e3
    );

    assert!(report.committed > 0, "the cluster should commit transactions");
}
