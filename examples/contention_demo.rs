//! Contention demo: the paper's headline claim, live.
//!
//! Runs the same contended workload through all three paradigms and
//! prints a side-by-side comparison. Expect: OX indifferent to contention
//! but slow; XOV fast at 0 % and collapsing as contention grows (aborts);
//! OXII fast at 0 % and degrading gracefully with no aborts.
//!
//! ```sh
//! cargo run --release --example contention_demo
//! ```

use std::time::Duration;

use parblockchain::{run, ClusterSpec, LoadSpec, SystemKind};

fn main() {
    let load = LoadSpec {
        rate_tps: 2_000.0,
        duration: Duration::from_millis(1500),
        drain: Duration::from_millis(800),
        ..LoadSpec::default()
    };

    println!(
        "{:<8} {:>11} {:>10} {:>9} {:>9} {:>12}",
        "system", "contention", "committed", "aborted", "tx/s", "avg latency"
    );
    for contention in [0.0, 0.2, 0.8, 1.0] {
        for system in [SystemKind::Ox, SystemKind::Xov, SystemKind::Oxii] {
            let mut spec = ClusterSpec::new(system);
            spec.workload.contention = contention;
            let report = run(&spec, &load);
            println!(
                "{:<8} {:>10.0}% {:>10} {:>9} {:>9.0} {:>9.2} ms",
                system.to_string(),
                contention * 100.0,
                report.committed,
                report.aborted,
                report.throughput_tps(),
                report.avg_latency().as_secs_f64() * 1e3,
            );
        }
        println!();
    }
}
