//! Hotspot workload demo: beyond the paper's exact contention dial, this
//! reproduction ships a Zipf-skewed hot-key workload (the access pattern
//! of "a few popular records"). The demo compares OXII and XOV as the
//! hot fraction grows.
//!
//! ```sh
//! cargo run --release --example hotspot
//! ```

use std::time::Duration;

use parblockchain::{run, ClusterSpec, LoadSpec, SystemKind};
use parblockchain_repro::workload::HotspotConfig;

fn main() {
    let load = LoadSpec {
        rate_tps: 1_500.0,
        duration: Duration::from_millis(1500),
        drain: Duration::from_millis(800),
        ..LoadSpec::default()
    };

    println!(
        "{:<10} {:<8} {:>9} {:>9} {:>12}",
        "hot frac", "system", "tx/s", "aborted", "avg latency"
    );
    for fraction in [0.1, 0.3, 0.6] {
        for system in [SystemKind::Xov, SystemKind::Oxii] {
            let mut spec = ClusterSpec::new(system);
            spec.workload.hotspot = Some(HotspotConfig {
                keys: 16,
                exponent: 1.0,
                fraction,
            });
            let report = run(&spec, &load);
            println!(
                "{:<10.1} {:<8} {:>9.0} {:>9} {:>9.2} ms",
                fraction,
                system.to_string(),
                report.throughput_tps(),
                report.aborted,
                report.avg_latency().as_secs_f64() * 1e3,
            );
        }
        println!();
    }
}
