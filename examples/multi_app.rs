//! Multi-application demo: dependency graphs across applications
//! (Fig 4 of the paper) exercised directly through the library API —
//! build a block by hand, inspect its graph, and watch the executor-side
//! scheduling order.
//!
//! ```sh
//! cargo run --release --example multi_app
//! ```

use parblockchain_repro::contracts::{AccountingContract, AccountingOp, EscrowContract, EscrowOp};
use parblockchain_repro::depgraph::{
    ComponentKind, DependencyGraph, DependencyMode, ExecutionLayers, GraphComponents, ReadyTracker,
};
use parblockchain_repro::types::{AppId, Block, BlockNumber, ClientId, Hash32, Key};

fn main() {
    // Two applications sharing a datastore: an accounting app (A0) and an
    // escrow app (A1) whose escrows debit the *same* accounts.
    let accounting = AccountingContract::new(AppId(0));
    let escrow = EscrowContract::new(AppId(1));

    let txs = vec![
        // T0 (A0): fund transfer 1 → 2.
        accounting.transaction(
            ClientId(1),
            0,
            &AccountingOp::Transfer { from: Key(1), to: Key(2), amount: 10 },
        ),
        // T1 (A1): open an escrow debiting account 2 — depends on T0.
        escrow.transaction(
            ClientId(2),
            0,
            &EscrowOp::Open { escrow: Key(100), buyer: Key(2), seller: Key(3), amount: 5 },
        ),
        // T2 (A0): unrelated transfer 4 → 5, fully parallel.
        accounting.transaction(
            ClientId(1),
            1,
            &AccountingOp::Transfer { from: Key(4), to: Key(5), amount: 1 },
        ),
        // T3 (A1): release the escrow to the seller — depends on T1.
        escrow.transaction(
            ClientId(2),
            1,
            &EscrowOp::Release { escrow: Key(100), seller: Key(3) },
        ),
    ];
    let block = Block::new(BlockNumber(1), Hash32::ZERO, txs);
    let graph = DependencyGraph::build(&block, DependencyMode::Full);

    println!("block of {} transactions, {} dependency edges", block.len(), graph.edge_count());
    println!("{}", graph.to_dot());

    let components = GraphComponents::compute(&graph);
    match components.classify(&graph) {
        ComponentKind::SingleApp => println!("Fig 4(a): single application"),
        ComponentKind::AppDisjoint => println!("Fig 4(b): apps independent"),
        ComponentKind::CrossApp => {
            println!("Fig 4(c): cross-application dependencies — agents must exchange commit messages mid-block")
        }
    }

    let layers = ExecutionLayers::compute(&graph);
    println!(
        "critical path {} of {} transactions (max parallelism {})",
        layers.critical_path(),
        block.len(),
        layers.max_width()
    );

    // Walk the executor-side schedule.
    let mut tracker = ReadyTracker::new(&graph);
    let mut wave = 0;
    loop {
        let ready = tracker.take_ready();
        if ready.is_empty() {
            break;
        }
        wave += 1;
        let labels: Vec<String> = ready
            .iter()
            .map(|s| format!("T{}({})", s.0, graph.app_of(*s)))
            .collect();
        println!("wave {wave}: execute {} in parallel", labels.join(", "));
        for seq in ready {
            tracker.complete(seq);
        }
    }
    assert!(tracker.is_done());
}
