//! Geo-distribution demo (the paper's Fig 7 scenario): move one node
//! group to a far datacenter and watch who pays for it.
//!
//! XOV suffers most when *clients* move (its clients participate in the
//! endorsement round-trip); OXII is unaffected when *non-executors* move
//! (they only receive state updates).
//!
//! ```sh
//! cargo run --release --example geo_distributed
//! ```

use std::time::Duration;

use parblockchain::{run, ClusterSpec, LoadSpec, MovedGroup, SystemKind};

fn main() {
    let load = LoadSpec {
        rate_tps: 1_000.0,
        duration: Duration::from_millis(1500),
        drain: Duration::from_secs(1),
        ..LoadSpec::default()
    };

    let moves: [(&str, Option<MovedGroup>); 3] = [
        ("all nodes local", None),
        ("clients far", Some(MovedGroup::Clients)),
        ("non-executors far", Some(MovedGroup::NonExecutors)),
    ];

    println!(
        "{:<20} {:<8} {:>9} {:>12}",
        "placement", "system", "tx/s", "avg latency"
    );
    for (label, moved) in moves {
        for system in [SystemKind::Xov, SystemKind::Oxii] {
            let mut spec = ClusterSpec::new(system);
            spec.topology.moved = moved;
            spec.topology.inter = Duration::from_millis(10);
            let report = run(&spec, &load);
            println!(
                "{:<20} {:<8} {:>9.0} {:>9.2} ms",
                label,
                system.to_string(),
                report.throughput_tps(),
                report.avg_latency().as_secs_f64() * 1e3,
            );
        }
        println!();
    }
}
