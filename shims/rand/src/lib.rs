//! Offline API-subset shim for `rand` 0.8.
//!
//! Implements exactly the surface the workspace uses — [`rngs::StdRng`]
//! seeded via [`SeedableRng::seed_from_u64`], [`Rng::gen`] /
//! [`Rng::gen_range`] / [`Rng::gen_bool`], and
//! [`seq::SliceRandom::shuffle`] — over a SplitMix64 generator. The
//! simulations only need a fast, deterministic, well-mixed uniform
//! source; they make no statistical claims that distinguish SplitMix64
//! from the real crate's ChaCha-based `StdRng`. Seeded runs are
//! reproducible within this shim (not bit-compatible with upstream).
//! See DESIGN.md §8 for the shim policy.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform `u64` source.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`] (including `&mut R`, which keeps `R: Rng + ?Sized`
/// call-sites working as with the real crate).
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution of `T`.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        distributions::Distribution::sample(&distributions::Standard, self)
    }

    /// Samples uniformly from `range`. Panics on an empty range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                // Span may overflow the target type (e.g. 0..=MAX); widen.
                let span = (end as u128 - start as u128) + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % span as u64) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

/// The generators provided by the shim.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64: tiny, fast, passes BigCrush for this use.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Pre-mix so nearby seeds do not start in nearby states.
            let mut rng = StdRng {
                state: seed ^ 0x1F12_3BB5_159A_55E5,
            };
            let _ = rng.next_u64();
            rng
        }
    }
}

/// Standard distributions for [`Rng::gen`].
pub mod distributions {
    use super::{Rng, RngCore};

    /// The distribution used by [`Rng::gen`].
    pub struct Standard;

    /// A distribution over values of `T`.
    pub trait Distribution<T> {
        /// Draws one sample.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    impl Distribution<f64> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 uniform mantissa bits in [0, 1).
            (RngCore::next_u64(rng) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
            (RngCore::next_u64(rng) >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
            RngCore::next_u64(rng) & 1 == 1
        }
    }

    macro_rules! impl_standard_uint {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                    RngCore::next_u64(rng) as $t
                }
            }
        )*};
    }

    impl_standard_uint!(u8, u16, u32, u64, usize);
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Extension trait for slices: in-place Fisher–Yates shuffle.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w: u8 = rng.gen_range(0u8..=255);
            let _ = w; // full domain: any value is valid
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }
}
