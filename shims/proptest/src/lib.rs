//! Offline API-subset shim for `proptest`.
//!
//! Implements the strategy combinators and macros the workspace's
//! property tests use: integer range strategies, tuples, `prop_map`,
//! `any::<T>()`, `collection::{vec, btree_set}`, the [`proptest!`] test
//! macro with `#![proptest_config(...)]`, and the `prop_assert*` family.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking, no input echo.** A failing case panics with the
//!   test name, case index, and assertion message; the generated
//!   inputs are not printed or minimized. Inputs can be replayed: the
//!   stream is a pure function of the test name (below).
//! * **Derandomized.** Each test's input stream is seeded from its
//!   function name, so failures reproduce across runs without a
//!   persistence file.
//!
//! Both are acceptable here because the suites assert genuine invariants
//! expected to hold for *all* inputs. See DESIGN.md §8 for the shim
//! policy.

use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Per-test configuration consumed by [`proptest!`].
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Failure raised by the `prop_assert*` macros inside a property body.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Wraps a failure message.
    #[must_use]
    pub fn fail(message: String) -> Self {
        TestCaseError { message }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Result type of a property body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// The RNG driving generation (deterministic per test).
pub type TestRng = StdRng;

/// Builds the deterministic RNG for a named test.
#[must_use]
pub fn test_rng(test_name: &str) -> TestRng {
    // FNV-1a over the name: stable, collision-tolerant (streams only
    // need to differ, not be cryptographic).
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    StdRng::seed_from_u64(hash)
}

/// A generator of values for property tests.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `map`.
    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map {
            strategy: self,
            map,
        }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    strategy: S,
    map: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.strategy.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as u128 - start as u128) + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % span as u64) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0);
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
}

/// Types with a canonical whole-domain strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> i64 {
        rng.next_u64() as i64
    }
}

/// Strategy returned by [`any`].
pub struct Any<T> {
    _marker: PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: PhantomData,
    }
}

/// Collection strategies (`vec`, `btree_set`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::RngCore;
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive size bounds for a generated collection.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl SizeRange {
        fn pick(self, rng: &mut TestRng) -> usize {
            let span = (self.hi - self.lo) as u64 + 1;
            self.lo + (rng.next_u64() % span) as usize
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `Vec` strategy.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy for `BTreeSet<S::Value>`.
    ///
    /// Duplicate draws shrink the set below the drawn target size (the
    /// real crate retries harder); minimum sizes above 0 are therefore
    /// only best-effort, matching how the workspace uses it (`0..n`).
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.pick(rng);
            let mut set = BTreeSet::new();
            let mut attempts = 0;
            while set.len() < target && attempts < target * 4 + 8 {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }

    /// A `BTreeSet` strategy.
    pub fn btree_set<S: Strategy>(
        element: S,
        size: impl Into<SizeRange>,
    ) -> BTreeSetStrategy<S> {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Everything a property-test file conventionally glob-imports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy, TestCaseError, TestCaseResult,
    };
}

/// Declares property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///
///     #[test]
///     fn my_property(x in 0u64..100, flag in any::<bool>()) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($config:expr)] $($rest:tt)* ) => {
        $crate::proptest!(@impl ($config); $($rest)*);
    };
    ( @impl ($config:expr);
      $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strategy:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    $(let $pat = $crate::Strategy::generate(&($strategy), &mut rng);)+
                    let outcome: $crate::TestCaseResult = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(err) = outcome {
                        panic!(
                            "proptest property {} failed at case {}/{}: {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            err
                        );
                    }
                }
            }
        )*
    };
    ( $($rest:tt)* ) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// `assert!` that fails the current property case instead of panicking
/// directly (the harness reports case context).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` flavor of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                left, right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`: {}",
                left,
                right,
                format!($($fmt)+)
            )));
        }
    }};
}

/// `assert_ne!` flavor of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                left, right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                left,
                right,
                format!($($fmt)+)
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = super::test_rng("ranges_generate_in_bounds");
        for _ in 0..1000 {
            let v = (3u64..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let w = (0u8..=255).generate(&mut rng);
            let _ = w;
        }
    }

    #[test]
    fn prop_map_and_collections_compose() {
        let mut rng = super::test_rng("prop_map_and_collections_compose");
        let strat = super::collection::vec((0u64..5, 0u8..=3), 2..6)
            .prop_map(|pairs| pairs.len());
        for _ in 0..100 {
            let n = strat.generate(&mut rng);
            assert!((2..6).contains(&n));
        }
        let sets = super::collection::btree_set(0u64..100, 0..4);
        for _ in 0..100 {
            assert!(sets.generate(&mut rng).len() < 4);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: bindings, config, and prop_assert flavors.
        #[test]
        fn macro_end_to_end(x in 0u32..50, flag in any::<bool>(), v in super::collection::vec(0u64..4, 0..5)) {
            prop_assert!(x < 50, "x out of range: {}", x);
            prop_assert!(v.len() < 5);
            prop_assert_eq!(flag, flag);
            prop_assert_ne!(x + 1, x);
        }
    }

    #[test]
    #[should_panic(expected = "proptest property")]
    fn failures_panic_with_context() {
        // Build the same shape the macro generates, with a failing body.
        proptest! {
            @impl (ProptestConfig::with_cases(1));
            fn inner(x in 0u32..2) {
                prop_assert!(x > 100, "forced failure");
            }
        }
        inner();
    }
}
