//! Offline API-subset shim for `crossbeam`: an unbounded MPMC channel and
//! the [`select!`] macro shape the workspace uses (`recv` arms plus a
//! `default(timeout)` arm).
//!
//! The channel is a `Mutex<VecDeque>` + `Condvar` queue with sender /
//! receiver reference counting for crossbeam-compatible disconnect
//! semantics: `recv` errors once all senders are gone and the queue is
//! drained; `send` errors once all receivers are gone. [`select!`] is
//! polling-based (20 µs granularity), which is indistinguishable from
//! real blocking selection at the simulation's 500 µs idle tick. See
//! DESIGN.md §8 for the shim policy.

/// MPMC channels with crossbeam-shaped errors.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex, PoisonError};
    use std::time::{Duration, Instant};

    struct Chan<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    impl<T> Chan<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
            self.queue.lock().unwrap_or_else(PoisonError::into_inner)
        }
    }

    /// Error for [`Sender::send`]: every receiver was dropped. Carries
    /// the unsent message back.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error for [`Receiver::recv`]: channel empty and all senders gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    /// Error for [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Nothing queued right now.
        Empty,
        /// Nothing queued and all senders dropped.
        Disconnected,
    }

    /// Error for [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// Nothing arrived before the timeout.
        Timeout,
        /// Nothing queued and all senders dropped.
        Disconnected,
    }

    /// The sending half; cheap to clone.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// The receiving half; cheap to clone (MPMC). A receiver returned by
    /// [`fn@never`] carries no channel and never produces a message.
    pub struct Receiver<T> {
        chan: Option<Arc<Chan<T>>>,
    }

    /// Creates an unbounded channel.
    #[must_use]
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                chan: Arc::clone(&chan),
            },
            Receiver { chan: Some(chan) },
        )
    }

    /// A receiver that never yields a message and never disconnects —
    /// a neutral arm for [`select!`](crate::select).
    #[must_use]
    pub fn never<T>() -> Receiver<T> {
        Receiver { chan: None }
    }

    impl<T> Sender<T> {
        /// Enqueues `msg`, failing if every receiver was dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            // Check under the queue lock: Receiver::drop also takes it
            // while decrementing, so disconnect and enqueue are
            // arbitrated atomically (as in real crossbeam) — send never
            // returns Ok for a channel whose last receiver is already
            // gone.
            let mut queue = self.chan.lock();
            if self.chan.receivers.load(Ordering::Acquire) == 0 {
                drop(queue);
                return Err(SendError(msg));
            }
            queue.push_back(msg);
            drop(queue);
            self.chan.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.senders.fetch_add(1, Ordering::Relaxed);
            Sender {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.chan.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender: wake blocked receivers so they observe
                // the disconnect.
                self.chan.ready.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let Some(chan) = &self.chan else {
                // `never()`: block forever (matches crossbeam semantics;
                // unused in practice — select! only polls).
                loop {
                    std::thread::park();
                }
            };
            let mut queue = chan.lock();
            loop {
                if let Some(msg) = queue.pop_front() {
                    return Ok(msg);
                }
                if chan.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                queue = chan
                    .ready
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Returns a queued message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let Some(chan) = &self.chan else {
                return Err(TryRecvError::Empty);
            };
            let mut queue = chan.lock();
            match queue.pop_front() {
                Some(msg) => Ok(msg),
                None if chan.senders.load(Ordering::Acquire) == 0 => {
                    Err(TryRecvError::Disconnected)
                }
                None => Err(TryRecvError::Empty),
            }
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let Some(chan) = &self.chan else {
                std::thread::sleep(timeout);
                return Err(RecvTimeoutError::Timeout);
            };
            let deadline = Instant::now() + timeout;
            let mut queue = chan.lock();
            loop {
                if let Some(msg) = queue.pop_front() {
                    return Ok(msg);
                }
                if chan.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = chan
                    .ready
                    .wait_timeout(queue, deadline - now)
                    .unwrap_or_else(PoisonError::into_inner);
                queue = guard;
            }
        }

        /// Typed disconnect result for the [`select!`](crate::select)
        /// expansion (ties the `Ok` type to this receiver).
        #[doc(hidden)]
        pub fn __select_disconnected(&self) -> Result<T, RecvError> {
            Err(RecvError)
        }

        /// Number of queued messages.
        #[must_use]
        pub fn len(&self) -> usize {
            self.chan.as_ref().map_or(0, |c| c.lock().len())
        }

        /// Whether the queue is empty.
        #[must_use]
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            if let Some(chan) = &self.chan {
                chan.receivers.fetch_add(1, Ordering::Relaxed);
            }
            Receiver {
                chan: self.chan.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if let Some(chan) = &self.chan {
                // Serialize with in-flight sends (see Sender::send).
                let _queue = chan.lock();
                chan.receivers.fetch_sub(1, Ordering::AcqRel);
            }
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }
}

/// Multiplexes `recv` arms with a `default(timeout)` arm.
///
/// Supports the crossbeam shape used in this workspace:
///
/// ```ignore
/// crossbeam::select! {
///     recv(rx_a) -> msg => ...,   // msg: Result<T, RecvError>
///     recv(rx_b) -> msg => ...,
///     default(timeout) => ...,
/// }
/// ```
///
/// Arms are polled in order every 20 µs until one is ready (a message or
/// a disconnect) or the timeout elapses.
#[macro_export]
macro_rules! select {
    // Fixed-arity entry rules (one, two, or three recv arms): receiver
    // operands are evaluated ONCE into locals before the poll loop,
    // matching real crossbeam, so side-effectful or allocating operand
    // expressions are not re-run every 20 µs.
    ( recv($rx1:expr) -> $res1:pat => $arm1:expr ,
      default($timeout:expr) => $default:expr $(,)? ) => {{
        let __select_rx1 = &$rx1;
        $crate::select!(@loop ($timeout, $default);
            (__select_rx1, $res1, $arm1);
        )
    }};
    ( recv($rx1:expr) -> $res1:pat => $arm1:expr ,
      recv($rx2:expr) -> $res2:pat => $arm2:expr ,
      default($timeout:expr) => $default:expr $(,)? ) => {{
        let __select_rx1 = &$rx1;
        let __select_rx2 = &$rx2;
        $crate::select!(@loop ($timeout, $default);
            (__select_rx1, $res1, $arm1);
            (__select_rx2, $res2, $arm2);
        )
    }};
    ( recv($rx1:expr) -> $res1:pat => $arm1:expr ,
      recv($rx2:expr) -> $res2:pat => $arm2:expr ,
      recv($rx3:expr) -> $res3:pat => $arm3:expr ,
      default($timeout:expr) => $default:expr $(,)? ) => {{
        let __select_rx1 = &$rx1;
        let __select_rx2 = &$rx2;
        let __select_rx3 = &$rx3;
        $crate::select!(@loop ($timeout, $default);
            (__select_rx1, $res1, $arm1);
            (__select_rx2, $res2, $arm2);
            (__select_rx3, $res3, $arm3);
        )
    }};
    // Internal: the poll loop over pre-bound receiver locals. The
    // unlabeled `break`s target this `loop` across the expansion.
    ( @loop ($timeout:expr, $default:expr); $(($rx:ident, $res:pat, $arm:expr);)+ ) => {{
        let deadline = ::std::time::Instant::now() + $timeout;
        loop {
            $(
                match $rx.try_recv() {
                    ::std::result::Result::Ok(value) => {
                        let $res: ::std::result::Result<_, $crate::channel::RecvError> =
                            ::std::result::Result::Ok(value);
                        break $arm;
                    }
                    ::std::result::Result::Err($crate::channel::TryRecvError::Disconnected) => {
                        let $res = $rx.__select_disconnected();
                        break $arm;
                    }
                    ::std::result::Result::Err($crate::channel::TryRecvError::Empty) => {}
                }
            )+
            if ::std::time::Instant::now() >= deadline {
                break $default;
            }
            ::std::thread::sleep(::std::time::Duration::from_micros(20));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::channel::{never, unbounded, RecvTimeoutError, TryRecvError};
    use std::time::Duration;

    #[test]
    fn send_recv_fifo() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        for want in 0..10 {
            assert_eq!(rx.recv().unwrap(), want);
        }
    }

    #[test]
    fn disconnect_on_sender_drop() {
        let (tx, rx) = unbounded::<u32>();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv().unwrap(), 1); // drains before erroring
        assert!(rx.recv().is_err());
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn send_fails_without_receivers() {
        let (tx, rx) = unbounded::<u32>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn recv_timeout_expires() {
        let (_tx, rx) = unbounded::<u32>();
        let got = rx.recv_timeout(Duration::from_millis(10));
        assert_eq!(got, Err(RecvTimeoutError::Timeout));
    }

    #[test]
    fn mpmc_clones_share_queue() {
        let (tx, rx) = unbounded();
        let rx2 = rx.clone();
        tx.send(7).unwrap();
        assert_eq!(rx2.recv().unwrap(), 7);
        assert_eq!(rx.len(), 0);
    }

    #[test]
    fn cross_thread_delivery() {
        let (tx, rx) = unbounded();
        let handle = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let mut sum = 0u64;
        for _ in 0..100 {
            sum += rx.recv().unwrap();
        }
        handle.join().unwrap();
        assert_eq!(sum, 4950);
    }

    #[test]
    fn select_picks_ready_channel() {
        let (tx, rx) = unbounded();
        let silent = never::<u32>();
        tx.send(41).unwrap();
        let got = crate::select! {
            recv(rx) -> msg => msg.map(|v| v + 1).unwrap_or(0),
            recv(silent) -> msg => msg.unwrap_or(0),
            default(Duration::from_millis(5)) => 0,
        };
        assert_eq!(got, 42);
    }

    #[test]
    fn select_evaluates_receiver_operands_once() {
        let (_tx, rx) = unbounded::<u32>();
        let mut evals = 0;
        let got = crate::select! {
            recv({ evals += 1; &rx }) -> _msg => 1,
            default(Duration::from_millis(5)) => 2,
        };
        assert_eq!(got, 2);
        assert_eq!(evals, 1, "operand must not be re-evaluated per poll");
    }

    #[test]
    fn select_falls_through_to_default() {
        let rx = never::<u32>();
        let got = crate::select! {
            recv(rx) -> _msg => 1,
            default(Duration::from_millis(5)) => 2,
        };
        assert_eq!(got, 2);
    }
}
