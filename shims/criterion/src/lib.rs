//! Offline API-subset shim for `criterion`.
//!
//! Provides the measurement API shape the workspace's benches use —
//! [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`], [`Throughput`],
//! `b.iter(..)`, and the [`criterion_group!`] / [`criterion_main!`]
//! macros — with a deliberately simple measurement loop: one warm-up
//! call sizes the iteration count against a bounded time budget, then a
//! timed loop reports mean ns/iter (and MiB/s when a byte throughput is
//! set) to stdout. No statistics, outlier analysis, or HTML reports;
//! swap the workspace dependency back to the real crate for those. See
//! DESIGN.md §8 for the shim policy.

use std::fmt::{self, Display};
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Hard per-benchmark cap so `cargo bench` stays interactive even when a
/// single iteration is seconds long (the cluster benches).
const MAX_MEASURE_TIME: Duration = Duration::from_millis(300);

/// Top-level benchmark driver and configuration.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 50,
            measurement_time: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    /// Sets the target number of timed iterations.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the per-benchmark time budget (capped by the shim).
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            id,
            None,
            self.sample_size,
            self.measurement_time,
            &mut f,
        );
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        let measurement_time = self.measurement_time;
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size,
            measurement_time,
            throughput: None,
        }
    }
}

/// Per-element/byte rates reported alongside timings.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Input bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new<F: Display, P: Display>(function_name: F, parameter: P) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the target number of timed iterations for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the group's time budget (capped by the shim).
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Sets the throughput used for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark over `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(
            &label,
            self.throughput,
            self.sample_size,
            self.measurement_time,
            &mut |b| f(b, input),
        );
        self
    }

    /// Runs one benchmark without an input parameter.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(
            &label,
            self.throughput,
            self.sample_size,
            self.measurement_time,
            &mut f,
        );
        self
    }

    /// Ends the group (formatting separator only in the shim).
    pub fn finish(self) {
        println!();
    }
}

/// How per-iteration inputs are amortised in [`Bencher::iter_batched`].
/// The shim times each routine call individually, so the variants only
/// exist for API compatibility with upstream criterion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Inputs are small; upstream batches many per allocation.
    SmallInput,
    /// Inputs are large; upstream batches few per allocation.
    LargeInput,
    /// One input per measurement batch.
    PerIteration,
}

/// Passed to benchmark closures; [`Bencher::iter`] performs the timing.
pub struct Bencher {
    sample_size: usize,
    budget: Duration,
    /// Mean duration of one iteration, filled by `iter`.
    mean: Option<Duration>,
    iters: u64,
}

impl Bencher {
    /// Times `routine`, storing the mean cost of one call.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // One warm-up call, timed, to size the loop.
        let start = Instant::now();
        black_box(routine());
        let first = start.elapsed().max(Duration::from_nanos(1));

        let budget = self.budget.min(MAX_MEASURE_TIME);
        let by_budget = (budget.as_nanos() / first.as_nanos()).max(1);
        let iters = (self.sample_size as u128).min(by_budget) as u64;

        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        let total = start.elapsed();
        self.mean = Some(total / u32::try_from(iters).unwrap_or(u32::MAX));
        self.iters = iters;
    }

    /// Times `routine` over inputs produced by `setup`, excluding the
    /// setup cost from the measurement. Used where the routine consumes
    /// or mutates its input (e.g. draining a builder), which plain
    /// [`Bencher::iter`] cannot express.
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        // One warm-up call, timed, to size the loop.
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        let first = start.elapsed().max(Duration::from_nanos(1));

        let budget = self.budget.min(MAX_MEASURE_TIME);
        let by_budget = (budget.as_nanos() / first.as_nanos()).max(1);
        let iters = (self.sample_size as u128).min(by_budget) as u64;

        let mut total = Duration::ZERO;
        for _ in 0..iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.mean = Some(total / u32::try_from(iters).unwrap_or(u32::MAX));
        self.iters = iters;
    }
}

fn run_one(
    label: &str,
    throughput: Option<Throughput>,
    sample_size: usize,
    budget: Duration,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut bencher = Bencher {
        sample_size,
        budget,
        mean: None,
        iters: 0,
    };
    f(&mut bencher);
    match bencher.mean {
        Some(mean) => {
            let rate = match throughput {
                Some(Throughput::Bytes(bytes)) if mean > Duration::ZERO => {
                    let mib_s =
                        bytes as f64 / (1024.0 * 1024.0) / mean.as_secs_f64();
                    format!("  ({mib_s:.1} MiB/s)")
                }
                Some(Throughput::Elements(n)) if mean > Duration::ZERO => {
                    let elem_s = n as f64 / mean.as_secs_f64();
                    format!("  ({elem_s:.0} elem/s)")
                }
                _ => String::new(),
            };
            println!(
                "{label:<48} {:>14.1} ns/iter  [{} iters]{rate}",
                mean.as_nanos() as f64,
                bencher.iters
            );
        }
        None => println!("{label:<48} (no measurement: closure never called iter)"),
    }
}

/// Declares a benchmark group function, in either criterion form:
/// `criterion_group!(name, target_a, target_b)` or the
/// `name = ...; config = ...; targets = ...` form.
#[macro_export]
macro_rules! criterion_group {
    ( name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)? ) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ( $name:ident, $($target:path),+ $(,)? ) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the `main` function running one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ( $($group:path),+ $(,)? ) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_and_reports() {
        let mut c = Criterion::default().sample_size(5);
        let mut calls = 0u64;
        c.bench_function("shim_self_test", |b| {
            b.iter(|| {
                calls += 1;
                std::hint::black_box(calls)
            });
        });
        assert!(calls > 0);
    }

    #[test]
    fn iter_batched_times_routine_not_setup() {
        let mut c = Criterion::default().sample_size(4);
        let mut setups = 0u64;
        let mut runs = 0u64;
        c.bench_function("shim_iter_batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1u64; 8]
                },
                |v| {
                    runs += 1;
                    v.into_iter().sum::<u64>()
                },
                BatchSize::SmallInput,
            );
        });
        assert!(runs > 0);
        assert_eq!(setups, runs, "one fresh input per routine call");
    }

    #[test]
    fn groups_run_each_benchmark() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3).measurement_time(Duration::from_millis(5));
        group.throughput(Throughput::Bytes(1024));
        let data = vec![1u8; 64];
        let mut ran = false;
        group.bench_with_input(BenchmarkId::new("case", 64), &data, |b, d| {
            b.iter(|| d.iter().map(|&x| x as u64).sum::<u64>());
            ran = true;
        });
        group.finish();
        assert!(ran);
    }

    mod macro_shapes {
        fn target(c: &mut crate::Criterion) {
            c.bench_function("macro_shape", |b| b.iter(|| 1 + 1));
        }
        crate::criterion_group!(short_form, target);
        crate::criterion_group! {
            name = long_form;
            config = crate::Criterion::default().sample_size(2);
            targets = target, target
        }

        #[test]
        fn both_macro_forms_expand_and_run() {
            short_form();
            long_form();
        }
    }
}
