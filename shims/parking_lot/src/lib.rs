//! Offline API-subset shim for `parking_lot`, layered over `std::sync`.
//!
//! Mirrors the upstream ergonomics the workspace relies on: guard-returning
//! `lock()` / `read()` / `write()` without `Result`, a [`Condvar`] that
//! takes `&mut MutexGuard`, and [`MutexGuard::unlocked`]. Poisoning — the
//! one std behavior parking_lot removes — is neutralized by unwrapping
//! into the inner guard, which matches parking_lot's "no poisoning"
//! semantics. See DESIGN.md §8 for the shim policy.

use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};
use std::time::Duration;

/// A mutex whose `lock` returns the guard directly (no poisoning).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            lock: &self.inner,
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// RAII guard for [`Mutex`]; supports temporary release via
/// [`MutexGuard::unlocked`] and re-acquisition by [`Condvar`].
pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a sync::Mutex<T>,
    /// `None` only transiently, while unlocked or parked on a condvar.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<'a, T: ?Sized> MutexGuard<'a, T> {
    /// Runs `f` with the mutex released, then re-acquires it — also on
    /// unwind, matching parking_lot: a caller that catches a panic from
    /// `f` still holds a locked guard.
    pub fn unlocked<F, R>(guard: &mut Self, f: F) -> R
    where
        F: FnOnce() -> R,
    {
        struct Relock<'g, 'a, T: ?Sized>(&'g mut MutexGuard<'a, T>);
        impl<T: ?Sized> Drop for Relock<'_, '_, T> {
            fn drop(&mut self) {
                self.0.inner =
                    Some(self.0.lock.lock().unwrap_or_else(PoisonError::into_inner));
            }
        }
        guard.inner = None;
        let relock = Relock(guard);
        let result = f();
        drop(relock);
        result
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard is locked")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard is locked")
    }
}

/// Result of a timed condvar wait.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended by timeout rather than notification.
    #[must_use]
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable operating on [`MutexGuard`]s.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Blocks until notified, atomically releasing the guard's mutex.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard is locked");
        let inner = self.inner.wait(inner).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard is locked");
        let (inner, result) = self
            .inner
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// A readers-writer lock whose accessors return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new rwlock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn unlocked_releases_and_reacquires() {
        let m = Arc::new(Mutex::new(0u32));
        let mut guard = m.lock();
        *guard = 1;
        let other = Arc::clone(&m);
        MutexGuard::unlocked(&mut guard, move || {
            // The lock must be free here.
            let mut g = other.lock();
            *g += 1;
        });
        assert_eq!(*guard, 2);
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let start = Instant::now();
        let result = cv.wait_for(&mut g, Duration::from_millis(20));
        assert!(result.timed_out());
        assert!(start.elapsed() >= Duration::from_millis(15));
    }

    #[test]
    fn condvar_wakes_waiter() {
        let shared = Arc::new((Mutex::new(false), Condvar::new()));
        let s2 = Arc::clone(&shared);
        let handle = std::thread::spawn(move || {
            let (m, cv) = &*s2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        let (m, cv) = &*shared;
        *m.lock() = true;
        cv.notify_all();
        handle.join().unwrap();
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5u32);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
