//! Offline API-subset shim for `serde`.
//!
//! Provides the `Serialize` / `Deserialize` trait names and re-exports the
//! (no-op) derive macros, mirroring the real crate's layout: the trait and
//! the derive share a name across namespaces, so
//! `use serde::{Deserialize, Serialize};` followed by
//! `#[derive(Serialize, Deserialize)]` compiles exactly as it would
//! against the real crate. See DESIGN.md §8 for the shim policy.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
///
/// The shim derives do not implement it; nothing in the workspace
/// requires the bound.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
