//! Offline API-subset shim for `serde_derive`.
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` as a
//! declaration of intent — nothing actually serializes through serde (the
//! deterministic wire encoding in `parblock_types::wire` is hand-rolled).
//! These derives therefore validate their attachment site and expand to
//! nothing. Replacing this shim with the real `serde_derive` produces the
//! full trait impls with no source changes.

use proc_macro::TokenStream;

/// Derive macro for `serde::Serialize` (expands to nothing in the shim).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Derive macro for `serde::Deserialize` (expands to nothing in the shim).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
