//! Serializability of dependency-graph execution, tested at the library
//! level where schedules can be controlled exactly.
//!
//! Property: executing a block's transactions in *any* order consistent
//! with the dependency graph — with commit results applied in *any*
//! arrival order under version-stamped writes — produces the same final
//! state as serial execution in block order.

use proptest::prelude::*;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use parblockchain_repro::contracts::{ExecOutcome, KvContract, KvOp, SmartContract};
use parblockchain_repro::depgraph::{DependencyGraph, DependencyMode, ReadyTracker};
use parblockchain_repro::ledger::{KvState, Version};
use parblockchain_repro::types::{
    AppId, Block, BlockNumber, ClientId, Hash32, Key, SeqNo, Value,
};

/// Serial reference: execute in block order, applying writes directly.
fn serial_state(block: &Block, contract: &KvContract, genesis: &KvState) -> KvState {
    let mut state = genesis.clone();
    for (seq, tx) in block.iter_seq() {
        match contract.execute(tx, &state) {
            ExecOutcome::Commit(writes) => {
                state.apply(writes, Version::new(block.number(), seq));
            }
            ExecOutcome::Abort(_) => {}
        }
    }
    state
}

/// Graph-scheduled execution with a randomized ready order: repeatedly
/// pick a random ready transaction, execute it against the current
/// state, and apply its writes with version stamping.
fn scheduled_state(
    block: &Block,
    contract: &KvContract,
    genesis: &KvState,
    graph: &DependencyGraph,
    seed: u64,
) -> KvState {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut state = genesis.clone();
    let mut tracker = ReadyTracker::new(graph);
    let mut frontier: Vec<SeqNo> = tracker.take_ready();
    while !frontier.is_empty() {
        frontier.shuffle(&mut rng);
        let seq = frontier.pop().expect("non-empty");
        let tx = block.tx(seq).expect("valid");
        if let ExecOutcome::Commit(writes) = contract.execute(tx, &state) {
            state.apply_versioned(writes, Version::new(block.number(), seq));
        }
        frontier.extend(tracker.complete(seq));
        frontier.extend(tracker.take_ready());
    }
    assert!(tracker.is_done());
    state
}

fn arb_block() -> impl Strategy<Value = Block> {
    // KvOp::Mix makes results depend on the values read, so ordering
    // mistakes corrupt downstream values and the test notices.
    let op = (
        proptest::collection::vec(0u64..6, 0..3),
        proptest::collection::vec(0u64..6, 1..3),
    );
    proptest::collection::vec(op, 1..24).prop_map(|ops| {
        let contract = KvContract::new(AppId(0));
        let txs = ops
            .into_iter()
            .enumerate()
            .map(|(i, (reads, writes))| {
                let op = KvOp::Mix {
                    reads: reads.into_iter().map(Key).collect(),
                    writes: writes.into_iter().map(Key).collect(),
                };
                contract.transaction(ClientId(1), i as u64, &op)
            })
            .collect();
        Block::new(BlockNumber(1), Hash32::ZERO, txs)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn any_graph_consistent_schedule_matches_serial(
        block in arb_block(),
        seed in any::<u64>(),
        mode_reduced in any::<bool>(),
    ) {
        let contract = KvContract::new(AppId(0));
        let genesis = KvState::with_genesis((0..6).map(|k| (Key(k), Value::Int(k as i64))));
        let mode = if mode_reduced {
            DependencyMode::Reduced
        } else {
            DependencyMode::Full
        };
        let graph = DependencyGraph::build(&block, mode);
        let serial = serial_state(&block, &contract, &genesis);
        let scheduled = scheduled_state(&block, &contract, &genesis, &graph, seed);
        prop_assert_eq!(serial.digest(), scheduled.digest());
    }
}

/// The multi-version graph admits schedules that are *not* value-serial
/// under single-version storage, but remains correct on a multi-version
/// store: a reader positioned at seq s sees the latest write ≤ s.
#[test]
fn multi_version_reads_route_correctly_under_mv_schedule() {
    use parblockchain_repro::ledger::MvccState;

    // T0 writes k=10; T1 writes k=20 (WW — concurrent under MV);
    // T2 reads k (depends on both).
    let contract = KvContract::new(AppId(0));
    let t0 = contract.transaction(ClientId(1), 0, &KvOp::Put { key: Key(1), value: 10 });
    let t1 = contract.transaction(ClientId(1), 1, &KvOp::Put { key: Key(1), value: 20 });
    let t2 = contract.transaction(
        ClientId(1),
        2,
        &KvOp::Mix { reads: vec![Key(1)], writes: vec![Key(2)] },
    );
    let block = Block::new(BlockNumber(1), Hash32::ZERO, vec![t0, t1, t2]);
    let graph = DependencyGraph::build(&block, DependencyMode::MultiVersion);
    // WW edge dropped; both writers feed the reader.
    assert!(!graph.has_edge(SeqNo(0), SeqNo(1)));
    assert!(graph.has_edge(SeqNo(0), SeqNo(2)));
    assert!(graph.has_edge(SeqNo(1), SeqNo(2)));

    // Apply the writers in *reverse* order into the MV store; the reader
    // at position 2 still sees T1's value (latest version ≤ its seq).
    let mut mv = MvccState::new();
    mv.put(Key(1), Value::Int(20), Version::new(BlockNumber(1), SeqNo(1)));
    mv.put(Key(1), Value::Int(10), Version::new(BlockNumber(1), SeqNo(0)));
    assert_eq!(
        mv.read_at(Key(1), Version::new(BlockNumber(1), SeqNo(2))),
        Value::Int(20)
    );
}
