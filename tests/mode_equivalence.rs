//! Three-way execution-mode equivalence suite (DESIGN.md §11): the
//! pessimistic dependency-graph scheduler (the paper's Algorithm 1), the
//! optimistic Block-STM engine, and the per-block hybrid must be
//! **observationally indistinguishable** — same blocks in the same order
//! (equal ledger head hashes) and byte-equal final state (equal state
//! digests) — across contention levels and pipeline depths. Speculation,
//! aborts and re-executions may differ wildly between engines; anything
//! a client, a replica, or the ledger can see may not.

use std::time::Duration;

use proptest::prelude::*;

use parblockchain::{
    run_fixed, run_sim, ClusterSpec, ExecutionMode, RunReport, SimConfig, SystemKind,
};
use parblockchain_repro as _;

const MODES: [ExecutionMode; 3] = ExecutionMode::ALL;

fn mode_spec(mode: ExecutionMode, contention: f64, depth: usize) -> ClusterSpec {
    let mut spec = ClusterSpec::new(SystemKind::Oxii);
    // Count cuts: block boundaries (and thus ledger hashes) must not
    // depend on timing, mirroring `tests/pipeline_equivalence.rs`.
    spec.block_cut = parblockchain_repro::types::BlockCutConfig {
        max_txns: 25,
        max_bytes: usize::MAX,
        max_wait: Duration::from_secs(5),
    };
    spec.costs = parblockchain_repro::types::ExecutionCosts::per_tx(Duration::from_micros(50));
    spec.topology.intra = Duration::from_micros(50);
    spec.exec_pool = 4;
    spec.exec_pipeline_depth = depth;
    spec.workload.contention = contention;
    spec.capture_state = true;
    // Explicit, so the suite's grid is immune to `PARBLOCK_EXEC_MODE`.
    spec.execution_mode = mode;
    spec
}

fn heads(report: &RunReport, label: &str) -> (parblock_types::Hash32, parblock_types::Hash32) {
    (
        report.ledger_head.unwrap_or_else(|| panic!("{label}: no ledger head")),
        report.state_digest.unwrap_or_else(|| panic!("{label}: no state digest")),
    )
}

/// The full grid under the deterministic scheduler: 3 modes × contention
/// {0, 0.5, 0.9} × pipeline depth {1, 2} commit every transaction with
/// byte-identical ledger heads and state digests.
#[test]
fn all_modes_agree_across_contention_and_depth_in_simulation() {
    for contention in [0.0, 0.5, 0.9] {
        for depth in [1usize, 2] {
            let mut results = Vec::new();
            for mode in MODES {
                let spec = mode_spec(mode, contention, depth);
                let outcome = run_sim(&SimConfig::new(spec, 100, 2_000.0));
                let label = format!("mode {mode} contention {contention} depth {depth}");
                assert!(outcome.completed, "{label}: {:?}", outcome.report);
                assert_eq!(outcome.report.committed, 100, "{label}");
                assert_eq!(outcome.report.aborted, 0, "{label}");
                results.push((mode, heads(&outcome.report, &label)));
            }
            let (_, base) = results[0];
            for (mode, observed) in &results[1..] {
                assert_eq!(
                    *observed, base,
                    "mode {mode} diverged from pessimistic at contention \
                     {contention}, depth {depth}"
                );
            }
        }
    }
}

/// The same three-way agreement holds on the free-running threaded
/// runner, where completion order is genuinely nondeterministic and the
/// optimistic engine's abort/re-execution schedule differs run to run.
#[test]
fn all_modes_agree_on_the_threaded_runner() {
    let mut results = Vec::new();
    for mode in MODES {
        let spec = mode_spec(mode, 0.9, 2);
        let report = run_fixed(&spec, 200, 2_000.0, Duration::from_secs(30));
        assert_eq!(report.committed, 200, "mode {mode}: {report:?}");
        assert_eq!(report.aborted, 0, "mode {mode}");
        results.push((mode, heads(&report, &format!("mode {mode}"))));
    }
    let (_, base) = results[0];
    for (mode, observed) in &results[1..] {
        assert_eq!(*observed, base, "mode {mode} diverged on the threaded runner");
    }
}

/// Cross-application contention (mid-block COMMIT exchanges between
/// agents, τ(A) = 2 voting) is mode-invariant too.
#[test]
fn cross_app_and_two_agent_quorum_are_mode_invariant() {
    let mut results = Vec::new();
    for mode in MODES {
        let mut spec = mode_spec(mode, 0.8, 2);
        spec.workload.cross_app = true;
        spec.executors_per_app = 2;
        let outcome = run_sim(&SimConfig::new(spec, 100, 2_000.0));
        assert!(outcome.completed, "mode {mode}: {:?}", outcome.report);
        assert_eq!(outcome.report.committed, 100, "mode {mode}");
        results.push(heads(&outcome.report, &format!("mode {mode}")));
    }
    assert_eq!(results[0], results[1], "optimistic diverged under cross-app τ=2");
    assert_eq!(results[0], results[2], "hybrid diverged under cross-app τ=2");
}

/// The engines are not secretly the same code path: under hot-key
/// contention the optimistic engine visibly speculates (validation
/// checks happen, some fail, incarnations re-execute) while the
/// pessimistic engine records exactly zero of all three counters.
#[test]
fn speculation_counters_separate_the_engines() {
    let pess = run_sim(&SimConfig::new(
        mode_spec(ExecutionMode::Pessimistic, 0.9, 2),
        100,
        2_000.0,
    ));
    assert_eq!(pess.report.validation_passes, 0, "{:?}", pess.report);
    assert_eq!(pess.report.aborts, 0);
    assert_eq!(pess.report.re_executions, 0);

    let opt = run_sim(&SimConfig::new(
        mode_spec(ExecutionMode::Optimistic, 0.9, 2),
        100,
        2_000.0,
    ));
    assert!(
        opt.report.validation_passes > 0,
        "optimistic engine never validated: {:?}",
        opt.report
    );
    assert!(
        opt.report.aborts > 0,
        "contention 0.9 should clobber some speculative reads: {:?}",
        opt.report
    );
    assert_eq!(
        opt.report.aborts, opt.report.re_executions,
        "every aborted incarnation must be re-dispatched exactly once"
    );
}

proptest! {
    // Each case runs three full simulations; keep the population small
    // but fresh across runs (proptest persists failures as regressions).
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Seed-randomized equivalence: any workload seed, any sampled
    /// contention/depth, all three engines produce identical ledger
    /// heads and state digests.
    #[test]
    fn any_seed_is_mode_invariant(
        seed in 0u64..1_000,
        contention_idx in 0usize..3,
        depth in 1usize..3,
    ) {
        let contention = [0.0, 0.5, 0.9][contention_idx];
        let mut results = Vec::new();
        for mode in MODES {
            let mut spec = mode_spec(mode, contention, depth);
            spec.seed = seed;
            let outcome = run_sim(&SimConfig::new(spec, 75, 2_000.0));
            prop_assert!(outcome.completed, "mode {} seed {}", mode, seed);
            prop_assert_eq!(outcome.report.committed, 75);
            let label = format!("mode {mode} seed {seed}");
            results.push(heads(&outcome.report, &label));
        }
        prop_assert_eq!(results[0], results[1], "optimistic diverged at seed {}", seed);
        prop_assert_eq!(results[0], results[2], "hybrid diverged at seed {}", seed);
    }
}
