//! Mailbox-engine equivalence battery (DESIGN.md §15): the sharded
//! per-destination mailbox engine and the pre-§15 single-queue engine
//! (kept behind `ClusterSpec::legacy_mailboxes` as an ablation) must be
//! **bit-for-bit indistinguishable** under the deterministic scheduler —
//! identical full `RunReport` digests, ledger heads and state digests —
//! and observationally equivalent on the free-running threaded runner.
//! The engines differ only in locking and wakeup topology; every fault
//! draw, latency sample and `(due, seq)` delivery decision is shared
//! code, so any divergence here is a scheduling bug, not noise.

use std::time::Duration;

use proptest::prelude::*;

use parblockchain::{
    run_fixed, run_sim, ClusterSpec, ExecutionMode, RunReport, SimConfig, SystemKind,
};
use parblockchain_repro as _;

fn comms_spec(
    legacy: bool,
    mode: ExecutionMode,
    contention: f64,
    depth: usize,
) -> ClusterSpec {
    let mut spec = ClusterSpec::new(SystemKind::Oxii);
    // Count cuts: block boundaries must not depend on timing, mirroring
    // `tests/mode_equivalence.rs`.
    spec.block_cut = parblockchain_repro::types::BlockCutConfig {
        max_txns: 25,
        max_bytes: usize::MAX,
        max_wait: Duration::from_secs(5),
    };
    spec.costs = parblockchain_repro::types::ExecutionCosts::per_tx(Duration::from_micros(50));
    spec.topology.intra = Duration::from_micros(50);
    spec.exec_pool = 4;
    spec.exec_pipeline_depth = depth;
    spec.workload.contention = contention;
    spec.capture_state = true;
    spec.execution_mode = mode;
    // Explicit, so the grid is immune to `PARBLOCK_LEGACY_MAILBOXES`.
    spec.legacy_mailboxes = legacy;
    spec
}

fn heads(report: &RunReport, label: &str) -> (parblock_types::Hash32, parblock_types::Hash32) {
    (
        report.ledger_head.unwrap_or_else(|| panic!("{label}: no ledger head")),
        report.state_digest.unwrap_or_else(|| panic!("{label}: no state digest")),
    )
}

/// The full grid under the deterministic scheduler: 3 execution modes ×
/// contention {0, 0.9} × pipeline depth {1, 2}, each run on both mailbox
/// engines, produce byte-identical full report digests (which cover
/// ledger head, state digest, counts and speculation counters).
#[test]
fn engines_agree_across_modes_contention_and_depth_in_simulation() {
    for mode in ExecutionMode::ALL {
        for contention in [0.0, 0.9] {
            for depth in [1usize, 2] {
                let label = format!("mode {mode} contention {contention} depth {depth}");
                let legacy =
                    run_sim(&SimConfig::new(comms_spec(true, mode, contention, depth), 100, 2_000.0));
                let sharded =
                    run_sim(&SimConfig::new(comms_spec(false, mode, contention, depth), 100, 2_000.0));
                assert!(legacy.completed, "{label} (legacy): {:?}", legacy.report);
                assert!(sharded.completed, "{label} (sharded): {:?}", sharded.report);
                assert_eq!(legacy.report.committed, 100, "{label}");
                assert_eq!(
                    legacy.report.digest(),
                    sharded.report.digest(),
                    "{label}: mailbox engines diverged\nlegacy:  {:?}\nsharded: {:?}",
                    legacy.report,
                    sharded.report
                );
                assert_eq!(
                    heads(&legacy.report, &label),
                    heads(&sharded.report, &label),
                    "{label}"
                );
            }
        }
    }
}

/// Cross-application traffic (mid-block COMMIT multicasts between agent
/// groups, τ(A) = 2 voting) exercises the multicast fan-out path — the
/// one the Arc-shared payload rewrite touches hardest.
#[test]
fn cross_app_quorum_traffic_is_engine_invariant() {
    for mode in ExecutionMode::ALL {
        let mk = |legacy: bool| {
            let mut spec = comms_spec(legacy, mode, 0.8, 2);
            spec.workload.cross_app = true;
            spec.executors_per_app = 2;
            run_sim(&SimConfig::new(spec, 100, 2_000.0))
        };
        let legacy = mk(true);
        let sharded = mk(false);
        assert!(legacy.completed && sharded.completed, "mode {mode}");
        assert_eq!(legacy.report.committed, 100, "mode {mode}");
        assert_eq!(
            legacy.report.digest(),
            sharded.report.digest(),
            "mode {mode} diverged under cross-app τ=2"
        );
    }
}

/// Fault injection (a crashed executor with a redundant agent set) goes
/// through the engines' drop bookkeeping; the surviving agents must
/// commit the same chain on both.
#[test]
fn engines_agree_under_a_crashed_executor() {
    let mk = |legacy: bool| {
        let mut spec = comms_spec(legacy, ExecutionMode::Pessimistic, 0.5, 2);
        spec.executors_per_app = 2;
        spec.commit_quorum = Some(1);
        run_sim(&SimConfig::new(spec, 100, 2_000.0))
    };
    let legacy = mk(true);
    let sharded = mk(false);
    assert!(legacy.completed && sharded.completed);
    assert_eq!(legacy.report.digest(), sharded.report.digest());
}

/// On the free-running threaded runner delivery timing is genuinely
/// nondeterministic, but everything a client can observe — committed
/// chain and final state — must still match across engines.
#[test]
fn engines_agree_on_the_threaded_runner() {
    let legacy = run_fixed(
        &comms_spec(true, ExecutionMode::Pessimistic, 0.9, 2),
        200,
        2_000.0,
        Duration::from_secs(30),
    );
    let sharded = run_fixed(
        &comms_spec(false, ExecutionMode::Pessimistic, 0.9, 2),
        200,
        2_000.0,
        Duration::from_secs(30),
    );
    assert_eq!(legacy.committed, 200, "{legacy:?}");
    assert_eq!(sharded.committed, 200, "{sharded:?}");
    assert_eq!(
        heads(&legacy, "legacy threaded"),
        heads(&sharded, "sharded threaded"),
        "mailbox engines diverged on the threaded runner"
    );
}

proptest! {
    // Each case runs two full simulations; keep the population small but
    // fresh across runs (proptest persists failures as regressions).
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Seed-randomized equivalence: any workload seed, any sampled
    /// contention/depth/mode, both mailbox engines produce identical
    /// full report digests.
    #[test]
    fn any_seed_is_engine_invariant(
        seed in 0u64..1_000,
        contention_idx in 0usize..3,
        depth in 1usize..3,
        mode_idx in 0usize..3,
    ) {
        let contention = [0.0, 0.5, 0.9][contention_idx];
        let mode = ExecutionMode::ALL[mode_idx];
        let mk = |legacy: bool| {
            let mut spec = comms_spec(legacy, mode, contention, depth);
            spec.seed = seed;
            run_sim(&SimConfig::new(spec, 75, 2_000.0))
        };
        let legacy = mk(true);
        let sharded = mk(false);
        prop_assert!(legacy.completed, "legacy seed {}", seed);
        prop_assert!(sharded.completed, "sharded seed {}", seed);
        prop_assert_eq!(
            legacy.report.digest(),
            sharded.report.digest(),
            "engines diverged at seed {} mode {} contention {} depth {}",
            seed, mode, contention, depth
        );
    }
}
