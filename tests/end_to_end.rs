//! Cross-crate integration tests: full clusters, all three paradigms.

use std::time::Duration;

use parblockchain::{run, run_fixed, ClusterSpec, LoadSpec, MovedGroup, SystemKind};
use parblockchain_repro as _;

fn quick_spec(system: SystemKind) -> ClusterSpec {
    let mut spec = ClusterSpec::new(system);
    spec.block_cut = parblockchain_repro::types::BlockCutConfig {
        max_txns: 25,
        max_bytes: usize::MAX,
        max_wait: Duration::from_millis(10),
    };
    spec.costs =
        parblockchain_repro::types::ExecutionCosts::per_tx(Duration::from_micros(20));
    spec.topology.intra = Duration::from_micros(50);
    spec.exec_pool = 4;
    spec
}

fn quick_load(rate: f64) -> LoadSpec {
    LoadSpec {
        rate_tps: rate,
        duration: Duration::from_millis(500),
        drain: Duration::from_millis(500),
        ..LoadSpec::default()
    }
}

/// OX and OXII must commit exactly the same transaction set on a fixed
/// workload and converge to the same final state (no lost or duplicated
/// writes despite OXII's parallel, out-of-order commit application).
#[test]
fn ox_and_oxii_agree_on_final_state() {
    for contention in [0.0, 0.5, 1.0] {
        let mut digests = Vec::new();
        for system in [SystemKind::Ox, SystemKind::Oxii] {
            let mut spec = quick_spec(system);
            spec.workload.contention = contention;
            spec.capture_state = true;
            let report = run_fixed(&spec, 200, 2_000.0, Duration::from_secs(20));
            assert_eq!(
                report.committed, 200,
                "{system} at {contention}: {report:?}"
            );
            assert_eq!(report.aborted, 0);
            digests.push(report.state_digest.expect("digest captured"));
        }
        assert_eq!(
            digests[0], digests[1],
            "OX and OXII final states diverge at contention {contention}"
        );
    }
}

/// OXII under cross-application contention (the OXII* dashed line):
/// commit-message exchanges between agents must still commit everything.
#[test]
fn oxii_cross_app_contention_commits_everything() {
    let mut spec = quick_spec(SystemKind::Oxii);
    spec.workload.contention = 0.8;
    spec.workload.cross_app = true;
    let report = run_fixed(&spec, 150, 1_500.0, Duration::from_secs(20));
    assert_eq!(report.committed, 150, "{report:?}");
    assert_eq!(report.aborted, 0);
}

/// The XOV paradigm must abort stale transactions under contention but
/// commit cleanly without contention.
#[test]
fn xov_abort_behaviour_tracks_contention() {
    let mut clean = quick_spec(SystemKind::Xov);
    clean.workload.contention = 0.0;
    let clean_report = run(&clean, &quick_load(400.0));
    assert!(clean_report.committed > 50, "{clean_report:?}");
    assert_eq!(clean_report.aborted, 0, "no contention → no aborts");

    let mut contended = quick_spec(SystemKind::Xov);
    contended.workload.contention = 0.8;
    let contended_report = run(&contended, &quick_load(400.0));
    assert!(
        contended_report.aborted > 0,
        "80 % contention must produce validation aborts: {contended_report:?}"
    );
}

/// Moving non-executors to a far datacenter must not hurt OXII commit
/// latency (the paper's Fig 7d claim) — compare against moving orderers,
/// which must hurt.
#[test]
fn oxii_latency_immune_to_far_non_executors() {
    let mut base = quick_spec(SystemKind::Oxii);
    base.topology.inter = Duration::from_millis(20);
    let local = run(&base, &quick_load(300.0));

    let mut far_nonexec = base.clone();
    far_nonexec.topology.moved = Some(MovedGroup::NonExecutors);
    let nonexec = run(&far_nonexec, &quick_load(300.0));

    let mut far_orderers = base.clone();
    far_orderers.topology.moved = Some(MovedGroup::Orderers);
    let orderers = run(&far_orderers, &quick_load(300.0));

    let base_ms = local.avg_latency().as_secs_f64() * 1e3;
    let nonexec_ms = nonexec.avg_latency().as_secs_f64() * 1e3;
    let orderers_ms = orderers.avg_latency().as_secs_f64() * 1e3;
    assert!(
        nonexec_ms < base_ms + 15.0,
        "non-executors far should not add inter-DC latency: {base_ms:.2} → {nonexec_ms:.2}"
    );
    assert!(
        orderers_ms > base_ms + 15.0,
        "orderers far must add inter-DC latency: {base_ms:.2} → {orderers_ms:.2}"
    );
}

/// With two agents per application, τ(A) = 2: every commit needs
/// *matching* results from both executors (Algorithm 3's quorum), and
/// passive peers collect them too.
#[test]
fn oxii_with_two_agents_per_app_reaches_tau_two() {
    let mut spec = quick_spec(SystemKind::Oxii);
    spec.executors_per_app = 2;
    spec.workload.contention = 0.5;
    spec.capture_state = true;
    let report = run_fixed(&spec, 150, 1_500.0, Duration::from_secs(20));
    assert_eq!(report.committed, 150, "{report:?}");
    assert_eq!(report.aborted, 0);
    assert!(report.state_digest.is_some());
}

/// Same with XOV: the endorsement policy requires two matching
/// endorsements before an envelope is ordered.
#[test]
fn xov_with_two_endorsers_per_app_commits() {
    let mut spec = quick_spec(SystemKind::Xov);
    spec.executors_per_app = 2;
    let report = run(&spec, &quick_load(300.0));
    assert!(report.committed > 30, "{report:?}");
}

/// PBFT-ordered OXII commits under a crashed backup orderer (f = 1).
#[test]
fn oxii_pbft_tolerates_one_orderer_crash() {
    let spec = quick_spec(SystemKind::Oxii).with_pbft();
    // Run normally; crash injection of a *backup* happens via the fault
    // plan at the network level — here we simply verify the PBFT path
    // commits (crash tests live in the consensus crate's harness, which
    // controls schedules deterministically).
    let report = run(&spec, &quick_load(300.0));
    assert!(report.committed > 30, "{report:?}");
}
