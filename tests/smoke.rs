//! Umbrella smoke test: every `parblockchain_repro` re-export resolves
//! and is usable. This is primarily a *compile-time* check — if a
//! re-export breaks, this file stops building — with a small runtime
//! pass through each subsystem to catch wiring mistakes the type check
//! cannot see.

use std::time::Duration;

use parblockchain_repro::{
    consensus, contracts, crypto, depgraph, ledger, net, system, types, workload,
};

/// Each aliased module exposes its flagship types under the paths the
/// examples and docs use.
#[test]
fn umbrella_reexports_resolve() {
    // types
    let key = types::Key(1);
    let rw = types::RwSet::new([key], [types::Key(2)]);
    let tx = types::Transaction::new(types::AppId(0), types::ClientId(7), 1, rw, vec![]);
    let block = types::Block::new(types::BlockNumber(1), types::Hash32::ZERO, vec![tx]);
    assert_eq!(block.len(), 1);

    // crypto
    let digest = crypto::sha256(b"abc");
    assert_eq!(
        digest.to_hex(),
        "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    );
    let registry = crypto::KeyRegistry::deterministic(2);
    let sig = registry.sign(crypto::SignerId(0), b"m");
    assert!(registry.verify(crypto::SignerId(0), b"m", &sig));

    // depgraph
    let graph = depgraph::DependencyGraph::build(&block, depgraph::DependencyMode::Full);
    assert_eq!(graph.len(), 1);
    let layers = depgraph::ExecutionLayers::compute(&graph);
    assert_eq!(layers.critical_path(), 1);

    // ledger
    let mut state = ledger::KvState::new();
    state.put(
        key,
        types::Value::Int(3),
        ledger::Version::new(types::BlockNumber(1), types::SeqNo(0)),
    );
    assert_eq!(state.get(key), types::Value::Int(3));

    // contracts
    let contract = contracts::KvContract::new(types::AppId(0));
    let op = contracts::KvOp::Put { key, value: 9 };
    let tx = contract.transaction(types::ClientId(1), 0, &op);
    let outcome = contracts::SmartContract::execute(&contract, &tx, &state);
    assert!(matches!(outcome, contracts::ExecOutcome::Commit(_)));

    // net
    let netw = net::NetworkBuilder::new()
        .topology(net::Topology::single_dc(Duration::ZERO))
        .build::<u32>();
    let a = netw.endpoint(types::NodeId(0));
    let b = netw.endpoint(types::NodeId(1));
    a.send(types::NodeId(1), 5);
    assert_eq!(b.recv_timeout(Duration::from_secs(1)).unwrap().msg, 5);
    netw.shutdown();

    // consensus
    let mut cluster = consensus::testing::SimCluster::pbft(4, Duration::from_millis(100));
    cluster.submit(0, vec![1, 2, 3]);
    cluster.run_to_quiescence();
    assert!(cluster.all_agree());

    // workload
    let mut wl = workload::WorkloadGen::new(workload::WorkloadConfig {
        block_size: 8,
        ..workload::WorkloadConfig::default()
    });
    assert_eq!(wl.window().len(), 8);

    // system (the three paradigms + runner API)
    let spec = system::ClusterSpec::new(system::SystemKind::Oxii);
    assert_eq!(spec.system, system::SystemKind::Oxii);
    let _ = system::LoadSpec::default();
}
