//! Determinism regression suite for the simulated clock (DESIGN.md §10).
//!
//! Wall-clock block cuts (`BlockCutConfig::max_wait`) were the known
//! nondeterminism source in the free-running cluster: the leader's
//! decision to order a cut marker depended on real elapsed time, so the
//! same spec produced different block boundaries run to run (which is
//! why `tests/pipeline_equivalence.rs` restricts itself to count cuts).
//! Under the deterministic scheduler the marker decision reads the
//! *virtual* clock, making time-cut boundaries — and therefore ledger
//! heads, state digests, and the entire `RunReport` — a pure function of
//! the seed.

use std::time::Duration;

use parblock_sim as _;
use parblockchain::{run_sim, ClusterSpec, DurabilityMode, ExecutionMode, SimConfig, SystemKind};
use parblockchain_repro as _;

fn time_cut_spec(seed: u64, max_wait_ms: u64) -> ClusterSpec {
    let mut spec = ClusterSpec::new(SystemKind::Oxii);
    spec.seed = seed;
    // Deliberately wall-clock-dominated cutting: the count condition is
    // unreachable at these submission rates (pending never gets near 250
    // before a marker fires), so *every* block boundary comes from an
    // ordered cut marker driven by `max_wait`. (250 rather than
    // `usize::MAX` because `workload_config()` sizes the key pool from
    // `max_txns` — an unbounded block would inflate genesis to ~400k
    // keys for no test value.)
    spec.block_cut = parblock_types::BlockCutConfig {
        max_txns: 250,
        max_bytes: usize::MAX,
        max_wait: Duration::from_millis(max_wait_ms),
    };
    spec.costs = parblock_types::ExecutionCosts::per_tx(Duration::from_micros(50));
    spec.capture_state = true;
    spec.durability = DurabilityMode::InMemory;
    spec
}

/// A wall-clock (`max_wait`) cut config is deterministic under the
/// simulated clock: two runs of the same seed produce bit-identical
/// reports, block boundaries included.
#[test]
fn time_cut_blocks_are_deterministic_under_the_simulated_clock() {
    let config = SimConfig::new(time_cut_spec(17, 10), 120, 2_000.0);
    let a = run_sim(&config);
    let b = run_sim(&config);
    assert!(a.completed, "{:?}", a.report);
    assert_eq!(a.report.committed, 120);
    assert!(
        a.report.blocks >= 2,
        "the marker path must actually cut several blocks: {:?}",
        a.report
    );
    assert_eq!(a.report.ledger_head, b.report.ledger_head, "boundaries drifted");
    assert_eq!(a.report.state_digest, b.report.state_digest);
    assert_eq!(a.report, b.report);
    assert_eq!(a.report.digest(), b.report.digest());
    assert_eq!(a.observer_chain, b.observer_chain);
}

/// Mixed count + time cutting stays deterministic too, and different
/// `max_wait` values genuinely change the block boundaries (the time
/// condition is live, not vestigial).
#[test]
fn time_cut_condition_is_live_and_seed_pure() {
    let fast = SimConfig::new(time_cut_spec(23, 5), 100, 2_000.0);
    let slow = SimConfig::new(time_cut_spec(23, 40), 100, 2_000.0);
    let fast_a = run_sim(&fast);
    let fast_b = run_sim(&fast);
    let slow_run = run_sim(&slow);
    assert!(fast_a.completed && slow_run.completed);
    assert_eq!(fast_a.report.digest(), fast_b.report.digest());
    assert!(
        fast_a.report.blocks > slow_run.report.blocks,
        "shorter max_wait must cut more blocks: {} vs {}",
        fast_a.report.blocks,
        slow_run.report.blocks
    );
}

/// The pipeline-equivalence property extends to wall-clock cuts under
/// simulation: with time-driven boundaries, depths 1 and 4 still commit
/// the same blocks in the same order with the same final state. (The
/// threaded suite in `tests/pipeline_equivalence.rs` cannot test this —
/// real-time cut markers make its boundaries nondeterministic.)
#[test]
fn pipeline_depths_agree_under_time_cuts_in_simulation() {
    let mut results = Vec::new();
    for depth in [1usize, 4] {
        let mut spec = time_cut_spec(29, 10);
        spec.exec_pipeline_depth = depth;
        let outcome = run_sim(&SimConfig::new(spec, 100, 2_000.0));
        assert!(outcome.completed, "depth {depth}: {:?}", outcome.report);
        assert_eq!(outcome.report.committed, 100, "depth {depth}");
        results.push((
            outcome.report.ledger_head.expect("head recorded"),
            outcome.report.state_digest.expect("digest captured"),
        ));
    }
    assert_eq!(
        results[0], results[1],
        "pipeline diverged from the barrier under time-driven cuts"
    );
}

/// The optimistic (Block-STM) engine is bit-reproducible under the
/// simulated clock even while it is *actively speculating*: at
/// contention 0.9 some incarnations abort and re-execute, yet two runs
/// of the same seed agree on the entire `RunReport` — speculation
/// counters, block boundaries, ledger head, state digest, and all.
/// (DESIGN.md §11: abort/re-dispatch decisions are pure functions of
/// the deterministic event order, so speculation adds no entropy.)
#[test]
fn optimistic_speculation_is_bit_reproducible() {
    let mut spec = time_cut_spec(31, 10);
    spec.workload.contention = 0.9;
    spec.execution_mode = ExecutionMode::Optimistic;
    let config = SimConfig::new(spec, 120, 2_000.0);
    let a = run_sim(&config);
    let b = run_sim(&config);
    assert!(a.completed, "{:?}", a.report);
    assert_eq!(a.report.committed, 120);
    assert!(
        a.report.aborts > 0 && a.report.re_executions > 0,
        "the run must actually speculate to be a meaningful witness: {:?}",
        a.report
    );
    assert_eq!(a.report, b.report, "speculation leaked nondeterminism");
    assert_eq!(a.report.digest(), b.report.digest());
    assert_eq!(a.observer_chain, b.observer_chain);
}
