//! End-to-end determinism suite for the execution pipeline
//! (DESIGN.md §7): the same seeded cluster, run at
//! `exec_pipeline_depth` 1, 2 and 4 under the accounting workload at
//! several contention levels, must commit the **same blocks in the same
//! order** (equal ledger head hashes) and converge to the **byte-equal
//! final state** (equal state digests). Depth 1 is the paper-faithful
//! barrier, so equality to it proves the pipeline is a pure
//! optimization.

use std::time::Duration;

use parblockchain::{run_fixed, ClusterSpec, SystemKind};
use parblockchain_repro as _;

fn pipelined_spec(contention: f64, depth: usize) -> ClusterSpec {
    let mut spec = ClusterSpec::new(SystemKind::Oxii);
    // Count cuts only (transaction counts are multiples of 25): under the
    // free-running threaded runner, wall-clock time cuts make block
    // boundaries — and hence ledger hashes — nondeterministic run-to-run.
    // The restriction is specific to *this* runner: under the simulated
    // clock, time-cut boundaries are deterministic and the same
    // depth-invariance property is asserted for time-driven cuts in
    // `tests/sim_determinism.rs::pipeline_depths_agree_under_time_cuts_in_simulation`.
    spec.block_cut = parblockchain_repro::types::BlockCutConfig {
        max_txns: 25,
        max_bytes: usize::MAX,
        max_wait: Duration::from_secs(5),
    };
    spec.costs = parblockchain_repro::types::ExecutionCosts::per_tx(Duration::from_micros(50));
    spec.topology.intra = Duration::from_micros(50);
    spec.exec_pool = 4;
    spec.exec_pipeline_depth = depth;
    spec.workload.contention = contention;
    spec.capture_state = true;
    spec
}

/// Ledger hashes and final state digests are identical across pipeline
/// depths 1, 2 and 4 at contention 0.0, 0.5 and 0.9.
#[test]
fn depths_1_2_4_produce_identical_ledger_and_state() {
    for contention in [0.0, 0.5, 0.9] {
        let mut results = Vec::new();
        for depth in [1usize, 2, 4] {
            let spec = pipelined_spec(contention, depth);
            let report = run_fixed(&spec, 200, 2_000.0, Duration::from_secs(30));
            assert_eq!(
                report.committed, 200,
                "depth {depth} at contention {contention}: {report:?}"
            );
            assert_eq!(report.aborted, 0, "depth {depth} at contention {contention}");
            results.push((
                depth,
                report.state_digest.expect("digest captured"),
                report.ledger_head.expect("ledger head recorded"),
            ));
        }
        let (_, base_digest, base_head) = results[0];
        for (depth, digest, head) in &results[1..] {
            assert_eq!(
                *digest, base_digest,
                "state diverged from depth 1 at depth {depth}, contention {contention}"
            );
            assert_eq!(
                *head, base_head,
                "ledger/commit order diverged from depth 1 at depth {depth}, \
                 contention {contention}"
            );
        }
    }
}

/// Cross-application contention forces mid-block COMMIT exchanges between
/// agents; the pipeline must stay byte-equal to the barrier there too.
#[test]
fn cross_app_contention_is_depth_invariant() {
    let mut results = Vec::new();
    for depth in [1usize, 4] {
        let mut spec = pipelined_spec(0.8, depth);
        spec.workload.cross_app = true;
        let report = run_fixed(&spec, 150, 1_500.0, Duration::from_secs(30));
        assert_eq!(report.committed, 150, "depth {depth}: {report:?}");
        results.push((report.state_digest.unwrap(), report.ledger_head.unwrap()));
    }
    assert_eq!(results[0], results[1], "cross-app pipeline diverged");
}

/// τ(A) = 2 (two agents per application must agree) under a deep
/// pipeline: quorum voting and version-stamped write application stay
/// depth-invariant.
#[test]
fn two_agents_per_app_is_depth_invariant() {
    let mut results = Vec::new();
    for depth in [1usize, 4] {
        let mut spec = pipelined_spec(0.5, depth);
        spec.executors_per_app = 2;
        let report = run_fixed(&spec, 150, 1_500.0, Duration::from_secs(30));
        assert_eq!(report.committed, 150, "depth {depth}: {report:?}");
        results.push((report.state_digest.unwrap(), report.ledger_head.unwrap()));
    }
    assert_eq!(results[0], results[1], "τ = 2 pipeline diverged");
}

/// The observer actually pipelines: at depth 4 under pressure, some
/// block must start while another is still in flight (occupancy ≥ 2),
/// while depth 1 only ever records occupancy 1.
#[test]
fn occupancy_metrics_reflect_configured_depth() {
    let run_at = |depth: usize| {
        let mut spec = pipelined_spec(0.0, depth);
        // Heavier execution + non-trivial commit tail so blocks genuinely
        // overlap at the executor.
        spec.costs =
            parblockchain_repro::types::ExecutionCosts::per_tx(Duration::from_micros(400));
        spec.topology.intra = Duration::from_micros(500);
        run_fixed(&spec, 300, 20_000.0, Duration::from_secs(30))
    };
    let deep = run_at(4);
    assert_eq!(deep.committed, 300, "{deep:?}");
    assert!(
        deep.max_occupancy() >= 2,
        "depth 4 never overlapped blocks: occupancy {:?}",
        deep.pipeline_occupancy
    );
    assert!(
        deep.max_occupancy() <= 4,
        "depth 4 exceeded its bound: occupancy {:?}",
        deep.pipeline_occupancy
    );

    let shallow = run_at(1);
    assert_eq!(shallow.committed, 300, "{shallow:?}");
    assert_eq!(
        shallow.max_occupancy(),
        1,
        "depth 1 must be strictly block-at-a-time: occupancy {:?}",
        shallow.pipeline_occupancy
    );
}
