//! Umbrella crate for the ParBlockchain reproduction: re-exports the
//! workspace crates for the examples and cross-crate integration tests.
//!
//! See the repository `README.md` for an overview and `DESIGN.md` for the
//! system inventory and experiment index.

pub use parblock_consensus as consensus;
pub use parblock_contracts as contracts;
pub use parblock_crypto as crypto;
pub use parblock_depgraph as depgraph;
pub use parblock_ledger as ledger;
pub use parblock_net as net;
pub use parblock_sim as sim;
pub use parblock_store as store;
pub use parblock_types as types;
pub use parblock_workload as workload;
pub use parblockchain as system;
