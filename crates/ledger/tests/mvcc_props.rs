//! Property-based tests for [`MvccState`] — the invariants the execution
//! pipeline leans on (DESIGN.md §7): version-positioned reads, sorted
//! chains under arbitrary interleavings, and watermark GC that never
//! changes what a live reader can observe.

use proptest::prelude::*;

use parblock_ledger::{MvccState, Version};
use parblock_types::{BlockNumber, Key, SeqNo, Value};

fn v(block: u64, seq: u32) -> Version {
    Version::new(BlockNumber(block), SeqNo(seq))
}

/// Strategy: an arbitrary interleaving of versioned puts over a small
/// key space. Versions are arbitrary (out-of-order arrival is the norm
/// for parallel executors); values are tagged so each (key, version)
/// write is distinguishable.
fn arb_puts() -> impl Strategy<Value = Vec<(Key, Version, Value)>> {
    proptest::collection::vec((0u64..4, 0u64..5, 0u32..6, 0u64..200), 0..40).prop_map(|specs| {
        specs
            .into_iter()
            .map(|(key, block, seq, val)| {
                (Key(key), v(block, seq), Value::Int(val as i64 - 100))
            })
            .collect()
    })
}

/// Reference model: the latest value among writes with version ≤ position,
/// where a later put to the same (key, version) replaces the earlier one.
fn model_read_at(puts: &[(Key, Version, Value)], key: Key, position: Version) -> Option<Value> {
    let mut best: Option<(Version, &Value)> = None;
    for (k, ver, val) in puts {
        if *k != key || *ver > position {
            continue;
        }
        // `>=` so the last put at an equal version wins (idempotent
        // re-execution replaces).
        if best.is_none_or(|(bv, _)| *ver >= bv) {
            best = Some((*ver, val));
        }
    }
    best.map(|(_, val)| val.clone())
}

fn build(puts: &[(Key, Version, Value)]) -> MvccState {
    let mut state = MvccState::new();
    for (k, ver, val) in puts {
        state.put(*k, val.clone(), *ver);
    }
    state
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `read_at` always returns the value of the greatest version ≤ the
    /// reader position (`None`/Unit when no such version exists).
    #[test]
    fn read_at_returns_greatest_version_at_or_below(
        puts in arb_puts(),
        key in (0u64..4).prop_map(Key),
        block in 0u64..6,
        seq in 0u32..7,
    ) {
        let state = build(&puts);
        let position = v(block, seq);
        let expected = model_read_at(&puts, key, position);
        prop_assert_eq!(state.get_at(key, position), expected.clone());
        prop_assert_eq!(state.read_at(key, position), expected.unwrap_or_default());
    }

    /// Version chains stay strictly sorted (and duplicate-free) under
    /// arbitrary interleaved puts.
    #[test]
    fn chains_stay_sorted_under_interleaved_puts(puts in arb_puts()) {
        let state = build(&puts);
        for key in (0u64..4).map(Key) {
            let versions = state.versions_of(key);
            prop_assert!(
                versions.windows(2).all(|w| w[0] < w[1]),
                "chain of {:?} not strictly ascending: {:?}", key, versions
            );
        }
    }

    /// GC below the watermark never changes any readable value: every
    /// read positioned at or above the horizon returns the same value
    /// before and after `prune`.
    #[test]
    fn prune_below_watermark_preserves_readable_values(
        puts in arb_puts(),
        horizon_block in 0u64..6,
        horizon_seq in 0u32..7,
    ) {
        let horizon = v(horizon_block, horizon_seq);
        let before = build(&puts);
        let mut after = build(&puts);
        after.prune(horizon);
        prop_assert!(after.total_versions() <= before.total_versions());
        for key in (0u64..4).map(Key) {
            // All reader positions ≥ horizon, sampled on the version grid
            // (plus the horizon itself and a far-future position).
            let mut positions = vec![horizon, v(u64::MAX, u32::MAX)];
            positions.extend(
                before.versions_of(key).into_iter().filter(|ver| *ver >= horizon),
            );
            for position in positions {
                prop_assert_eq!(
                    after.get_at(key, position),
                    before.get_at(key, position),
                    "read of {:?} at {:?} changed by prune({:?})", key, position, horizon
                );
            }
        }
    }

    /// The latest value — and hence the state digest — is untouched by
    /// pruning at any horizon.
    #[test]
    fn prune_never_changes_latest_or_digest(
        puts in arb_puts(),
        horizon_block in 0u64..6,
    ) {
        let before = build(&puts);
        let mut after = build(&puts);
        after.prune(v(horizon_block, 0));
        for key in (0u64..4).map(Key) {
            prop_assert_eq!(after.latest(key), before.latest(key));
        }
        prop_assert_eq!(after.digest(), before.digest());
    }

    /// Speculative writes are invisible to every committed-layer accessor
    /// — `get_at`, `latest`, `digest`, `digest_at`, `snapshot_at` — both
    /// while they are live and after they are retracted: an optimistic
    /// incarnation's unvalidated effects can never leak into a state
    /// digest or a ledger-visible read, aborted or not.
    #[test]
    fn speculative_writes_never_leak_into_committed_accessors(
        puts in arb_puts(),
        spec_puts in arb_puts(),
        probe_block in 0u64..6,
        probe_seq in 0u32..7,
    ) {
        let committed_only = build(&puts);
        let mut overlaid = build(&puts);
        for (k, ver, val) in &spec_puts {
            overlaid.put_speculative(*k, val.clone(), *ver);
        }
        let probe = v(probe_block, probe_seq);
        prop_assert_eq!(overlaid.digest(), committed_only.digest());
        prop_assert_eq!(overlaid.digest_at(probe), committed_only.digest_at(probe));
        prop_assert_eq!(overlaid.snapshot_at(probe), committed_only.snapshot_at(probe));
        for key in (0u64..4).map(Key) {
            prop_assert_eq!(overlaid.get_at(key, probe), committed_only.get_at(key, probe));
            prop_assert_eq!(overlaid.latest(key), committed_only.latest(key));
        }
        // Retract everything (abort path) — still identical, and the
        // overlay is verifiably empty.
        for (k, ver, _) in &spec_puts {
            overlaid.retract_speculative(*ver, std::slice::from_ref(k));
        }
        prop_assert_eq!(overlaid.speculative_versions(), 0);
        prop_assert_eq!(overlaid.digest(), committed_only.digest());
        prop_assert_eq!(overlaid.snapshot_at(probe), committed_only.snapshot_at(probe));
    }

    /// `get_at_speculative` returns the newest version **strictly below**
    /// the reader position across both layers, preferring the committed
    /// layer on a version tie — checked against a brute-force model.
    #[test]
    fn speculative_read_matches_two_layer_model(
        puts in arb_puts(),
        spec_puts in arb_puts(),
        key in (0u64..4).prop_map(Key),
        block in 0u64..6,
        seq in 0u32..7,
    ) {
        let mut state = build(&puts);
        for (k, ver, val) in &spec_puts {
            state.put_speculative(*k, val.clone(), *ver);
        }
        let position = v(block, seq);
        // Model: committed puts shadow speculative puts at equal versions;
        // last put per (layer, key, version) wins; strictly-below filter.
        let mut best: Option<(Version, bool, Value)> = None; // (ver, from_committed, val)
        for (committed, layer) in [(false, &spec_puts), (true, &puts)] {
            for (k, ver, val) in layer.iter() {
                if *k != key || *ver >= position {
                    continue;
                }
                let better = match &best {
                    None => true,
                    Some((bv, bc, _)) => {
                        *ver > *bv || (*ver == *bv && (committed || !bc))
                    }
                };
                if better {
                    best = Some((*ver, committed, val.clone()));
                }
            }
        }
        let expected = best.map(|(ver, _, val)| (val, ver));
        prop_assert_eq!(state.get_at_speculative(key, position), expected);
    }
}
