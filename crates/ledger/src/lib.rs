//! The blockchain ledger and state stores (§III-B).
//!
//! Each executor peer maintains: (1) the blockchain *ledger*, an
//! append-only hash chain of blocks, and (2) the blockchain *state*, a
//! datastore mapping keys to values. This crate provides both, plus the
//! multi-version store sketched in §III-A's multi-version adaptation.
//!
//! * [`Ledger`] — hash-chained append-only block log with verification.
//! * [`KvState`] — single-version store with per-key [`Version`] stamps;
//!   the version stamps power XOV's read-set validation.
//! * [`MvccState`] — multi-version store keeping the version history of
//!   each key.
//! * [`Durability`] — the persistence seam executor nodes seal blocks
//!   and log committed effects through ([`InMemory`] here; the durable
//!   implementation lives in `parblock_store`).
//!
//! # Examples
//!
//! ```
//! use parblock_ledger::{KvState, Version};
//! use parblock_types::{BlockNumber, Key, SeqNo, Value};
//!
//! let mut state = KvState::new();
//! let v1 = Version::new(BlockNumber(1), SeqNo(0));
//! state.put(Key(1001), Value::Int(100), v1);
//! assert_eq!(state.get(Key(1001)), Value::Int(100));
//! assert_eq!(state.version_of(Key(1001)), Some(v1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chain;
mod durability;
mod kv;
mod mvcc;

pub use chain::{ChainError, Ledger};
pub use durability::{prune_to_sealed, Durability, DurabilityStats, InMemory};
pub use kv::{KvState, Version};
pub use mvcc::MvccState;
