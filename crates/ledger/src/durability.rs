//! The durability interface executor nodes write their ledger and state
//! through.
//!
//! ParBlockchain nodes are stateful services: orderers own the chain and
//! agents own the datastore (§III). This trait is the seam between the
//! execution runtime and whatever persistence sits underneath it:
//!
//! * [`InMemory`] (here) — no persistence; the seed behaviour, used by
//!   tests and by throughput baselines.
//! * `OnDisk` (in `parblock_store`) — write-ahead log + block store +
//!   checkpoints, with crash recovery.
//!
//! The trait also owns multi-version garbage collection: sealing a block
//! advances the commit watermark, and the *same* hook prunes state
//! versions below it (and, on disk, truncates the WAL below the last
//! checkpoint), so version GC and log truncation advance together
//! instead of depending on callers passing watermarks around manually.

use parblock_depgraph::DependencyGraph;
use parblock_types::{Block, Hash32, Key, SeqNo, Value};

use crate::kv::Version;
use crate::mvcc::MvccState;

/// Counters a [`Durability`] implementation accumulates over its life,
/// surfaced through `RunReport` for durability-overhead observability.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DurabilityStats {
    /// Bytes appended to the write-ahead log (framing included).
    pub wal_bytes_written: u64,
    /// Number of `fsync` barriers issued (WAL group commits, block-store
    /// seals, checkpoint publishes).
    pub fsync_count: u64,
    /// Checkpoints written.
    pub checkpoint_count: u64,
    /// WAL records replayed above the checkpoint during recovery (zero
    /// for a store that started empty).
    pub recovery_replay_len: u64,
}

impl DurabilityStats {
    /// Element-wise sum, for aggregating per-node stats.
    #[must_use]
    pub fn merged(self, other: DurabilityStats) -> DurabilityStats {
        DurabilityStats {
            wal_bytes_written: self.wal_bytes_written + other.wal_bytes_written,
            fsync_count: self.fsync_count + other.fsync_count,
            checkpoint_count: self.checkpoint_count + other.checkpoint_count,
            recovery_replay_len: self.recovery_replay_len + other.recovery_replay_len,
        }
    }
}

/// Where an executor persists committed effects and sealed blocks.
///
/// The contract (DESIGN.md §9):
///
/// 1. [`Durability::log_effects`] is called with a transaction's
///    committed write-set **before** any COMMIT message carrying that
///    result leaves the node. The append may be buffered (group
///    commit): effects only become *load-bearing* at the seal barrier,
///    because recovery drops everything above the last sealed block
///    and the resumed cluster deterministically re-executes it.
/// 2. [`Durability::seal_block`] is called when a block fully commits —
///    after the caller's in-memory ledger append computes the new head
///    hash, but **before** the node acknowledges the block externally
///    (metrics, observers, further COMMIT traffic). On return the
///    block and every effect at or below it must be durable (the fsync
///    barrier); `head` must be the chain head hash *including* the
///    sealed block, or recovery's chain-vs-head integrity check will
///    reject the store.
/// 3. `seal_block` owns garbage collection: it prunes `state` below the
///    new watermark, so checkpointing (which snapshots the pruned state)
///    and version GC advance in the same step.
pub trait Durability: Send {
    /// Persists the committed write-set of the transaction at `version`.
    fn log_effects(&mut self, version: Version, writes: &[(Key, Value)]);

    /// Durably seals `block` (with its dependency graph, when the system
    /// carries one) at the new commit watermark. `head` is the ledger
    /// head hash *after* this block. Also prunes `state` below the
    /// watermark (see trait docs).
    fn seal_block(
        &mut self,
        block: &Block,
        graph: Option<&DependencyGraph>,
        head: Hash32,
        state: &mut MvccState,
    );

    /// Counters accumulated so far.
    fn stats(&self) -> DurabilityStats;
}

/// Prunes `state` to the watermark a just-sealed block establishes:
/// every future reader is positioned in a later block, so only the
/// newest version at or below the end of this block stays reachable per
/// key. Shared by every [`Durability`] implementation.
pub fn prune_to_sealed(block: &Block, state: &mut MvccState) {
    state.prune(Version::new(block.number(), SeqNo(u32::MAX)));
}

/// The no-persistence implementation: version GC still advances at every
/// seal, but nothing touches disk and every counter stays zero.
#[derive(Debug, Clone, Copy, Default)]
pub struct InMemory;

impl Durability for InMemory {
    fn log_effects(&mut self, _version: Version, _writes: &[(Key, Value)]) {}

    fn seal_block(
        &mut self,
        block: &Block,
        _graph: Option<&DependencyGraph>,
        _head: Hash32,
        state: &mut MvccState,
    ) {
        prune_to_sealed(block, state);
    }

    fn stats(&self) -> DurabilityStats {
        DurabilityStats::default()
    }
}

#[cfg(test)]
mod tests {
    use parblock_types::{BlockNumber, Hash32};

    use super::*;

    #[test]
    fn in_memory_seal_prunes_state_and_reports_zero_stats() {
        let mut durability = InMemory;
        let mut state = MvccState::new();
        for block in 1..=3u64 {
            state.put(
                Key(1),
                Value::Int(block as i64),
                Version::new(BlockNumber(block), SeqNo(0)),
            );
        }
        durability.log_effects(Version::GENESIS, &[(Key(1), Value::Int(0))]);
        let sealed = Block::new(BlockNumber(2), Hash32::ZERO, vec![]);
        durability.seal_block(&sealed, None, Hash32::ZERO, &mut state);
        // Versions below block 2 collapsed to the newest visible one.
        assert_eq!(state.version_count(Key(1)), 2);
        assert_eq!(durability.stats(), DurabilityStats::default());
    }

    #[test]
    fn stats_merge_elementwise() {
        let a = DurabilityStats {
            wal_bytes_written: 1,
            fsync_count: 2,
            checkpoint_count: 3,
            recovery_replay_len: 4,
        };
        let b = DurabilityStats {
            wal_bytes_written: 10,
            fsync_count: 20,
            checkpoint_count: 30,
            recovery_replay_len: 40,
        };
        assert_eq!(
            a.merged(b),
            DurabilityStats {
                wal_bytes_written: 11,
                fsync_count: 22,
                checkpoint_count: 33,
                recovery_replay_len: 44,
            }
        );
    }
}
