//! Single-version key-value state with version stamps.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use parblock_types::{BlockNumber, Key, SeqNo, Value};

/// The version of a record: the block and in-block position of the
/// transaction that last wrote it (Fabric-style `(block, tx)` versions).
///
/// XOV endorsers record the versions they read; the validation phase
/// aborts a transaction whose read versions are stale.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Version {
    /// Block of the writing transaction.
    pub block: BlockNumber,
    /// In-block position of the writing transaction.
    pub seq: SeqNo,
}

impl Version {
    /// Creates a version stamp.
    #[must_use]
    pub fn new(block: BlockNumber, seq: SeqNo) -> Self {
        Version { block, seq }
    }

    /// The version of values present before any block executed.
    pub const GENESIS: Version = Version {
        block: BlockNumber(0),
        seq: SeqNo(0),
    };
}

/// The blockchain state: a versioned key-value datastore.
///
/// Reads of absent keys return [`Value::Unit`] — the paper's accounting
/// application treats missing accounts as invalid at the contract level.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct KvState {
    entries: HashMap<Key, (Value, Version)>,
}

impl KvState {
    /// Creates an empty state.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a state pre-loaded with genesis values.
    pub fn with_genesis<I: IntoIterator<Item = (Key, Value)>>(items: I) -> Self {
        let mut state = Self::new();
        for (k, v) in items {
            state.put(k, v, Version::GENESIS);
        }
        state
    }

    /// Reads the current value of `key` ([`Value::Unit`] if absent).
    #[must_use]
    pub fn get(&self, key: Key) -> Value {
        self.entries
            .get(&key)
            .map(|(v, _)| v.clone())
            .unwrap_or_default()
    }

    /// Reads the value and its version, if present.
    #[must_use]
    pub fn get_versioned(&self, key: Key) -> Option<(Value, Version)> {
        self.entries.get(&key).cloned()
    }

    /// The version of `key`, if present.
    #[must_use]
    pub fn version_of(&self, key: Key) -> Option<Version> {
        self.entries.get(&key).map(|(_, v)| *v)
    }

    /// Writes `value` under `key` stamped with `version`.
    pub fn put(&mut self, key: Key, value: Value, version: Version) {
        self.entries.insert(key, (value, version));
    }

    /// Applies a batch of writes, all stamped with `version`.
    pub fn apply<I: IntoIterator<Item = (Key, Value)>>(&mut self, writes: I, version: Version) {
        for (k, v) in writes {
            self.put(k, v, version);
        }
    }

    /// Applies writes only where `version` is newer than the stored
    /// version — last-writer-wins by `(block, seq)` order, so commit
    /// results may be applied in any arrival order (parallel executors)
    /// and still converge to the serial-order state.
    pub fn apply_versioned<I: IntoIterator<Item = (Key, Value)>>(
        &mut self,
        writes: I,
        version: Version,
    ) {
        for (k, v) in writes {
            let stale = self.version_of(k).is_some_and(|existing| existing >= version);
            if !stale {
                self.put(k, v, version);
            }
        }
    }

    /// Number of keys present.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when no key is present.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Validates that every `(key, version)` pair still matches the
    /// current state — the XOV validation-phase check. Missing keys match
    /// only a `None` expectation.
    #[must_use]
    pub fn versions_match<'a, I>(&self, reads: I) -> bool
    where
        I: IntoIterator<Item = (&'a Key, &'a Option<Version>)>,
    {
        reads
            .into_iter()
            .all(|(key, expected)| self.version_of(*key) == *expected)
    }

    /// Iterates over all `(key, value, version)` entries in arbitrary
    /// order.
    pub fn iter(&self) -> impl Iterator<Item = (Key, &Value, Version)> {
        self.entries.iter().map(|(k, (v, ver))| (*k, v, *ver))
    }

    /// A digest of the *values* (keys and contents, not versions), used
    /// to compare final states across systems and replicas. Two states
    /// with the same key→value mapping share a digest even if the
    /// versions that produced them differ.
    #[must_use]
    pub fn digest(&self) -> parblock_types::Hash32 {
        // lint:allow(unordered-iter) — digest_entries sorts by key before hashing
        digest_entries(self.entries.iter().map(|(k, (v, _))| (*k, v)))
    }
}

/// Hashes a key→value mapping (sorted by key internally) into the state
/// digest. Shared by [`KvState::digest`] and
/// [`crate::MvccState::digest`] so single- and multi-version stores that
/// converged to the same mapping stay byte-compatible.
pub(crate) fn digest_entries<'a, I>(entries: I) -> parblock_types::Hash32
where
    I: IntoIterator<Item = (Key, &'a Value)>,
{
    // lint:allow(unordered-iter) — collected into a Vec and sorted by key below
    let mut entries: Vec<(Key, &Value)> = entries.into_iter().collect();
    entries.sort_by_key(|(k, _)| *k);
    let mut hasher = parblock_crypto::Sha256::new();
    // lint:allow(unordered-iter) — iterates the Vec sorted by key just above
    for (key, value) in entries {
        hasher.update(&key.0.to_le_bytes());
        // lint:allow(hot-path-alloc) — frozen preimage: historical RunReport
        // digests pin this rendering, and it runs once per run (capture_state),
        // never on the commit hot path. Changing it requires a version bump.
        hasher.update(format!("{value:?}").as_bytes());
    }
    hasher.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(block: u64, seq: u32) -> Version {
        Version::new(BlockNumber(block), SeqNo(seq))
    }

    #[test]
    fn absent_keys_read_unit() {
        let state = KvState::new();
        assert_eq!(state.get(Key(1)), Value::Unit);
        assert_eq!(state.get_versioned(Key(1)), None);
        assert!(state.is_empty());
    }

    #[test]
    fn put_then_get_with_version() {
        let mut state = KvState::new();
        state.put(Key(1), Value::Int(10), v(1, 3));
        assert_eq!(state.get(Key(1)), Value::Int(10));
        assert_eq!(state.version_of(Key(1)), Some(v(1, 3)));
        assert_eq!(state.len(), 1);
    }

    #[test]
    fn apply_batch_stamps_uniform_version() {
        let mut state = KvState::new();
        state.apply([(Key(1), Value::Int(1)), (Key(2), Value::Int(2))], v(2, 0));
        assert_eq!(state.version_of(Key(1)), Some(v(2, 0)));
        assert_eq!(state.version_of(Key(2)), Some(v(2, 0)));
    }

    #[test]
    fn versions_match_detects_staleness() {
        let mut state = KvState::new();
        state.put(Key(1), Value::Int(1), v(1, 0));
        let fresh = Some(v(1, 0));
        let reads = [(&Key(1), &fresh)];
        assert!(state.versions_match(reads.iter().copied()));

        state.put(Key(1), Value::Int(2), v(2, 0)); // overwritten
        assert!(!state.versions_match(reads.iter().copied()));
    }

    #[test]
    fn versions_match_handles_absent_keys() {
        let state = KvState::new();
        let none = None;
        let reads = [(&Key(9), &none)];
        assert!(state.versions_match(reads.iter().copied()));
        let stale = Some(Version::GENESIS);
        let reads = [(&Key(9), &stale)];
        assert!(!state.versions_match(reads.iter().copied()));
    }

    #[test]
    fn apply_versioned_is_order_insensitive() {
        // Writes from (block 1, seq 5) and (block 1, seq 2) applied in
        // either order converge to the seq-5 value.
        let mut forward = KvState::new();
        forward.apply_versioned([(Key(1), Value::Int(2))], v(1, 2));
        forward.apply_versioned([(Key(1), Value::Int(5))], v(1, 5));
        let mut backward = KvState::new();
        backward.apply_versioned([(Key(1), Value::Int(5))], v(1, 5));
        backward.apply_versioned([(Key(1), Value::Int(2))], v(1, 2));
        assert_eq!(forward.get(Key(1)), Value::Int(5));
        assert_eq!(backward.get(Key(1)), Value::Int(5));
        assert_eq!(backward.version_of(Key(1)), Some(v(1, 5)));
    }

    #[test]
    fn genesis_constructor() {
        let state = KvState::with_genesis([(Key(1), Value::Int(100))]);
        assert_eq!(state.get(Key(1)), Value::Int(100));
        assert_eq!(state.version_of(Key(1)), Some(Version::GENESIS));
    }

    #[test]
    fn versions_order_by_block_then_seq() {
        assert!(v(1, 5) < v(2, 0));
        assert!(v(1, 0) < v(1, 1));
    }

    #[test]
    fn iter_visits_every_entry() {
        let state = KvState::with_genesis([(Key(1), Value::Int(1)), (Key(2), Value::Int(2))]);
        assert_eq!(state.iter().count(), 2);
    }

    #[test]
    fn digest_ignores_versions_but_not_values() {
        let mut a = KvState::new();
        a.put(Key(1), Value::Int(1), v(1, 0));
        let mut b = KvState::new();
        b.put(Key(1), Value::Int(1), v(9, 9));
        assert_eq!(a.digest(), b.digest());
        b.put(Key(1), Value::Int(2), v(10, 0));
        assert_ne!(a.digest(), b.digest());
    }
}
