//! The append-only, hash-chained block ledger.

use std::error::Error;
use std::fmt;

use parblock_crypto::hash_wire;
use parblock_types::{Block, BlockNumber, Hash32};

/// Errors returned when appending to or verifying a [`Ledger`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ChainError {
    /// The appended block's number is not `last + 1`.
    NonContiguous {
        /// The expected next block number.
        expected: BlockNumber,
        /// The number the block carried.
        got: BlockNumber,
    },
    /// The appended block's `prev_hash` does not match the chain head.
    BrokenLink {
        /// The block that failed to link.
        block: BlockNumber,
    },
}

impl fmt::Display for ChainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChainError::NonContiguous { expected, got } => {
                write!(f, "expected block {expected}, got {got}")
            }
            ChainError::BrokenLink { block } => {
                write!(f, "block {block} does not link to the chain head")
            }
        }
    }
}

impl Error for ChainError {}

/// An append-only data structure recording all transactions in the form of
/// a hash chain (§III-B).
///
/// Block 0 is an implicit empty genesis block with `prev_hash = 0`; the
/// first appended block must be block 1 linking to the genesis hash.
///
/// # Examples
///
/// ```
/// use parblock_ledger::Ledger;
/// use parblock_types::{Block, BlockNumber};
///
/// let mut ledger = Ledger::new();
/// let block = Block::new(BlockNumber(1), ledger.head_hash(), vec![]);
/// ledger.append(block)?;
/// assert_eq!(ledger.height(), 1);
/// assert!(ledger.verify().is_ok());
/// # Ok::<(), parblock_ledger::ChainError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Ledger {
    blocks: Vec<Block>,
    /// `hashes[i]` = H(blocks[i]), cached for O(1) appends.
    hashes: Vec<Hash32>,
}

impl Ledger {
    /// Creates a ledger containing only the implicit genesis block.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The hash of the chain head (genesis hash when empty).
    #[must_use]
    pub fn head_hash(&self) -> Hash32 {
        self.hashes.last().copied().unwrap_or(Self::genesis_hash())
    }

    /// The hash of the implicit genesis block.
    #[must_use]
    pub fn genesis_hash() -> Hash32 {
        let genesis = Block::new(BlockNumber::GENESIS, Hash32::ZERO, vec![]);
        hash_wire(&genesis)
    }

    /// Number of appended blocks (excluding genesis).
    #[must_use]
    pub fn height(&self) -> usize {
        self.blocks.len()
    }

    /// Returns `true` when only the genesis block exists.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// The next block number the ledger will accept.
    #[must_use]
    pub fn next_number(&self) -> BlockNumber {
        BlockNumber(self.blocks.len() as u64 + 1)
    }

    /// The block with number `n`, if appended.
    #[must_use]
    pub fn block(&self, n: BlockNumber) -> Option<&Block> {
        n.0.checked_sub(1).and_then(|i| self.blocks.get(i as usize))
    }

    /// The chain head hash *as of* block `n` — i.e. the hash of block `n`
    /// (the genesis hash for `n = 0`). `None` when `n` exceeds the
    /// height. Two ledgers agree on a common prefix iff their hashes at
    /// the shorter height are equal, which is how the simulation oracles
    /// check prefix consistency of lagging replicas.
    #[must_use]
    pub fn hash_at(&self, n: BlockNumber) -> Option<Hash32> {
        if n.0 == 0 {
            return Some(Self::genesis_hash());
        }
        n.0.checked_sub(1)
            .and_then(|i| self.hashes.get(i as usize))
            .copied()
    }

    /// Iterates appended blocks in chain order.
    pub fn iter(&self) -> impl Iterator<Item = &Block> {
        self.blocks.iter()
    }

    /// Appends `block`, checking contiguity and the hash link.
    ///
    /// # Errors
    ///
    /// [`ChainError::NonContiguous`] if the block number skips or repeats;
    /// [`ChainError::BrokenLink`] if `prev_hash` does not equal the current
    /// head hash.
    pub fn append(&mut self, block: Block) -> Result<(), ChainError> {
        let expected = self.next_number();
        if block.number() != expected {
            return Err(ChainError::NonContiguous {
                expected,
                got: block.number(),
            });
        }
        if block.header().prev_hash != self.head_hash() {
            return Err(ChainError::BrokenLink {
                block: block.number(),
            });
        }
        let hash = hash_wire(&block);
        self.blocks.push(block);
        self.hashes.push(hash);
        Ok(())
    }

    /// Re-validates the entire chain (hash links and cached hashes).
    ///
    /// # Errors
    ///
    /// Returns the first [`ChainError::BrokenLink`] found.
    pub fn verify(&self) -> Result<(), ChainError> {
        let mut prev = Self::genesis_hash();
        for (i, block) in self.blocks.iter().enumerate() {
            if block.header().prev_hash != prev || hash_wire(block) != self.hashes[i] {
                return Err(ChainError::BrokenLink {
                    block: block.number(),
                });
            }
            prev = self.hashes[i];
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use parblock_types::{AppId, ClientId, RwSet, Transaction};

    use super::*;

    fn tx(ts: u64) -> Transaction {
        Transaction::new(AppId(0), ClientId(1), ts, RwSet::default(), vec![])
    }

    fn extend(ledger: &mut Ledger, n_blocks: usize) {
        for _ in 0..n_blocks {
            let block = Block::new(ledger.next_number(), ledger.head_hash(), vec![tx(0)]);
            ledger.append(block).expect("append");
        }
    }

    #[test]
    fn append_and_lookup() {
        let mut ledger = Ledger::new();
        extend(&mut ledger, 3);
        assert_eq!(ledger.height(), 3);
        assert!(ledger.block(BlockNumber(2)).is_some());
        assert!(ledger.block(BlockNumber(0)).is_none());
        assert!(ledger.block(BlockNumber(4)).is_none());
        assert_eq!(ledger.iter().count(), 3);
    }

    #[test]
    fn rejects_non_contiguous_numbers() {
        let mut ledger = Ledger::new();
        let block = Block::new(BlockNumber(5), ledger.head_hash(), vec![]);
        assert_eq!(
            ledger.append(block),
            Err(ChainError::NonContiguous {
                expected: BlockNumber(1),
                got: BlockNumber(5),
            })
        );
    }

    #[test]
    fn rejects_broken_hash_link() {
        let mut ledger = Ledger::new();
        extend(&mut ledger, 1);
        let bad = Block::new(BlockNumber(2), Hash32::ZERO, vec![]);
        assert_eq!(
            ledger.append(bad),
            Err(ChainError::BrokenLink {
                block: BlockNumber(2)
            })
        );
    }

    #[test]
    fn verify_detects_tampering() {
        let mut ledger = Ledger::new();
        extend(&mut ledger, 3);
        assert!(ledger.verify().is_ok());
        // Tamper with a middle block.
        let tampered = Block::new(BlockNumber(2), ledger.hashes[0], vec![tx(99)]);
        ledger.blocks[1] = tampered;
        assert!(matches!(
            ledger.verify(),
            Err(ChainError::BrokenLink { .. })
        ));
    }

    #[test]
    fn hash_at_walks_the_chain() {
        let mut ledger = Ledger::new();
        extend(&mut ledger, 3);
        assert_eq!(ledger.hash_at(BlockNumber(0)), Some(Ledger::genesis_hash()));
        assert_eq!(ledger.hash_at(BlockNumber(3)), Some(ledger.head_hash()));
        assert_eq!(ledger.hash_at(BlockNumber(4)), None);
        // A shorter replica holding the same prefix agrees at its height.
        let mut shorter = Ledger::new();
        extend(&mut shorter, 2);
        assert_eq!(ledger.hash_at(BlockNumber(2)), Some(shorter.head_hash()));
    }

    #[test]
    fn identical_ledgers_share_head_hash() {
        let mut a = Ledger::new();
        let mut b = Ledger::new();
        extend(&mut a, 2);
        extend(&mut b, 2);
        assert_eq!(a.head_hash(), b.head_hash());
    }

    #[test]
    fn error_display() {
        let e = ChainError::NonContiguous {
            expected: BlockNumber(1),
            got: BlockNumber(3),
        };
        assert!(e.to_string().contains("#1"));
        assert!(e.to_string().contains("#3"));
    }
}
