//! A multi-version key-value store.
//!
//! §III-A: "The dependency graph generator … can also be adapted to a
//! multi-version database system. In a multi-version database, each write
//! creates a new version of a data item, and reads are directed to the
//! correct version based on the position of the corresponding transaction
//! in the block (log)."

use std::collections::HashMap;

use parblock_types::{Key, Value};

use crate::kv::Version;

/// A store keeping every written version of each key.
///
/// # Examples
///
/// ```
/// use parblock_ledger::{MvccState, Version};
/// use parblock_types::{BlockNumber, Key, SeqNo, Value};
///
/// let mut state = MvccState::new();
/// let v1 = Version::new(BlockNumber(1), SeqNo(0));
/// let v2 = Version::new(BlockNumber(1), SeqNo(5));
/// state.put(Key(1), Value::Int(10), v1);
/// state.put(Key(1), Value::Int(20), v2);
/// // A reader positioned between the writes sees the first version.
/// let between = Version::new(BlockNumber(1), SeqNo(3));
/// assert_eq!(state.read_at(Key(1), between), Value::Int(10));
/// assert_eq!(state.latest(Key(1)), Value::Int(20));
/// ```
#[derive(Debug, Clone, Default)]
pub struct MvccState {
    /// Version chains, each sorted ascending by version.
    chains: HashMap<Key, Vec<(Version, Value)>>,
    /// Speculative overlay for the optimistic (Block-STM) executor:
    /// versions written by incarnations that have **not validated yet**.
    /// Visible only through [`MvccState::get_at_speculative`] — digests,
    /// snapshots and pruning never see this layer, so an aborted
    /// incarnation can be retracted without a trace.
    spec_chains: HashMap<Key, Vec<(Version, Value)>>,
}

impl MvccState {
    /// Creates an empty store.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a store pre-loaded with genesis values.
    pub fn with_genesis<I: IntoIterator<Item = (Key, Value)>>(items: I) -> Self {
        let mut state = Self::new();
        for (k, v) in items {
            state.put(k, v, Version::GENESIS);
        }
        state
    }

    /// Writes a new version of `key`.
    ///
    /// Versions may arrive out of order (parallel executors): the chain is
    /// kept sorted by version. Writing the same version twice replaces the
    /// value (idempotent re-execution).
    pub fn put(&mut self, key: Key, value: Value, version: Version) {
        let chain = self.chains.entry(key).or_default();
        match chain.binary_search_by_key(&version, |(v, _)| *v) {
            Ok(i) => chain[i].1 = value,
            Err(i) => chain.insert(i, (version, value)),
        }
    }

    /// Applies a batch of writes, all stamped with `version`.
    pub fn apply<I: IntoIterator<Item = (Key, Value)>>(&mut self, writes: I, version: Version) {
        for (k, v) in writes {
            self.put(k, v, version);
        }
    }

    /// Reads the value of `key` visible at `position`: the latest version
    /// `≤ position`. Returns [`Value::Unit`] if no such version exists.
    #[must_use]
    pub fn read_at(&self, key: Key, position: Version) -> Value {
        self.get_at(key, position).unwrap_or_default()
    }

    /// Reads the value of `key` visible at `position`, distinguishing a
    /// key with **no version** at or below the position (`None`) from one
    /// explicitly holding a value — the presence signal contract aborts on
    /// missing state are built from.
    #[must_use]
    pub fn get_at(&self, key: Key, position: Version) -> Option<Value> {
        let chain = self.chains.get(&key)?;
        match chain.binary_search_by_key(&position, |(v, _)| *v) {
            Ok(i) => Some(chain[i].1.clone()),
            Err(0) => None,
            Err(i) => Some(chain[i - 1].1.clone()),
        }
    }

    // ---- speculative layer (optimistic execution) -------------------

    /// Writes a **speculative** version of `key`: visible to speculative
    /// readers positioned above it, invisible to every committed-layer
    /// accessor (`read_at`/`get_at`/`digest*`/`snapshot_at`/`prune`).
    /// Promotion is retract-then-[`MvccState::put`] once the writing
    /// incarnation validates.
    pub fn put_speculative(&mut self, key: Key, value: Value, version: Version) {
        let chain = self.spec_chains.entry(key).or_default();
        match chain.binary_search_by_key(&version, |(v, _)| *v) {
            Ok(i) => chain[i].1 = value,
            Err(i) => chain.insert(i, (version, value)),
        }
    }

    /// Applies a batch of speculative writes, all stamped with `version`.
    pub fn apply_speculative<I: IntoIterator<Item = (Key, Value)>>(
        &mut self,
        writes: I,
        version: Version,
    ) {
        for (k, v) in writes {
            self.put_speculative(k, v, version);
        }
    }

    /// Removes the speculative versions of `keys` stamped exactly
    /// `version` (an aborted or promoted incarnation's writes). Missing
    /// entries are ignored, so retraction is idempotent.
    pub fn retract_speculative(&mut self, version: Version, keys: &[Key]) {
        for key in keys {
            if let Some(chain) = self.spec_chains.get_mut(key) {
                if let Ok(i) = chain.binary_search_by_key(&version, |(v, _)| *v) {
                    chain.remove(i);
                }
                if chain.is_empty() {
                    self.spec_chains.remove(key);
                }
            }
        }
    }

    /// The optimistic executor's read: the newest version **strictly
    /// below** `position` across the committed *and* speculative layers,
    /// with the version stamp the reader observed. Strictly below —
    /// rather than `get_at`'s at-or-below — so a transaction that both
    /// reads and writes a key never observes its own speculative write
    /// when its read set is re-validated after execution. On a version
    /// tie between the layers (an incarnation promoted but not yet
    /// retracted) the committed value wins.
    #[must_use]
    pub fn get_at_speculative(
        &self,
        key: Key,
        position: Version,
    ) -> Option<(Value, Version)> {
        let newest_below = |chain: &Vec<(Version, Value)>| {
            let below = chain.partition_point(|(v, _)| *v < position);
            below.checked_sub(1).map(|i| chain[i].clone())
        };
        let committed = self.chains.get(&key).and_then(newest_below);
        let speculative = self.spec_chains.get(&key).and_then(newest_below);
        match (committed, speculative) {
            (Some((cver, cval)), Some((sver, _))) if cver >= sver => Some((cval, cver)),
            (_, Some((sver, sval))) => Some((sval, sver)),
            (Some((cver, cval)), None) => Some((cval, cver)),
            (None, None) => None,
        }
    }

    /// Number of speculative versions currently held (across all keys) —
    /// must be zero once every in-flight incarnation has validated or
    /// retracted.
    #[must_use]
    pub fn speculative_versions(&self) -> usize {
        self.spec_chains.values().map(Vec::len).sum()
    }

    /// Reads the newest version of `key`.
    #[must_use]
    pub fn latest(&self, key: Key) -> Value {
        self.chains
            .get(&key)
            .and_then(|chain| chain.last())
            .map(|(_, v)| v.clone())
            .unwrap_or_default()
    }

    /// Number of stored versions of `key`.
    #[must_use]
    pub fn version_count(&self, key: Key) -> usize {
        self.chains.get(&key).map_or(0, Vec::len)
    }

    /// The versions of `key`, ascending (empty if the key was never
    /// written). Exposed for invariant checks and tests.
    #[must_use]
    pub fn versions_of(&self, key: Key) -> Vec<Version> {
        self.chains
            .get(&key)
            .map(|chain| chain.iter().map(|(v, _)| *v).collect())
            .unwrap_or_default()
    }

    /// Total number of stored versions across all keys — the quantity the
    /// commit-watermark garbage collection bounds.
    #[must_use]
    pub fn total_versions(&self) -> usize {
        self.chains.values().map(Vec::len).sum()
    }

    /// A digest of the **latest** values (keys and contents, not version
    /// histories), byte-compatible with [`crate::KvState::digest`] (the
    /// serialization is shared): a multi-version store and a
    /// single-version store that converged to the same key→value mapping
    /// share a digest.
    #[must_use]
    pub fn digest(&self) -> parblock_types::Hash32 {
        crate::kv::digest_entries(
            self.chains
                // lint:allow(unordered-iter) — digest_entries sorts by key before hashing
                .iter()
                .filter_map(|(k, chain)| chain.last().map(|(_, v)| (*k, v))),
        )
    }

    /// A digest of the values visible at `horizon` (the newest version at
    /// or below it per key), byte-compatible with [`MvccState::digest`].
    /// A replica whose commit watermark stopped at block `w` is
    /// prefix-consistent with a reference replay iff its `digest_at` the
    /// watermark equals the replay's digest at height `w` — even when the
    /// replica has already applied quorum-voted writes from later,
    /// still-in-flight blocks.
    #[must_use]
    pub fn digest_at(&self, horizon: Version) -> parblock_types::Hash32 {
        crate::kv::digest_entries(
            // lint:allow(unordered-iter) — digest_entries sorts by key before hashing
            self.chains.iter().filter_map(|(k, chain)| {
                let below = chain.partition_point(|(v, _)| *v <= horizon);
                below.checked_sub(1).map(|i| (*k, &chain[i].1))
            }),
        )
    }

    /// The newest version at or below `horizon` for every key, i.e. the
    /// state a reader positioned exactly at the horizon observes. This is
    /// the snapshot a durability checkpoint persists: versions above the
    /// horizon belong to still-in-flight blocks and must not be captured.
    /// Entries are sorted by key so the snapshot bytes are canonical.
    #[must_use]
    pub fn snapshot_at(&self, horizon: Version) -> Vec<(Key, Value, Version)> {
        let mut entries: Vec<(Key, Value, Version)> = self
            .chains
            .iter()
            .filter_map(|(key, chain)| {
                let below = chain.partition_point(|(v, _)| *v <= horizon);
                below.checked_sub(1).map(|i| {
                    let (version, value) = &chain[i];
                    (*key, value.clone(), *version)
                })
            })
            .collect();
        entries.sort_unstable_by_key(|(k, _, _)| *k);
        entries
    }

    /// Garbage-collects versions strictly older than `horizon`, keeping at
    /// least the newest version at or below the horizon (it is still
    /// visible to readers positioned at the horizon).
    pub fn prune(&mut self, horizon: Version) {
        for chain in self.chains.values_mut() {
            // Index of the first version > horizon.
            let first_after = chain.partition_point(|(v, _)| *v <= horizon);
            if first_after > 1 {
                chain.drain(..first_after - 1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use parblock_types::{BlockNumber, SeqNo};

    use super::*;

    fn v(block: u64, seq: u32) -> Version {
        Version::new(BlockNumber(block), SeqNo(seq))
    }

    #[test]
    fn reads_route_to_correct_version() {
        let mut s = MvccState::new();
        s.put(Key(1), Value::Int(1), v(1, 1));
        s.put(Key(1), Value::Int(2), v(1, 5));
        s.put(Key(1), Value::Int(3), v(2, 0));
        assert_eq!(s.read_at(Key(1), v(1, 0)), Value::Unit);
        assert_eq!(s.read_at(Key(1), v(1, 1)), Value::Int(1));
        assert_eq!(s.read_at(Key(1), v(1, 4)), Value::Int(1));
        assert_eq!(s.read_at(Key(1), v(1, 5)), Value::Int(2));
        assert_eq!(s.read_at(Key(1), v(9, 9)), Value::Int(3));
        assert_eq!(s.latest(Key(1)), Value::Int(3));
    }

    #[test]
    fn out_of_order_writes_keep_chain_sorted() {
        let mut s = MvccState::new();
        s.put(Key(1), Value::Int(3), v(3, 0));
        s.put(Key(1), Value::Int(1), v(1, 0));
        s.put(Key(1), Value::Int(2), v(2, 0));
        assert_eq!(s.read_at(Key(1), v(2, 0)), Value::Int(2));
        assert_eq!(s.version_count(Key(1)), 3);
    }

    #[test]
    fn same_version_rewrite_is_idempotent() {
        let mut s = MvccState::new();
        s.put(Key(1), Value::Int(1), v(1, 0));
        s.put(Key(1), Value::Int(9), v(1, 0));
        assert_eq!(s.version_count(Key(1)), 1);
        assert_eq!(s.latest(Key(1)), Value::Int(9));
    }

    #[test]
    fn absent_keys_read_unit() {
        let s = MvccState::new();
        assert_eq!(s.read_at(Key(1), v(1, 0)), Value::Unit);
        assert_eq!(s.latest(Key(1)), Value::Unit);
        assert_eq!(s.version_count(Key(1)), 0);
    }

    #[test]
    fn prune_keeps_horizon_visibility() {
        let mut s = MvccState::new();
        for i in 1..=5 {
            s.put(Key(1), Value::Int(i as i64), v(i, 0));
        }
        s.prune(v(3, 0));
        // Versions 1 and 2 dropped; version 3 kept (visible at horizon).
        assert_eq!(s.version_count(Key(1)), 3);
        assert_eq!(s.read_at(Key(1), v(3, 0)), Value::Int(3));
        assert_eq!(s.read_at(Key(1), v(4, 0)), Value::Int(4));
    }

    #[test]
    fn genesis_constructor() {
        let s = MvccState::with_genesis([(Key(1), Value::Int(7))]);
        assert_eq!(s.read_at(Key(1), Version::GENESIS), Value::Int(7));
    }

    #[test]
    fn get_at_distinguishes_absent_from_written_zero() {
        let mut s = MvccState::new();
        s.put(Key(1), Value::Int(0), v(1, 0));
        assert_eq!(s.get_at(Key(1), v(1, 0)), Some(Value::Int(0)));
        assert_eq!(s.get_at(Key(1), Version::GENESIS), None, "before the write");
        assert_eq!(s.get_at(Key(2), v(9, 0)), None, "never written");
        assert_eq!(s.read_at(Key(2), v(9, 0)), Value::Unit);
    }

    #[test]
    fn digest_matches_kv_state_on_same_mapping() {
        let mut mv = MvccState::new();
        mv.put(Key(1), Value::Int(1), v(1, 0));
        mv.put(Key(1), Value::Int(7), v(2, 3)); // history differs, latest wins
        mv.put(Key(2), Value::Int(2), v(1, 1));
        let mut kv = crate::KvState::new();
        kv.put(Key(1), Value::Int(7), v(5, 5));
        kv.put(Key(2), Value::Int(2), v(1, 1));
        assert_eq!(mv.digest(), kv.digest());
        mv.put(Key(2), Value::Int(3), v(3, 0));
        assert_ne!(mv.digest(), kv.digest());
    }

    #[test]
    fn digest_at_matches_a_store_truncated_at_the_horizon() {
        let mut s = MvccState::new();
        s.put(Key(1), Value::Int(10), v(1, 0));
        s.put(Key(2), Value::Int(20), v(1, 1));
        s.put(Key(1), Value::Int(11), v(2, 0)); // beyond the horizon
        s.put(Key(3), Value::Int(30), v(3, 0)); // entirely beyond
        let mut truncated = MvccState::new();
        truncated.put(Key(1), Value::Int(10), v(1, 0));
        truncated.put(Key(2), Value::Int(20), v(1, 1));
        let horizon = v(1, u32::MAX);
        assert_eq!(s.digest_at(horizon), truncated.digest());
        assert_ne!(s.digest_at(horizon), s.digest());
        assert_eq!(s.digest_at(v(9, 0)), s.digest(), "horizon above everything");
    }

    #[test]
    fn snapshot_at_excludes_in_flight_versions_and_sorts_keys() {
        let mut s = MvccState::new();
        s.put(Key(2), Value::Int(20), v(1, 0));
        s.put(Key(1), Value::Int(10), v(1, 1));
        s.put(Key(1), Value::Int(11), v(2, 0)); // in-flight: above horizon
        s.put(Key(3), Value::Int(30), v(3, 0)); // entirely above horizon
        let snap = s.snapshot_at(v(1, u32::MAX));
        assert_eq!(
            snap,
            vec![
                (Key(1), Value::Int(10), v(1, 1)),
                (Key(2), Value::Int(20), v(1, 0)),
            ]
        );
        // Rebuilding a store from the snapshot reproduces the horizon view.
        let mut rebuilt = MvccState::new();
        for (k, val, ver) in snap {
            rebuilt.put(k, val, ver);
        }
        assert_eq!(rebuilt.read_at(Key(1), v(1, u32::MAX)), Value::Int(10));
        assert_eq!(MvccState::new().snapshot_at(v(9, 9)), vec![]);
    }

    #[test]
    fn speculative_reads_are_strictly_below_and_prefer_committed_on_ties() {
        let mut s = MvccState::new();
        s.put(Key(1), Value::Int(10), v(1, 0));
        s.put_speculative(Key(1), Value::Int(20), v(1, 2));
        // Strictly below: a reader AT the speculative version sees past it.
        assert_eq!(s.get_at_speculative(Key(1), v(1, 2)), Some((Value::Int(10), v(1, 0))));
        assert_eq!(s.get_at_speculative(Key(1), v(1, 3)), Some((Value::Int(20), v(1, 2))));
        // Tie between layers: the committed (promoted) value wins.
        s.put(Key(1), Value::Int(21), v(1, 2));
        assert_eq!(s.get_at_speculative(Key(1), v(1, 3)), Some((Value::Int(21), v(1, 2))));
        assert_eq!(s.get_at_speculative(Key(9), v(5, 0)), None);
        assert_eq!(s.get_at_speculative(Key(1), v(1, 0)), None, "nothing below");
    }

    #[test]
    fn speculative_layer_never_leaks_into_committed_accessors() {
        let mut s = MvccState::new();
        s.put(Key(1), Value::Int(1), v(1, 0));
        let digest = s.digest();
        let horizon = v(9, 0);
        s.apply_speculative([(Key(1), Value::Int(99)), (Key(2), Value::Int(7))], v(2, 0));
        assert_eq!(s.speculative_versions(), 2);
        assert_eq!(s.digest(), digest);
        assert_eq!(s.digest_at(horizon), digest);
        assert_eq!(s.snapshot_at(horizon), vec![(Key(1), Value::Int(1), v(1, 0))]);
        assert_eq!(s.get_at(Key(2), horizon), None);
        assert_eq!(s.latest(Key(2)), Value::Unit);
        // Prune ignores the overlay entirely.
        s.prune(horizon);
        assert_eq!(s.speculative_versions(), 2);
        // Retraction restores the empty overlay without touching commits.
        s.retract_speculative(v(2, 0), &[Key(1), Key(2), Key(3)]);
        assert_eq!(s.speculative_versions(), 0);
        assert_eq!(s.digest(), digest);
    }

    #[test]
    fn retract_is_exact_and_idempotent() {
        let mut s = MvccState::new();
        s.put_speculative(Key(1), Value::Int(1), v(1, 0));
        s.put_speculative(Key(1), Value::Int(2), v(1, 4));
        s.retract_speculative(v(1, 4), &[Key(1)]);
        s.retract_speculative(v(1, 4), &[Key(1)]);
        assert_eq!(s.speculative_versions(), 1);
        assert_eq!(s.get_at_speculative(Key(1), v(1, 5)), Some((Value::Int(1), v(1, 0))));
        // Re-execution overwrites in place (same version, new value).
        s.put_speculative(Key(1), Value::Int(3), v(1, 0));
        assert_eq!(s.speculative_versions(), 1);
        assert_eq!(s.get_at_speculative(Key(1), v(1, 5)), Some((Value::Int(3), v(1, 0))));
    }

    #[test]
    fn apply_batch_and_version_accounting() {
        let mut s = MvccState::new();
        s.apply([(Key(1), Value::Int(1)), (Key(2), Value::Int(2))], v(1, 0));
        s.apply([(Key(1), Value::Int(3))], v(2, 0));
        assert_eq!(s.total_versions(), 3);
        assert_eq!(s.versions_of(Key(1)), vec![v(1, 0), v(2, 0)]);
        assert_eq!(s.versions_of(Key(9)), Vec::<Version>::new());
    }
}
