//! Property tests: consensus safety (all correct replicas deliver the
//! same sequence) under randomized schedules and crash patterns.

use std::time::Duration;

use proptest::prelude::*;

use parblock_consensus::testing::SimCluster;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// PBFT: arbitrary submission points + shuffled delivery never break
    /// agreement, and with no faults everything delivers everywhere.
    ///
    /// Payloads are made unique per submission (real payloads carry
    /// unique client timestamps): byte-identical payloads forwarded via
    /// different backups are deliberately deduplicated by the primary.
    #[test]
    fn pbft_agreement_under_shuffling(
        seed in any::<u64>(),
        submissions in proptest::collection::vec((0usize..4, 0u8..=255), 1..12),
    ) {
        let mut c = SimCluster::pbft_with_seed(4, Duration::from_millis(100), seed);
        c.shuffle_delivery(true);
        for (i, (node, byte)) in submissions.iter().enumerate() {
            c.submit(*node, vec![i as u8, *byte]);
            c.step_n(3);
        }
        c.run_to_quiescence();
        prop_assert!(c.all_agree());
        // No faults: every submission eventually delivers (duplicates
        // impossible without view changes).
        prop_assert_eq!(c.delivered(0).len(), submissions.len());
        for r in 1..4 {
            prop_assert_eq!(c.delivered(r), c.delivered(0));
        }
    }

    /// PBFT with one crashed backup still agrees and delivers.
    #[test]
    fn pbft_agreement_with_crashed_backup(
        seed in any::<u64>(),
        crash_at in 1usize..4,
        submissions in proptest::collection::vec(any::<u8>(), 1..8),
    ) {
        let mut c = SimCluster::pbft_with_seed(4, Duration::from_millis(100), seed);
        c.shuffle_delivery(true);
        c.crash(crash_at);
        for (i, byte) in submissions.iter().enumerate() {
            c.submit(0, vec![i as u8, *byte]);
            c.step_n(2);
        }
        c.run_to_quiescence();
        prop_assert!(c.all_agree());
        prop_assert_eq!(c.delivered(0).len(), submissions.len());
    }

    /// Sequencer: agreement under shuffled delivery.
    #[test]
    fn sequencer_agreement_under_shuffling(
        submissions in proptest::collection::vec((0usize..3, any::<u8>()), 1..12),
    ) {
        let mut c = SimCluster::sequencer(3, Duration::from_millis(100));
        c.shuffle_delivery(true);
        for (i, (node, byte)) in submissions.iter().enumerate() {
            c.submit(*node, vec![i as u8, *byte]);
            c.step_n(2);
        }
        c.run_to_quiescence();
        prop_assert!(c.all_agree());
        prop_assert_eq!(c.delivered(0).len(), submissions.len());
    }
}
