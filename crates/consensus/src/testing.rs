//! A deterministic single-threaded cluster harness for driving sans-io
//! protocol instances in tests and simulations.
//!
//! The harness owns a message queue and the timers; nothing runs
//! concurrently, so every schedule is reproducible (optionally shuffled
//! with a seeded RNG).

use std::collections::BTreeSet;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use parblock_types::NodeId;

use crate::action::{Action, TimerId};
use crate::pbft::Pbft;
use crate::sequencer::QuorumSequencer;
use crate::traits::{OrderingProtocol, ProtocolConfig};

/// A single-threaded cluster of protocol replicas.
pub struct SimCluster<P: OrderingProtocol> {
    nodes: Vec<P>,
    queue: Vec<(NodeId, NodeId, P::Msg)>,
    delivered: Vec<Vec<(u64, Vec<u8>)>>,
    crashed: BTreeSet<usize>,
    timers: BTreeSet<(usize, TimerId)>,
    shuffle: bool,
    rng: StdRng,
    steps: u64,
}

impl SimCluster<Pbft> {
    /// A PBFT cluster of `n` replicas (`NodeId(0..n)`).
    #[must_use]
    pub fn pbft(n: usize, timeout: Duration) -> Self {
        Self::pbft_with_seed(n, timeout, 0)
    }

    /// A PBFT cluster with a specific schedule seed.
    #[must_use]
    pub fn pbft_with_seed(n: usize, timeout: Duration, seed: u64) -> Self {
        let peers: Vec<NodeId> = (0..n as u32).map(NodeId).collect();
        let nodes = peers
            .iter()
            .map(|&id| Pbft::new(ProtocolConfig::new(id, peers.clone()), timeout))
            .collect();
        Self::with_nodes(nodes, seed)
    }
}

impl SimCluster<QuorumSequencer> {
    /// A sequencer cluster of `n` replicas (`NodeId(0..n)`).
    #[must_use]
    pub fn sequencer(n: usize, timeout: Duration) -> Self {
        let peers: Vec<NodeId> = (0..n as u32).map(NodeId).collect();
        let nodes = peers
            .iter()
            .map(|&id| QuorumSequencer::new(ProtocolConfig::new(id, peers.clone()), timeout))
            .collect();
        Self::with_nodes(nodes, 0)
    }
}

impl<P: OrderingProtocol> SimCluster<P>
where
    P::Msg: Clone,
{
    /// Wraps pre-built replicas.
    #[must_use]
    pub fn with_nodes(nodes: Vec<P>, seed: u64) -> Self {
        let n = nodes.len();
        SimCluster {
            nodes,
            queue: Vec::new(),
            delivered: vec![Vec::new(); n],
            crashed: BTreeSet::new(),
            timers: BTreeSet::new(),
            shuffle: false,
            rng: StdRng::seed_from_u64(seed),
            steps: 0,
        }
    }

    fn index_of(&self, id: NodeId) -> usize {
        self.nodes
            .iter()
            .position(|n| n.id() == id)
            .expect("unknown node id")
    }

    /// Enables random message-delivery order.
    pub fn shuffle_delivery(&mut self, on: bool) {
        self.shuffle = on;
    }

    /// Marks a replica as crashed: it receives nothing, sends nothing,
    /// and its timers never fire.
    pub fn crash(&mut self, node: usize) {
        self.crashed.insert(node);
    }

    /// Reconnects a crashed replica (its protocol state is whatever it
    /// was at crash time — the harness models a partition/heal rather
    /// than a memory-wiping restart).
    pub fn reconnect(&mut self, node: usize) {
        self.crashed.remove(&node);
    }

    /// Submits a payload at replica `node`.
    pub fn submit(&mut self, node: usize, payload: Vec<u8>) {
        if self.crashed.contains(&node) {
            return;
        }
        let actions = self.nodes[node].submit(payload);
        self.process(node, actions);
    }

    fn process(&mut self, node: usize, actions: Vec<Action<P::Msg>>) {
        let from = self.nodes[node].id();
        for action in actions {
            match action {
                Action::Send { to, msg } => self.queue.push((from, to, msg)),
                Action::Broadcast { msg } => {
                    let peers: Vec<NodeId> = self
                        .nodes
                        .iter()
                        .map(OrderingProtocol::id)
                        .filter(|&p| p != from)
                        .collect();
                    for to in peers {
                        self.queue.push((from, to, msg.clone()));
                    }
                }
                Action::Deliver { seq, payload } => {
                    self.delivered[node].push((seq, payload));
                }
                Action::SetTimer { id, .. } => {
                    self.timers.insert((node, id));
                }
                Action::CancelTimer { id } => {
                    self.timers.remove(&(node, id));
                }
            }
        }
    }

    /// Delivers one queued message, if any. Returns `false` when idle.
    pub fn step(&mut self) -> bool {
        if self.queue.is_empty() {
            return false;
        }
        let idx = if self.shuffle {
            self.rng.gen_range(0..self.queue.len())
        } else {
            0
        };
        let (from, to, msg) = self.queue.remove(idx);
        self.steps += 1;
        let to_idx = self.index_of(to);
        let from_idx = self.index_of(from);
        if self.crashed.contains(&to_idx) || self.crashed.contains(&from_idx) {
            return true;
        }
        let actions = self.nodes[to_idx].on_message(from, msg);
        self.process(to_idx, actions);
        true
    }

    /// Delivers up to `n` messages.
    pub fn step_n(&mut self, n: usize) {
        for _ in 0..n {
            if !self.step() {
                return;
            }
        }
    }

    /// Runs until no messages remain.
    ///
    /// # Panics
    ///
    /// Panics after 1,000,000 steps (live-lock guard).
    pub fn run_to_quiescence(&mut self) {
        let mut budget = 1_000_000u64;
        while self.step() {
            budget -= 1;
            assert!(budget > 0, "cluster did not quiesce");
        }
    }

    /// Fires every armed timer on non-crashed replicas (each at most
    /// once; timers re-armed during processing fire on the next call).
    pub fn fire_timers(&mut self) {
        let armed: Vec<(usize, TimerId)> = self
            .timers
            .iter()
            .copied()
            .filter(|(n, _)| !self.crashed.contains(n))
            .collect();
        for (node, id) in armed {
            self.timers.remove(&(node, id));
            let actions = self.nodes[node].on_timer(id);
            self.process(node, actions);
        }
    }

    /// The delivered `(seq, payload)` log of replica `node`.
    #[must_use]
    pub fn delivered(&self, node: usize) -> Vec<(u64, Vec<u8>)> {
        self.delivered[node].clone()
    }

    /// Safety check: every pair of non-crashed replicas' logs agree on
    /// their common prefix.
    #[must_use]
    pub fn all_agree(&self) -> bool {
        let live: Vec<&Vec<(u64, Vec<u8>)>> = self
            .delivered
            .iter()
            .enumerate()
            .filter(|(i, _)| !self.crashed.contains(i))
            .map(|(_, d)| d)
            .collect();
        for a in &live {
            for b in &live {
                let common = a.len().min(b.len());
                if a[..common] != b[..common] {
                    return false;
                }
            }
        }
        true
    }

    /// The current view/epoch of replica `node`.
    #[must_use]
    pub fn view_of(&self, node: usize) -> u64 {
        self.nodes[node].current_view()
    }

    /// Direct access to a replica (protocol-specific assertions).
    #[must_use]
    pub fn node(&self, node: usize) -> &P {
        &self.nodes[node]
    }

    /// Number of messages processed so far.
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Number of messages currently queued.
    #[must_use]
    pub fn queued(&self) -> usize {
        self.queue.len()
    }
}
