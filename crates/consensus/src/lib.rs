//! Pluggable ordering consensus for OXII (§III-A).
//!
//! "OXII, similar to Fabric, uses a pluggable consensus protocol for
//! ordering … Depending on the characteristics of the network and peers
//! OXII might employ a Byzantine, a crash, or a hybrid fault-tolerant
//! protocol."
//!
//! Two protocols are provided behind the [`OrderingProtocol`] trait:
//!
//! * [`Pbft`] — Practical Byzantine Fault Tolerance (the protocol of the
//!   paper's Fig 2): three-phase pre-prepare/prepare/commit with view
//!   changes, tolerating `f` Byzantine orderers out of `3f + 1`.
//! * [`QuorumSequencer`] — a crash-fault-tolerant leader/follower
//!   replicated log modelling the Kafka ordering service the paper's
//!   evaluation deploys (leader appends, majority acks, commit), with a
//!   bully-style epoch change on leader failure.
//!
//! # Sans-io design
//!
//! Protocol instances are *pure state machines*: they consume events
//! (submitted payloads, messages, timer expirations) and emit
//! [`Action`]s (send, deliver, set timer). The hosting node performs I/O.
//! This makes every protocol decision deterministic and unit-testable
//! without threads; the `testing` module provides a single-threaded
//! cluster harness used across the workspace.
//!
//! # Simplifications (documented per DESIGN.md)
//!
//! * Message authenticity is provided by the transport (the simulated
//!   network stamps true sender identities), so protocol messages carry
//!   no per-message signatures.
//! * PBFT omits the checkpoint/garbage-collection sub-protocol (delivered
//!   slots are pruned directly) and view-change messages carry prepared
//!   payloads instead of signed proofs.
//! * The sequencer's epoch change re-proposes the new leader's stored
//!   suffix; appends stored only by a minority of followers may be lost
//!   and are the host's responsibility to resubmit (at-most-once, like an
//!   unacknowledged Kafka produce).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod action;
mod pbft;
mod sequencer;
pub mod testing;
mod traits;

pub use action::{Action, TimerId};
pub use pbft::{Pbft, PbftMsg};
pub use sequencer::{QuorumSequencer, SeqMsg};
pub use traits::{OrderingProtocol, ProtocolConfig};
