//! Practical Byzantine Fault Tolerance (Castro & Liskov) as a sans-io
//! state machine.
//!
//! The normal-case three-phase flow:
//!
//! 1. the primary of the current view assigns the next sequence number and
//!    broadcasts `PRE-PREPARE(v, n, m)`;
//! 2. backups accept the pre-prepare (right primary, fresh slot, matching
//!    digest) and broadcast `PREPARE(v, n, d)`;
//! 3. on a quorum of `2f + 1` prepare votes a replica broadcasts
//!    `COMMIT(v, n, d)`; on `2f + 1` commit votes the slot is committed
//!    and delivered in sequence order.
//!
//! On primary silence a progress timer fires and replicas vote a view
//! change; the new primary re-proposes every prepared-but-undelivered
//! slot in the new view. See the crate docs for the documented
//! simplifications relative to the full protocol.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::time::Duration;

use parblock_crypto::sha256;
use parblock_types::{Hash32, NodeId};

use crate::action::{Action, TimerId};
use crate::traits::{OrderingProtocol, ProtocolConfig};

/// The progress timer: armed while this replica knows of undelivered
/// work, fires a view change when the primary stalls.
const PROGRESS_TIMER: TimerId = TimerId(0);

/// A replica's prepared-but-undelivered `(seq, payload)` set, carried in
/// view-change votes.
type PreparedSet = Vec<(u64, Vec<u8>)>;

/// PBFT wire messages. Transport authentication supplies the sender.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PbftMsg {
    /// A backup forwards a client payload to the primary.
    Forward {
        /// The client payload.
        payload: Vec<u8>,
    },
    /// Primary proposal for slot `seq` in `view`.
    PrePrepare {
        /// The proposing view.
        view: u64,
        /// The assigned sequence number.
        seq: u64,
        /// The proposed payload.
        payload: Vec<u8>,
    },
    /// A replica's prepare vote.
    Prepare {
        /// The vote's view.
        view: u64,
        /// The slot.
        seq: u64,
        /// Digest of the proposed payload.
        digest: Hash32,
    },
    /// A replica's commit vote.
    Commit {
        /// The vote's view.
        view: u64,
        /// The slot.
        seq: u64,
        /// Digest of the proposed payload.
        digest: Hash32,
    },
    /// A vote to move to `new_view`, carrying the voter's prepared but
    /// undelivered `(seq, payload)` set.
    ViewChange {
        /// The proposed view.
        new_view: u64,
        /// Prepared-but-undelivered slots at the voter.
        prepared: Vec<(u64, Vec<u8>)>,
    },
    /// The new primary's installation message, re-proposing the prepared
    /// slots it learned from `2f + 1` view-change votes.
    NewView {
        /// The installed view.
        view: u64,
        /// Re-proposals `(seq, payload)`.
        proposals: Vec<(u64, Vec<u8>)>,
    },
}

#[derive(Debug, Default, Clone)]
struct Slot {
    /// View of the accepted pre-prepare.
    view: u64,
    digest: Option<Hash32>,
    payload: Option<Vec<u8>>,
    prepares: BTreeSet<NodeId>,
    commits: BTreeSet<NodeId>,
    sent_commit: bool,
    committed: bool,
}

/// A PBFT replica.
///
/// # Examples
///
/// Four replicas delivering one payload (driven by the test harness):
///
/// ```
/// use parblock_consensus::testing::SimCluster;
/// use parblock_consensus::Pbft;
///
/// let mut cluster = SimCluster::pbft(4, std::time::Duration::from_millis(100));
/// cluster.submit(0, b"tx".to_vec());
/// cluster.run_to_quiescence();
/// assert_eq!(cluster.delivered(0), vec![(0, b"tx".to_vec())]);
/// assert!(cluster.all_agree());
/// ```
#[derive(Debug)]
pub struct Pbft {
    cfg: ProtocolConfig,
    f: usize,
    view: u64,
    /// Next sequence number this primary will assign.
    next_seq: u64,
    /// Next sequence number to deliver.
    next_deliver: u64,
    slots: BTreeMap<u64, Slot>,
    /// Payloads awaiting proposal (primary in view change) or forwarding.
    pending: VecDeque<Vec<u8>>,
    /// Payloads this replica forwarded but has not yet seen delivered;
    /// re-issued after a view change so a crashed primary cannot lose
    /// them (the client-retransmission role of full PBFT). Duplicate
    /// proposals are possible and deduplicated by the host layer via
    /// client timestamps.
    unacked: Vec<(Hash32, Vec<u8>)>,
    /// View-change votes: candidate view → voter → prepared set.
    vc_votes: BTreeMap<u64, BTreeMap<NodeId, PreparedSet>>,
    /// The view this replica has voted to move to, if any.
    vc_target: Option<u64>,
    timeout: Duration,
    timer_armed: bool,
}

impl Pbft {
    /// Creates a replica.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 4 replicas are configured (`f` would be 0 and
    /// the protocol degenerate).
    #[must_use]
    pub fn new(cfg: ProtocolConfig, timeout: Duration) -> Self {
        assert!(cfg.n() >= 4, "PBFT needs n ≥ 4 (n = 3f + 1)");
        let f = (cfg.n() - 1) / 3;
        Pbft {
            cfg,
            f,
            view: 0,
            next_seq: 0,
            next_deliver: 0,
            slots: BTreeMap::new(),
            pending: VecDeque::new(),
            unacked: Vec::new(),
            vc_votes: BTreeMap::new(),
            vc_target: None,
            timeout,
            timer_armed: false,
        }
    }

    /// The quorum size `2f + 1`.
    #[must_use]
    pub fn quorum(&self) -> usize {
        2 * self.f + 1
    }

    /// The current view.
    #[must_use]
    pub fn view(&self) -> u64 {
        self.view
    }

    /// The primary of `view`.
    #[must_use]
    pub fn primary_of(&self, view: u64) -> NodeId {
        self.cfg.peers[(view % self.cfg.n() as u64) as usize]
    }

    fn is_primary(&self) -> bool {
        self.primary_of(self.view) == self.cfg.id && self.vc_target.is_none()
    }

    fn remember_unacked(&mut self, payload: &[u8]) {
        let digest = sha256(payload);
        if !self.unacked.iter().any(|(d, _)| *d == digest) {
            self.unacked.push((digest, payload.to_vec()));
        }
    }

    fn arm_timer(&mut self, actions: &mut Vec<Action<PbftMsg>>) {
        if !self.timer_armed {
            self.timer_armed = true;
            actions.push(Action::SetTimer {
                id: PROGRESS_TIMER,
                after: self.timeout,
            });
        }
    }

    fn disarm_timer_if_idle(&mut self, actions: &mut Vec<Action<PbftMsg>>) {
        let work_outstanding = !self.pending.is_empty()
            || !self.unacked.is_empty()
            || self.slots.values().any(|s| s.payload.is_some() && !s.committed);
        if self.timer_armed && !work_outstanding && self.vc_target.is_none() {
            self.timer_armed = false;
            actions.push(Action::CancelTimer { id: PROGRESS_TIMER });
        }
    }

    /// Primary-side proposal of one payload.
    fn propose(&mut self, payload: Vec<u8>, actions: &mut Vec<Action<PbftMsg>>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let digest = sha256(&payload);
        let slot = self.slots.entry(seq).or_default();
        slot.view = self.view;
        slot.digest = Some(digest);
        slot.payload = Some(payload.clone());
        slot.prepares.insert(self.cfg.id);
        actions.push(Action::Broadcast {
            msg: PbftMsg::PrePrepare {
                view: self.view,
                seq,
                payload,
            },
        });
        self.arm_timer(actions);
        // A 4-replica cluster with f = 1 needs 3 prepare votes; the
        // primary's own is counted above, backups supply the rest.
        self.maybe_commit(seq, actions);
    }

    fn maybe_commit(&mut self, seq: u64, actions: &mut Vec<Action<PbftMsg>>) {
        let quorum = self.quorum();
        let id = self.cfg.id;
        let view = self.view;
        let Some(slot) = self.slots.get_mut(&seq) else {
            return;
        };
        if slot.payload.is_none() || slot.sent_commit {
            return;
        }
        if slot.prepares.len() >= quorum {
            slot.sent_commit = true;
            slot.commits.insert(id);
            let digest = slot.digest.expect("payload implies digest");
            actions.push(Action::Broadcast {
                msg: PbftMsg::Commit { view, seq, digest },
            });
            self.maybe_committed(seq, actions);
        }
    }

    fn maybe_committed(&mut self, seq: u64, actions: &mut Vec<Action<PbftMsg>>) {
        let quorum = self.quorum();
        let Some(slot) = self.slots.get_mut(&seq) else {
            return;
        };
        if slot.committed || slot.payload.is_none() || slot.commits.len() < quorum {
            return;
        }
        slot.committed = true;
        self.try_deliver(actions);
    }

    fn try_deliver(&mut self, actions: &mut Vec<Action<PbftMsg>>) {
        while let Some(slot) = self.slots.get(&self.next_deliver) {
            if !slot.committed {
                break;
            }
            let seq = self.next_deliver;
            let slot = self.slots.remove(&seq).expect("present");
            let payload = slot.payload.expect("committed implies payload");
            if let Some(digest) = slot.digest {
                self.unacked.retain(|(d, _)| *d != digest);
            }
            actions.push(Action::Deliver { seq, payload });
            self.next_deliver += 1;
            if self.next_seq < self.next_deliver {
                self.next_seq = self.next_deliver;
            }
        }
        self.disarm_timer_if_idle(actions);
    }

    /// Starts (or escalates) a view change towards `target`.
    fn start_view_change(&mut self, target: u64, actions: &mut Vec<Action<PbftMsg>>) {
        if self.vc_target.is_some_and(|t| t >= target) {
            return;
        }
        self.vc_target = Some(target);
        // Prepared-but-undelivered slots travel with the vote.
        let prepared: Vec<(u64, Vec<u8>)> = self
            .slots
            .iter()
            .filter(|(_, s)| s.prepares.len() >= self.quorum() && s.payload.is_some())
            .map(|(&seq, s)| (seq, s.payload.clone().expect("filtered")))
            .collect();
        let msg = PbftMsg::ViewChange {
            new_view: target,
            prepared: prepared.clone(),
        };
        self.vc_votes
            .entry(target)
            .or_default()
            .insert(self.cfg.id, prepared);
        actions.push(Action::Broadcast { msg });
        // Re-arm so a failed view change escalates further.
        self.timer_armed = false;
        self.arm_timer(actions);
        self.maybe_install_view(target, actions);
    }

    fn maybe_install_view(&mut self, target: u64, actions: &mut Vec<Action<PbftMsg>>) {
        let votes = self.vc_votes.get(&target).map_or(0, BTreeMap::len);
        if votes < self.quorum() || self.primary_of(target) != self.cfg.id {
            return;
        }
        // Merge prepared sets: highest-voted payload per sequence (honest
        // replicas never diverge on a prepared slot).
        let mut proposals: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
        for set in self.vc_votes.remove(&target).expect("checked").into_values() {
            for (seq, payload) in set {
                if seq >= self.next_deliver {
                    proposals.entry(seq).or_insert(payload);
                }
            }
        }
        let proposals: Vec<(u64, Vec<u8>)> = proposals.into_iter().collect();
        actions.push(Action::Broadcast {
            msg: PbftMsg::NewView {
                view: target,
                proposals: proposals.clone(),
            },
        });
        self.install_view(target, &proposals, actions);
        // Propose any queued client payloads in the new view.
        while let Some(payload) = self.pending.pop_front() {
            self.propose(payload, actions);
        }
    }

    /// Adopts `view`, treating `proposals` as pre-prepares.
    fn install_view(
        &mut self,
        view: u64,
        proposals: &[(u64, Vec<u8>)],
        actions: &mut Vec<Action<PbftMsg>>,
    ) {
        self.view = view;
        self.vc_target = None;
        self.vc_votes.retain(|&v, _| v > view);
        // Undelivered, uncommitted slots are superseded by the new view's
        // proposals.
        self.slots.retain(|_, s| s.committed);
        self.next_seq = self.next_deliver;
        let primary = self.primary_of(view);
        let my_id = self.cfg.id;
        let i_am_primary = primary == my_id;
        for (seq, payload) in proposals {
            self.next_seq = self.next_seq.max(seq + 1);
            let digest = sha256(payload);
            let slot = self.slots.entry(*seq).or_default();
            if slot.committed {
                continue;
            }
            slot.view = view;
            slot.digest = Some(digest);
            slot.payload = Some(payload.clone());
            slot.prepares.insert(primary);
            slot.prepares.insert(my_id);
            if !i_am_primary {
                actions.push(Action::Broadcast {
                    msg: PbftMsg::Prepare {
                        view,
                        seq: *seq,
                        digest,
                    },
                });
            }
            self.maybe_commit(*seq, actions);
        }
        // Re-issue forwarded-but-undelivered payloads that did not make
        // it into the new view's proposals.
        let in_flight: BTreeSet<Hash32> = self
            .slots
            .values()
            .filter_map(|s| s.digest)
            .collect();
        let to_reissue: Vec<Vec<u8>> = self
            .unacked
            .iter()
            .filter(|(d, _)| !in_flight.contains(d))
            .map(|(_, p)| p.clone())
            .collect();
        for payload in to_reissue {
            if i_am_primary {
                self.propose(payload, actions);
            } else {
                actions.push(Action::Send {
                    to: primary,
                    msg: PbftMsg::Forward { payload },
                });
            }
        }
        if !self.slots.is_empty() || !self.pending.is_empty() || !self.unacked.is_empty() {
            self.timer_armed = false;
            self.arm_timer(actions);
        } else {
            self.disarm_timer_if_idle(actions);
        }
    }
}

impl OrderingProtocol for Pbft {
    type Msg = PbftMsg;

    fn submit(&mut self, payload: Vec<u8>) -> Vec<Action<PbftMsg>> {
        let mut actions = Vec::new();
        if self.is_primary() {
            self.propose(payload, &mut actions);
        } else if self.vc_target.is_none() {
            // Broadcast (not just send to the primary): every replica
            // buffers the request and arms its progress timer, so a
            // crashed primary cannot lose it — the same role the client's
            // broadcast-on-timeout plays in full PBFT.
            self.remember_unacked(&payload);
            actions.push(Action::Broadcast {
                msg: PbftMsg::Forward { payload },
            });
            self.arm_timer(&mut actions);
        } else {
            // Hold until the view change settles.
            self.pending.push_back(payload);
        }
        actions
    }

    fn on_message(&mut self, from: NodeId, msg: PbftMsg) -> Vec<Action<PbftMsg>> {
        let mut actions = Vec::new();
        match msg {
            PbftMsg::Forward { payload } => {
                if self.is_primary() {
                    // Dedup: a payload can reach the primary several
                    // times (broadcast forwards, view-change re-issues).
                    let digest = sha256(&payload);
                    let in_flight = self.slots.values().any(|s| s.digest == Some(digest));
                    if !in_flight {
                        self.propose(payload, &mut actions);
                    }
                } else if self.vc_target.is_some() {
                    self.pending.push_back(payload);
                } else {
                    // Buffer and watch the primary on the requester's
                    // behalf.
                    self.remember_unacked(&payload);
                    self.arm_timer(&mut actions);
                }
            }
            PbftMsg::PrePrepare { view, seq, payload } => {
                if view != self.view
                    || from != self.primary_of(view)
                    || self.vc_target.is_some()
                    || seq < self.next_deliver
                {
                    return actions;
                }
                let digest = sha256(&payload);
                let slot = self.slots.entry(seq).or_default();
                if let Some(existing) = slot.digest {
                    if existing != digest {
                        // Equivocating primary: refuse; the timer will
                        // eventually vote it out.
                        return actions;
                    }
                }
                slot.view = view;
                slot.digest = Some(digest);
                slot.payload = Some(payload);
                slot.prepares.insert(from);
                slot.prepares.insert(self.cfg.id);
                actions.push(Action::Broadcast {
                    msg: PbftMsg::Prepare { view, seq, digest },
                });
                self.arm_timer(&mut actions);
                self.maybe_commit(seq, &mut actions);
            }
            PbftMsg::Prepare { view, seq, digest } => {
                if view != self.view || self.vc_target.is_some() || seq < self.next_deliver {
                    return actions;
                }
                let slot = self.slots.entry(seq).or_default();
                if slot.digest.is_some_and(|d| d != digest) {
                    return actions;
                }
                slot.prepares.insert(from);
                self.maybe_commit(seq, &mut actions);
            }
            PbftMsg::Commit { view, seq, digest } => {
                if view != self.view || self.vc_target.is_some() || seq < self.next_deliver {
                    return actions;
                }
                let slot = self.slots.entry(seq).or_default();
                if slot.digest.is_some_and(|d| d != digest) {
                    return actions;
                }
                slot.commits.insert(from);
                self.maybe_committed(seq, &mut actions);
            }
            PbftMsg::ViewChange { new_view, prepared } => {
                if new_view <= self.view {
                    return actions;
                }
                self.vc_votes
                    .entry(new_view)
                    .or_default()
                    .insert(from, prepared);
                // Join a view change once f + 1 replicas vote for it —
                // at least one of them is honest.
                let votes = self.vc_votes.get(&new_view).map_or(0, BTreeMap::len);
                if votes > self.f && self.vc_target.is_none_or(|t| t < new_view) {
                    self.start_view_change(new_view, &mut actions);
                } else {
                    self.maybe_install_view(new_view, &mut actions);
                }
            }
            PbftMsg::NewView { view, proposals } => {
                if view < self.view || from != self.primary_of(view) {
                    return actions;
                }
                if view == self.view && self.vc_target.is_none() {
                    return actions;
                }
                self.install_view(view, &proposals, &mut actions);
                // Forward anything we held during the change.
                let pending: Vec<_> = self.pending.drain(..).collect();
                for payload in pending {
                    actions.push(Action::Send {
                        to: self.primary_of(self.view),
                        msg: PbftMsg::Forward { payload },
                    });
                }
            }
        }
        actions
    }

    fn on_timer(&mut self, id: TimerId) -> Vec<Action<PbftMsg>> {
        let mut actions = Vec::new();
        if id != PROGRESS_TIMER {
            return actions;
        }
        self.timer_armed = false;
        let target = match self.vc_target {
            Some(t) => t + 1,
            None => self.view + 1,
        };
        self.start_view_change(target, &mut actions);
        actions
    }

    fn id(&self) -> NodeId {
        self.cfg.id
    }

    fn is_leader(&self) -> bool {
        self.is_primary()
    }

    fn current_view(&self) -> u64 {
        self.view
    }
}

#[cfg(test)]
mod tests {
    use std::time::Duration;

    use crate::testing::SimCluster;

    use super::*;

    fn cluster(n: usize) -> SimCluster<Pbft> {
        SimCluster::pbft(n, Duration::from_millis(100))
    }

    #[test]
    fn single_payload_commits_on_all_replicas() {
        let mut c = cluster(4);
        c.submit(0, b"a".to_vec());
        c.run_to_quiescence();
        assert!(c.all_agree());
        for r in 0..4 {
            assert_eq!(c.delivered(r), vec![(0, b"a".to_vec())]);
        }
    }

    #[test]
    fn backup_submission_is_forwarded_to_primary() {
        let mut c = cluster(4);
        c.submit(2, b"via-backup".to_vec());
        c.run_to_quiescence();
        assert!(c.all_agree());
        assert_eq!(c.delivered(0).len(), 1);
    }

    #[test]
    fn many_payloads_deliver_in_identical_order() {
        let mut c = cluster(4);
        for i in 0..20u8 {
            c.submit((i % 4) as usize, vec![i]);
            // Interleave processing to mix forwarding with proposals.
            c.step_n(5);
        }
        c.run_to_quiescence();
        assert!(c.all_agree());
        assert_eq!(c.delivered(0).len(), 20);
        let seqs: Vec<u64> = c.delivered(0).iter().map(|(s, _)| *s).collect();
        assert_eq!(seqs, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn seven_replicas_tolerate_two_crashes() {
        let mut c = SimCluster::pbft(7, Duration::from_millis(100));
        // Crash two backups (f = 2): quorum of 5 still commits.
        c.crash(5);
        c.crash(6);
        c.submit(0, b"x".to_vec());
        c.run_to_quiescence();
        for r in 0..5 {
            assert_eq!(c.delivered(r), vec![(0, b"x".to_vec())], "replica {r}");
        }
    }

    #[test]
    fn primary_crash_triggers_view_change_and_recovers_request() {
        let mut c = cluster(4);
        c.submit(1, b"lost-then-found".to_vec());
        // Let the forward reach the primary and the pre-prepare go out,
        // then crash the primary before commits can quorum.
        c.crash(0);
        c.run_to_quiescence();
        // Backups still hold the request; fire their progress timers.
        c.fire_timers();
        c.run_to_quiescence();
        // Re-fire in case the first change elected the crashed node.
        c.fire_timers();
        c.run_to_quiescence();
        for r in 1..4 {
            let delivered = c.delivered(r);
            assert_eq!(delivered.len(), 1, "replica {r}: {delivered:?}");
            assert_eq!(delivered[0].1, b"lost-then-found".to_vec());
        }
        assert!(c.view_of(1) > 0, "view must have advanced");
    }

    #[test]
    fn equivocating_preprepare_is_refused() {
        let cfg = ProtocolConfig::new(
            NodeId(1),
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)],
        );
        let mut backup = Pbft::new(cfg, Duration::from_millis(100));
        let a1 = backup.on_message(
            NodeId(0),
            PbftMsg::PrePrepare {
                view: 0,
                seq: 0,
                payload: b"one".to_vec(),
            },
        );
        assert!(a1
            .iter()
            .any(|a| matches!(a, Action::Broadcast { msg: PbftMsg::Prepare { .. } })));
        // Same slot, different payload: must be ignored.
        let a2 = backup.on_message(
            NodeId(0),
            PbftMsg::PrePrepare {
                view: 0,
                seq: 0,
                payload: b"two".to_vec(),
            },
        );
        assert!(a2.is_empty());
    }

    #[test]
    fn preprepare_from_non_primary_is_ignored() {
        let cfg = ProtocolConfig::new(
            NodeId(1),
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)],
        );
        let mut backup = Pbft::new(cfg, Duration::from_millis(100));
        let actions = backup.on_message(
            NodeId(2), // not the view-0 primary
            PbftMsg::PrePrepare {
                view: 0,
                seq: 0,
                payload: b"evil".to_vec(),
            },
        );
        assert!(actions.is_empty());
    }

    #[test]
    fn quorum_sizes() {
        let cfg = ProtocolConfig::new(
            NodeId(0),
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)],
        );
        let pbft = Pbft::new(cfg, Duration::from_millis(1));
        assert_eq!(pbft.quorum(), 3);
        let peers: Vec<NodeId> = (0..7).map(NodeId).collect();
        let pbft = Pbft::new(
            ProtocolConfig::new(NodeId(0), peers),
            Duration::from_millis(1),
        );
        assert_eq!(pbft.quorum(), 5);
    }

    #[test]
    #[should_panic(expected = "n ≥ 4")]
    fn too_few_replicas_panics() {
        let cfg = ProtocolConfig::new(NodeId(0), vec![NodeId(0), NodeId(1), NodeId(2)]);
        let _ = Pbft::new(cfg, Duration::from_millis(1));
    }

    #[test]
    fn delivery_under_message_reordering() {
        let mut c = SimCluster::pbft_with_seed(4, Duration::from_millis(100), 1234);
        c.shuffle_delivery(true);
        for i in 0..10u8 {
            c.submit(0, vec![i]);
        }
        c.run_to_quiescence();
        assert!(c.all_agree());
        assert_eq!(c.delivered(1).len(), 10);
    }
}
