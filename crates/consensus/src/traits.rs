//! The ordering-protocol abstraction.

use parblock_types::NodeId;

use crate::action::{Action, TimerId};

/// Static configuration of one protocol instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolConfig {
    /// This replica's identity.
    pub id: NodeId,
    /// All orderer replicas, identically ordered on every replica.
    pub peers: Vec<NodeId>,
}

impl ProtocolConfig {
    /// Creates a configuration.
    ///
    /// # Panics
    ///
    /// Panics if `peers` does not contain `id` or contains duplicates.
    #[must_use]
    pub fn new(id: NodeId, peers: Vec<NodeId>) -> Self {
        assert!(peers.contains(&id), "peer list must contain self");
        let mut dedup = peers.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), peers.len(), "duplicate peers");
        ProtocolConfig { id, peers }
    }

    /// Number of replicas.
    #[must_use]
    pub fn n(&self) -> usize {
        self.peers.len()
    }

    /// Index of this replica in the peer list.
    #[must_use]
    pub fn self_index(&self) -> usize {
        self.peers
            .iter()
            .position(|&p| p == self.id)
            .expect("validated in new()")
    }
}

/// A totally-ordering consensus protocol as a sans-io state machine.
///
/// The host owns the network and the clock; the state machine owns every
/// protocol decision. All methods return the actions the host must
/// perform, in order.
pub trait OrderingProtocol {
    /// The protocol's wire message type.
    type Msg;

    /// A client payload arrived at this replica for ordering.
    fn submit(&mut self, payload: Vec<u8>) -> Vec<Action<Self::Msg>>;

    /// A protocol message arrived from `from` (transport-authenticated).
    fn on_message(&mut self, from: NodeId, msg: Self::Msg) -> Vec<Action<Self::Msg>>;

    /// A previously armed timer expired.
    fn on_timer(&mut self, id: TimerId) -> Vec<Action<Self::Msg>>;

    /// This replica's identity.
    fn id(&self) -> NodeId;

    /// Whether this replica currently believes it is the leader/primary.
    fn is_leader(&self) -> bool;

    /// The replica's current view (PBFT) or epoch (sequencer).
    fn current_view(&self) -> u64;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_accessors() {
        let cfg = ProtocolConfig::new(NodeId(2), vec![NodeId(1), NodeId(2), NodeId(3)]);
        assert_eq!(cfg.n(), 3);
        assert_eq!(cfg.self_index(), 1);
    }

    #[test]
    #[should_panic(expected = "must contain self")]
    fn missing_self_panics() {
        let _ = ProtocolConfig::new(NodeId(9), vec![NodeId(1)]);
    }

    #[test]
    #[should_panic(expected = "duplicate peers")]
    fn duplicate_peers_panic() {
        let _ = ProtocolConfig::new(NodeId(1), vec![NodeId(1), NodeId(1)]);
    }
}
