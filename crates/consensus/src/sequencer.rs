//! A crash-fault-tolerant quorum sequencer: the Kafka-like ordering
//! service of the paper's evaluation (§V: "a typical Kafka orderer
//! setup"), reduced to its ordering essence.
//!
//! One leader per epoch appends payloads at increasing offsets and
//! replicates them to followers; once a majority (including the leader)
//! has stored an offset, the leader commits it and followers deliver in
//! order. A stalled leader is replaced by bumping the epoch
//! (bully-style): the new leader re-appends its stored-but-undelivered
//! suffix. With `2f + 1` replicas the protocol tolerates `f` crashes.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::time::Duration;

use parblock_types::NodeId;

use crate::action::{Action, TimerId};
use crate::traits::{OrderingProtocol, ProtocolConfig};

const PROGRESS_TIMER: TimerId = TimerId(0);

/// Sequencer wire messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SeqMsg {
    /// A follower forwards a client payload to the leader.
    Forward {
        /// The client payload.
        payload: Vec<u8>,
    },
    /// Leader replication of `payload` at `offset`.
    Append {
        /// The leader's epoch.
        epoch: u64,
        /// Log offset.
        offset: u64,
        /// The payload.
        payload: Vec<u8>,
    },
    /// Follower acknowledgement of a stored offset.
    Ack {
        /// Epoch of the acked append.
        epoch: u64,
        /// The stored offset.
        offset: u64,
    },
    /// Leader notification that `offset` is replicated on a majority.
    Commit {
        /// The leader's epoch.
        epoch: u64,
        /// The committed offset.
        offset: u64,
    },
    /// Epoch-change announcement (bully).
    NewEpoch {
        /// The proposed epoch.
        epoch: u64,
    },
    /// Catch-up request: the sender is missing every offset from `from`
    /// up to the first one it has stored. Sent when a replica detects a
    /// delivery gap — after a partition heals, or after a restart — and
    /// answered by replaying retained committed offsets as ordinary
    /// `Append` + `Commit` pairs (no separate snapshot path).
    Fetch {
        /// First missing offset.
        from: u64,
    },
}

#[derive(Debug, Default)]
struct Entry {
    payload: Option<Vec<u8>>,
    acks: BTreeSet<NodeId>,
    committed: bool,
}

/// A quorum-sequencer replica.
///
/// # Examples
///
/// ```
/// use parblock_consensus::testing::SimCluster;
///
/// let mut cluster = SimCluster::sequencer(3, std::time::Duration::from_millis(100));
/// cluster.submit(0, b"tx".to_vec());
/// cluster.run_to_quiescence();
/// assert_eq!(cluster.delivered(2), vec![(0, b"tx".to_vec())]);
/// ```
#[derive(Debug)]
pub struct QuorumSequencer {
    cfg: ProtocolConfig,
    epoch: u64,
    next_offset: u64,
    next_deliver: u64,
    log: BTreeMap<u64, Entry>,
    pending: VecDeque<Vec<u8>>,
    timeout: Duration,
    timer_armed: bool,
    /// Delivered payloads retained to answer [`SeqMsg::Fetch`] catch-up
    /// requests from partitioned or restarted replicas. Unbounded by
    /// design for the single-host simulation; a production deployment
    /// would truncate below a cluster-wide durable watermark.
    retained: BTreeMap<u64, Vec<u8>>,
    /// `(gap head, highest offset announced when requested)` of the
    /// outstanding Fetch. Suppresses a replay-per-message burst during
    /// catch-up, but re-arms when a *higher* offset is announced — so a
    /// Fetch (or its replay) lost to a second fault window is retried
    /// as soon as the leader makes any further progress, instead of
    /// stalling the follower forever. Cleared when delivery progresses.
    fetch_requested: Option<(u64, u64)>,
}

impl QuorumSequencer {
    /// Creates a replica.
    ///
    /// # Panics
    ///
    /// Panics on an empty peer set (checked by [`ProtocolConfig`]) or a
    /// single-replica "cluster" (no fault tolerance, likely a bug).
    #[must_use]
    pub fn new(cfg: ProtocolConfig, timeout: Duration) -> Self {
        assert!(cfg.n() >= 2, "sequencer needs at least 2 replicas");
        QuorumSequencer {
            cfg,
            epoch: 0,
            next_offset: 0,
            next_deliver: 0,
            log: BTreeMap::new(),
            pending: VecDeque::new(),
            timeout,
            timer_armed: false,
            retained: BTreeMap::new(),
            fetch_requested: None,
        }
    }

    /// Majority size (including the leader).
    #[must_use]
    pub fn majority(&self) -> usize {
        self.cfg.n() / 2 + 1
    }

    /// The leader of `epoch`.
    #[must_use]
    pub fn leader_of(&self, epoch: u64) -> NodeId {
        self.cfg.peers[(epoch % self.cfg.n() as u64) as usize]
    }

    fn i_lead(&self) -> bool {
        self.leader_of(self.epoch) == self.cfg.id
    }

    fn arm_timer(&mut self, actions: &mut Vec<Action<SeqMsg>>) {
        if !self.timer_armed {
            self.timer_armed = true;
            actions.push(Action::SetTimer {
                id: PROGRESS_TIMER,
                after: self.timeout,
            });
        }
    }

    fn disarm_if_idle(&mut self, actions: &mut Vec<Action<SeqMsg>>) {
        let outstanding = !self.pending.is_empty()
            || self
                .log
                .values()
                .any(|e| e.payload.is_some() && !e.committed);
        if self.timer_armed && !outstanding {
            self.timer_armed = false;
            actions.push(Action::CancelTimer { id: PROGRESS_TIMER });
        }
    }

    fn append(&mut self, payload: Vec<u8>, actions: &mut Vec<Action<SeqMsg>>) {
        let offset = self.next_offset;
        self.next_offset += 1;
        let entry = self.log.entry(offset).or_default();
        entry.payload = Some(payload.clone());
        entry.acks.insert(self.cfg.id);
        actions.push(Action::Broadcast {
            msg: SeqMsg::Append {
                epoch: self.epoch,
                offset,
                payload,
            },
        });
        self.arm_timer(actions);
        self.maybe_commit(offset, actions);
    }

    fn maybe_commit(&mut self, offset: u64, actions: &mut Vec<Action<SeqMsg>>) {
        let majority = self.majority();
        let epoch = self.epoch;
        let Some(entry) = self.log.get_mut(&offset) else {
            return;
        };
        if entry.committed || entry.payload.is_none() || entry.acks.len() < majority {
            return;
        }
        entry.committed = true;
        actions.push(Action::Broadcast {
            msg: SeqMsg::Commit { epoch, offset },
        });
        self.try_deliver(actions);
    }

    fn try_deliver(&mut self, actions: &mut Vec<Action<SeqMsg>>) {
        while let Some(entry) = self.log.get(&self.next_deliver) {
            if !entry.committed || entry.payload.is_none() {
                break;
            }
            let offset = self.next_deliver;
            let entry = self.log.remove(&offset).expect("present");
            let payload = entry.payload.expect("checked");
            self.retained.insert(offset, payload.clone());
            actions.push(Action::Deliver {
                seq: offset,
                payload,
            });
            self.next_deliver += 1;
            self.next_offset = self.next_offset.max(self.next_deliver);
        }
        // Progress re-arms gap fetching: the previous request either
        // worked (and a further gap, if any, starts at a new head) or is
        // now about a different offset entirely.
        if self
            .fetch_requested
            .is_some_and(|(head, _)| self.next_deliver > head)
        {
            self.fetch_requested = None;
        }
        self.disarm_if_idle(actions);
    }

    /// Detects a delivery gap — `from` announced (or committed) an offset
    /// beyond `next_deliver` while the head offset cannot deliver — and
    /// asks the announcer for the missing range.
    ///
    /// A present-but-uncommitted head counts as a gap only in *commit
    /// context* (`committed_context`, the `Commit` handler): Commit
    /// messages for one epoch are broadcast in offset order, so under
    /// FIFO links receiving `Commit(j)` while `Commit(next_deliver < j)`
    /// has not arrived means the head's commit was dropped — it is never
    /// resent, and without a Fetch the replica would stall forever. In
    /// append context the head's commit is simply still in flight.
    ///
    /// At most one Fetch is outstanding per gap head
    /// (`fetch_requested`, re-armed when delivery progresses), so a
    /// catch-up does not trigger a replay per received message. Fetch
    /// replays are idempotent: the log absorbs duplicates.
    fn fetch_gap_if_any(
        &mut self,
        from: NodeId,
        announced: u64,
        committed_context: bool,
        actions: &mut Vec<Action<SeqMsg>>,
    ) {
        if announced <= self.next_deliver {
            return;
        }
        // Already requested for this gap head, and nothing new has been
        // announced since — the replay is (presumably) in flight. A
        // higher announcement re-arms the request, covering a Fetch or
        // replay lost to a later fault window.
        if matches!(
            self.fetch_requested,
            Some((head, upto)) if head == self.next_deliver && announced <= upto
        ) {
            return;
        }
        let head_blocked = match self.log.get(&self.next_deliver) {
            None => true,
            Some(e) if e.payload.is_none() => true,
            Some(e) => committed_context && !e.committed,
        };
        if head_blocked {
            self.fetch_requested = Some((self.next_deliver, announced));
            actions.push(Action::Send {
                to: from,
                msg: SeqMsg::Fetch {
                    from: self.next_deliver,
                },
            });
        }
    }

    fn adopt_epoch(&mut self, epoch: u64, actions: &mut Vec<Action<SeqMsg>>) {
        if epoch <= self.epoch {
            return;
        }
        self.epoch = epoch;
        for entry in self.log.values_mut() {
            if !entry.committed {
                entry.acks.clear();
                entry.acks.insert(self.cfg.id);
            }
        }
        if self.i_lead() {
            // Re-replicate the stored, undelivered suffix under the new
            // epoch, then any queued fresh payloads.
            self.next_offset = self
                .log
                .keys()
                .next_back()
                .map_or(self.next_deliver, |&last| (last + 1).max(self.next_deliver));
            let stored: Vec<(u64, Vec<u8>)> = self
                .log
                .iter()
                .filter(|(_, e)| e.payload.is_some() && !e.committed)
                .map(|(&o, e)| (o, e.payload.clone().expect("filtered")))
                .collect();
            for (offset, payload) in stored {
                actions.push(Action::Broadcast {
                    msg: SeqMsg::Append {
                        epoch: self.epoch,
                        offset,
                        payload,
                    },
                });
                self.maybe_commit(offset, actions);
            }
            let pending: Vec<Vec<u8>> = self.pending.drain(..).collect();
            for payload in pending {
                self.append(payload, actions);
            }
        } else {
            // Forward queued payloads to the new leader.
            let leader = self.leader_of(self.epoch);
            for payload in self.pending.drain(..) {
                actions.push(Action::Send {
                    to: leader,
                    msg: SeqMsg::Forward { payload },
                });
            }
        }
        if self.timer_armed {
            self.timer_armed = false;
            self.arm_timer(actions);
        }
    }
}

impl OrderingProtocol for QuorumSequencer {
    type Msg = SeqMsg;

    fn submit(&mut self, payload: Vec<u8>) -> Vec<Action<SeqMsg>> {
        let mut actions = Vec::new();
        if self.i_lead() {
            self.append(payload, &mut actions);
        } else {
            actions.push(Action::Send {
                to: self.leader_of(self.epoch),
                msg: SeqMsg::Forward { payload },
            });
            self.arm_timer(&mut actions);
        }
        actions
    }

    fn on_message(&mut self, from: NodeId, msg: SeqMsg) -> Vec<Action<SeqMsg>> {
        let mut actions = Vec::new();
        match msg {
            SeqMsg::Forward { payload } => {
                if self.i_lead() {
                    self.append(payload, &mut actions);
                } else {
                    // Stale leadership view at the sender: re-forward.
                    actions.push(Action::Send {
                        to: self.leader_of(self.epoch),
                        msg: SeqMsg::Forward { payload },
                    });
                }
            }
            SeqMsg::Append {
                epoch,
                offset,
                payload,
            } => {
                if epoch < self.epoch || from != self.leader_of(epoch) {
                    return actions;
                }
                self.adopt_epoch(epoch, &mut actions);
                if offset < self.next_deliver {
                    return actions;
                }
                let entry = self.log.entry(offset).or_default();
                entry.payload = Some(payload);
                let already_committed = entry.committed;
                self.next_offset = self.next_offset.max(offset + 1);
                actions.push(Action::Send {
                    to: from,
                    msg: SeqMsg::Ack { epoch, offset },
                });
                self.arm_timer(&mut actions);
                // A commit may have arrived before the (re)append.
                if already_committed {
                    self.try_deliver(&mut actions);
                }
                self.fetch_gap_if_any(from, offset, false, &mut actions);
            }
            SeqMsg::Ack { epoch, offset } => {
                if epoch != self.epoch || !self.i_lead() {
                    return actions;
                }
                if let Some(entry) = self.log.get_mut(&offset) {
                    entry.acks.insert(from);
                }
                self.maybe_commit(offset, &mut actions);
            }
            SeqMsg::Commit { epoch, offset } => {
                if from != self.leader_of(epoch) || epoch < self.epoch {
                    return actions;
                }
                self.adopt_epoch(epoch, &mut actions);
                let entry = self.log.entry(offset).or_default();
                entry.committed = true;
                self.try_deliver(&mut actions);
                self.fetch_gap_if_any(from, offset, true, &mut actions);
            }
            SeqMsg::NewEpoch { epoch } => {
                self.adopt_epoch(epoch, &mut actions);
            }
            SeqMsg::Fetch { from: first } => {
                if self.i_lead() {
                    // Replay the retained committed range as ordinary
                    // Append + Commit pairs — the requester's normal
                    // admission path absorbs them (and deduplicates any
                    // offsets it meanwhile obtained elsewhere).
                    let epoch = self.epoch;
                    for (&offset, payload) in self.retained.range(first..) {
                        actions.push(Action::Send {
                            to: from,
                            msg: SeqMsg::Append {
                                epoch,
                                offset,
                                payload: payload.clone(),
                            },
                        });
                        actions.push(Action::Send {
                            to: from,
                            msg: SeqMsg::Commit { epoch, offset },
                        });
                    }
                }
                // Non-leaders ignore Fetch: gaps are only ever detected
                // on messages from the leader, so requests are already
                // addressed there; replays from anyone else would fail
                // the receiver's leadership check anyway.
            }
        }
        actions
    }

    fn on_timer(&mut self, id: TimerId) -> Vec<Action<SeqMsg>> {
        let mut actions = Vec::new();
        if id != PROGRESS_TIMER {
            return actions;
        }
        self.timer_armed = false;
        let next = self.epoch + 1;
        actions.push(Action::Broadcast {
            msg: SeqMsg::NewEpoch { epoch: next },
        });
        self.adopt_epoch(next, &mut actions);
        self.arm_timer(&mut actions);
        actions
    }

    fn id(&self) -> NodeId {
        self.cfg.id
    }

    fn is_leader(&self) -> bool {
        self.i_lead()
    }

    fn current_view(&self) -> u64 {
        self.epoch
    }
}

#[cfg(test)]
mod tests {
    use std::time::Duration;

    use crate::testing::SimCluster;

    use super::*;

    fn cluster(n: usize) -> SimCluster<QuorumSequencer> {
        SimCluster::sequencer(n, Duration::from_millis(100))
    }

    #[test]
    fn leader_orders_and_everyone_delivers() {
        let mut c = cluster(3);
        c.submit(0, b"a".to_vec());
        c.submit(0, b"b".to_vec());
        c.run_to_quiescence();
        for r in 0..3 {
            assert_eq!(
                c.delivered(r),
                vec![(0, b"a".to_vec()), (1, b"b".to_vec())],
                "replica {r}"
            );
        }
    }

    #[test]
    fn follower_submissions_are_forwarded() {
        let mut c = cluster(3);
        c.submit(1, b"x".to_vec());
        c.submit(2, b"y".to_vec());
        c.run_to_quiescence();
        assert!(c.all_agree());
        assert_eq!(c.delivered(0).len(), 2);
    }

    #[test]
    fn tolerates_one_crashed_follower_of_three() {
        let mut c = cluster(3);
        c.crash(2);
        c.submit(0, b"still-works".to_vec());
        c.run_to_quiescence();
        assert_eq!(c.delivered(0).len(), 1);
        assert_eq!(c.delivered(1).len(), 1);
    }

    #[test]
    fn leader_crash_triggers_epoch_change() {
        let mut c = cluster(3);
        c.submit(1, b"urgent".to_vec());
        c.crash(0); // leader of epoch 0 dies before appending? (forward may be lost)
        c.run_to_quiescence();
        // Followers' timers fire: epoch 1 elects replica 1 as leader.
        c.fire_timers();
        c.run_to_quiescence();
        assert!(c.view_of(1) >= 1);
        assert!(c.node(1).is_leader() || c.node(2).is_leader());
        // The payload was forwarded to the dead leader and lost — the
        // host layer resubmits (documented at-most-once). Resubmit here:
        c.submit(1, b"urgent".to_vec());
        c.run_to_quiescence();
        assert_eq!(c.delivered(1).len(), 1);
        assert_eq!(c.delivered(2).len(), 1);
        assert!(c.all_agree());
    }

    #[test]
    fn new_leader_recovers_stored_suffix() {
        let mut c = cluster(3);
        // Leader appends; followers store and ack; commit goes out.
        c.submit(0, b"committed".to_vec());
        c.run_to_quiescence();
        // Now an append that reaches followers but whose commit does not:
        // crash the leader right after submitting (acks still queued).
        c.submit(0, b"in-flight".to_vec());
        c.step_n(2); // deliver the two Appends only
        c.crash(0);
        c.run_to_quiescence(); // acks to the dead leader vanish
        c.fire_timers();
        c.run_to_quiescence();
        // The new leader stored "in-flight" and must finish it.
        for r in 1..3 {
            let log = c.delivered(r);
            assert_eq!(log.len(), 2, "replica {r}: {log:?}");
            assert_eq!(log[1].1, b"in-flight".to_vec());
        }
        assert!(c.all_agree());
    }

    #[test]
    fn five_replicas_survive_two_crashes() {
        let mut c = cluster(5);
        c.crash(3);
        c.crash(4);
        c.submit(0, b"q".to_vec());
        c.run_to_quiescence();
        for r in 0..3 {
            assert_eq!(c.delivered(r).len(), 1, "replica {r}");
        }
    }

    #[test]
    fn partitioned_follower_fetches_the_gap_after_heal() {
        let mut c = cluster(3);
        c.submit(0, b"a".to_vec());
        c.run_to_quiescence();
        // Replica 2 drops off the network; the majority keeps ordering.
        c.crash(2);
        c.submit(0, b"b".to_vec());
        c.submit(0, b"c".to_vec());
        c.run_to_quiescence();
        assert_eq!(c.delivered(2).len(), 1, "partitioned: stuck at offset 0");
        // Heal. The next ordered payload announces offset 3; replica 2
        // detects the gap [1, 3), fetches, and replays to full length.
        c.reconnect(2);
        c.submit(0, b"d".to_vec());
        c.run_to_quiescence();
        assert_eq!(
            c.delivered(2),
            vec![
                (0, b"a".to_vec()),
                (1, b"b".to_vec()),
                (2, b"c".to_vec()),
                (3, b"d".to_vec()),
            ],
            "healed follower must catch up to the full log"
        );
        assert!(c.all_agree());
    }

    #[test]
    fn lost_commit_for_a_stored_offset_triggers_fetch_exactly_once() {
        let peers: Vec<NodeId> = (0..3).map(NodeId).collect();
        let mut follower = QuorumSequencer::new(
            ProtocolConfig::new(NodeId(2), peers),
            Duration::from_millis(100),
        );
        let append = |offset: u64, payload: &[u8]| SeqMsg::Append {
            epoch: 0,
            offset,
            payload: payload.to_vec(),
        };
        // Both Appends arrive; Commit(0) is lost to a partition window.
        let _ = follower.on_message(NodeId(0), append(0, b"a"));
        let _ = follower.on_message(NodeId(0), append(1, b"b"));
        // Commit(1) arriving while offset 0 is stored-but-uncommitted is
        // proof (FIFO links, in-order commit broadcast) that Commit(0)
        // was dropped and will never be resent: fetch.
        let actions = follower.on_message(NodeId(0), SeqMsg::Commit { epoch: 0, offset: 1 });
        let is_fetch0 = |a: &Action<SeqMsg>| {
            matches!(a, Action::Send { to: NodeId(0), msg: SeqMsg::Fetch { from: 0 } })
        };
        assert_eq!(actions.iter().filter(|a| is_fetch0(a)).count(), 1);
        // Further observations of the *same* gap evidence do not
        // re-fetch — the replay is in flight.
        let again = follower.on_message(NodeId(0), SeqMsg::Commit { epoch: 0, offset: 1 });
        assert!(!again.iter().any(is_fetch0), "duplicate Fetch for one gap head");
        // But a higher announcement re-arms the request: if the first
        // Fetch (or its replay) was itself lost to a fault window, the
        // leader's continued progress retries it.
        let rearmed = follower.on_message(NodeId(0), SeqMsg::Commit { epoch: 0, offset: 2 });
        assert_eq!(
            rearmed.iter().filter(|a| is_fetch0(a)).count(),
            1,
            "a higher offset must re-arm the gap fetch"
        );
        // The leader's replay (Append + Commit for offset 0) unblocks
        // delivery of both offsets.
        let _ = follower.on_message(NodeId(0), append(0, b"a"));
        let actions = follower.on_message(NodeId(0), SeqMsg::Commit { epoch: 0, offset: 0 });
        let delivered: Vec<u64> = actions
            .iter()
            .filter_map(|a| match a {
                Action::Deliver { seq, .. } => Some(*seq),
                _ => None,
            })
            .collect();
        assert_eq!(delivered, vec![0, 1]);
    }

    #[test]
    fn fetch_replays_only_from_the_requested_offset() {
        let peers: Vec<NodeId> = (0..3).map(NodeId).collect();
        let mut leader = QuorumSequencer::new(
            ProtocolConfig::new(NodeId(0), peers),
            Duration::from_millis(100),
        );
        // Order two payloads (self-ack + one follower ack each).
        for payload in [b"x".to_vec(), b"y".to_vec()] {
            let _ = leader.submit(payload);
        }
        for offset in 0..2 {
            let _ = leader.on_message(NodeId(1), SeqMsg::Ack { epoch: 0, offset });
        }
        let replay = leader.on_message(NodeId(2), SeqMsg::Fetch { from: 1 });
        // Offset 0 is not replayed; offset 1 arrives as Append + Commit.
        assert!(replay.iter().all(|a| !matches!(
            a,
            Action::Send { msg: SeqMsg::Append { offset: 0, .. }, .. }
        )));
        assert!(replay.iter().any(|a| matches!(
            a,
            Action::Send { to: NodeId(2), msg: SeqMsg::Append { offset: 1, .. } }
        )));
        assert!(replay.iter().any(|a| matches!(
            a,
            Action::Send { to: NodeId(2), msg: SeqMsg::Commit { offset: 1, .. } }
        )));
    }

    #[test]
    fn majority_sizes() {
        let peers: Vec<NodeId> = (0..3).map(NodeId).collect();
        let s = QuorumSequencer::new(
            ProtocolConfig::new(NodeId(0), peers),
            Duration::from_millis(1),
        );
        assert_eq!(s.majority(), 2);
        let peers: Vec<NodeId> = (0..5).map(NodeId).collect();
        let s = QuorumSequencer::new(
            ProtocolConfig::new(NodeId(0), peers),
            Duration::from_millis(1),
        );
        assert_eq!(s.majority(), 3);
    }

    #[test]
    #[should_panic(expected = "at least 2 replicas")]
    fn single_replica_panics() {
        let peers = vec![NodeId(0)];
        let _ = QuorumSequencer::new(
            ProtocolConfig::new(NodeId(0), peers),
            Duration::from_millis(1),
        );
    }

    #[test]
    fn stale_epoch_appends_are_ignored() {
        let peers: Vec<NodeId> = (0..3).map(NodeId).collect();
        let mut follower = QuorumSequencer::new(
            ProtocolConfig::new(NodeId(2), peers),
            Duration::from_millis(100),
        );
        // Jump to epoch 1 (leader = NodeId(1)).
        let _ = follower.on_message(NodeId(1), SeqMsg::NewEpoch { epoch: 1 });
        assert_eq!(follower.current_view(), 1);
        // An epoch-0 append from the old leader is rejected.
        let actions = follower.on_message(
            NodeId(0),
            SeqMsg::Append {
                epoch: 0,
                offset: 0,
                payload: b"old".to_vec(),
            },
        );
        assert!(actions.is_empty());
    }
}
