//! Actions emitted by consensus state machines for the host to perform.

use std::time::Duration;

use parblock_types::NodeId;

/// Identifies a protocol timer (opaque to the host).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TimerId(pub u64);

/// An instruction from a protocol state machine to its hosting node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action<M> {
    /// Send `msg` to one peer.
    Send {
        /// Destination orderer.
        to: NodeId,
        /// Protocol message.
        msg: M,
    },
    /// Send `msg` to every other orderer.
    Broadcast {
        /// Protocol message.
        msg: M,
    },
    /// A payload reached its final position in the total order.
    /// Deliveries are emitted in strictly increasing `seq` order.
    Deliver {
        /// Position in the total order (0-based, gap-free).
        seq: u64,
        /// The ordered payload.
        payload: Vec<u8>,
    },
    /// (Re)arm a timer: the host must call
    /// [`OrderingProtocol::on_timer`](crate::OrderingProtocol::on_timer)
    /// with `id` after `after`, unless the timer is re-armed or cancelled
    /// first.
    SetTimer {
        /// Timer identity.
        id: TimerId,
        /// Delay until expiry.
        after: Duration,
    },
    /// Cancel a previously armed timer.
    CancelTimer {
        /// Timer identity.
        id: TimerId,
    },
}

impl<M> Action<M> {
    /// The delivered `(seq, payload)`, if this is a delivery.
    #[must_use]
    pub fn as_delivery(&self) -> Option<(u64, &[u8])> {
        match self {
            Action::Deliver { seq, payload } => Some((*seq, payload)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn as_delivery_filters() {
        let d: Action<()> = Action::Deliver {
            seq: 3,
            payload: vec![1],
        };
        assert_eq!(d.as_delivery(), Some((3, &[1u8][..])));
        let s: Action<u8> = Action::Send {
            to: NodeId(1),
            msg: 9,
        };
        assert_eq!(s.as_delivery(), None);
    }
}
