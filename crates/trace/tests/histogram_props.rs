//! Property tests pinning the log-bucketed histogram to a counting
//! nearest-rank reference (the same reference style as
//! `crates/core/tests/percentile_props.rs`): for every percentile the
//! histogram must land in the *same bucket* as the exact sorted-vec
//! answer — the "within one bucket" contract DESIGN.md §14 advertises —
//! and merging shards must be associative and equal to recording
//! everything into one histogram.

use proptest::prelude::*;

use parblock_trace::Histogram;

/// Counting definition of the nearest-rank percentile: the smallest
/// sample with at least `p·N` samples at or below it.
fn reference_percentile(samples: &[u64], p: f64) -> u64 {
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let n = sorted.len() as f64;
    for &v in &sorted {
        let at_or_below = sorted.iter().filter(|&&x| x <= v).count() as f64;
        if at_or_below >= p * n {
            return v;
        }
    }
    *sorted.last().expect("non-empty")
}

fn histogram_of(samples: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in samples {
        h.record(v);
    }
    h
}

/// Same-bucket predicate: `a` and `b` bucket identically when recording
/// each into a fresh histogram produces equal single-bucket shapes.
fn same_bucket(a: u64, b: u64) -> bool {
    let (ha, hb) = (histogram_of(&[a]), histogram_of(&[b]));
    let bounds_a = ha.buckets().next().map(|(lo, up, _)| (lo, up));
    let bounds_b = hb.buckets().next().map(|(lo, up, _)| (lo, up));
    bounds_a == bounds_b
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// p50/p99/p999 (and arbitrary p) agree with the counting
    /// reference within one bucket, on tie-heavy small ranges.
    #[test]
    fn percentiles_agree_with_reference_within_one_bucket_ties(
        samples in proptest::collection::vec(0u64..50, 1..120),
        p_mill in 0u32..=1000,
    ) {
        let h = histogram_of(&samples);
        let p = f64::from(p_mill) / 1000.0;
        let exact = reference_percentile(&samples, p);
        let approx = h.percentile(p);
        prop_assert!(same_bucket(exact, approx), "p={p}: exact {exact} vs hist {approx}");
        // Values below 16 are bucketed exactly, so ties must be exact.
        if exact < 16 {
            prop_assert_eq!(approx, exact);
        }
    }

    /// The same agreement over the full magnitude range the tracer
    /// records (nanoseconds up to minutes).
    #[test]
    fn percentiles_agree_with_reference_within_one_bucket_wide(
        samples in proptest::collection::vec(0u64..120_000_000_000, 1..80),
        p_mill in 0u32..=1000,
    ) {
        let p = f64::from(p_mill) / 1000.0;
        let h = histogram_of(&samples);
        let exact = reference_percentile(&samples, p);
        let approx = h.percentile(p);
        prop_assert!(same_bucket(exact, approx), "p={p}: exact {exact} vs hist {approx}");
        // Log-bucketing bounds the relative error at one sub-bucket.
        let err = approx.abs_diff(exact) as f64;
        prop_assert!(err <= exact as f64 / 16.0 + 1.0, "p={p}: err {err} vs exact {exact}");
    }

    /// Percentiles never leave the recorded range and are monotone in p.
    #[test]
    fn percentiles_are_bounded_and_monotone(
        samples in proptest::collection::vec(0u64..1_000_000, 1..60),
        ps in proptest::collection::vec(0u32..=1000, 2..6),
    ) {
        let h = histogram_of(&samples);
        let min = *samples.iter().min().expect("non-empty");
        let max = *samples.iter().max().expect("non-empty");
        let mut sorted_ps = ps;
        sorted_ps.sort_unstable();
        let mut last = 0u64;
        for p_mill in sorted_ps {
            let v = h.percentile(f64::from(p_mill) / 1000.0);
            prop_assert!(v >= min && v <= max);
            prop_assert!(v >= last, "percentile must be monotone in p");
            last = v;
        }
    }

    /// A single sample is every percentile, exactly.
    #[test]
    fn single_sample_is_every_percentile(value in 0u64..u64::MAX, p_mill in 0u32..=1000) {
        let h = histogram_of(&[value]);
        prop_assert_eq!(h.percentile(f64::from(p_mill) / 1000.0), value);
    }

    /// Merging shards is associative and equals one big histogram —
    /// sharded recorders can combine in any order.
    #[test]
    fn merge_is_associative_and_equals_single_recording(
        a in proptest::collection::vec(0u64..1_000_000_000, 0..40),
        b in proptest::collection::vec(0u64..1_000_000_000, 0..40),
        c in proptest::collection::vec(0u64..1_000_000_000, 0..40),
    ) {
        let (ha, hb, hc) = (histogram_of(&a), histogram_of(&b), histogram_of(&c));
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);
        prop_assert_eq!(&left, &right, "(a+b)+c == a+(b+c)");
        let all: Vec<u64> = a.iter().chain(&b).chain(&c).copied().collect();
        prop_assert_eq!(&left, &histogram_of(&all), "merge == single recording");
    }
}

#[test]
fn empty_histogram_percentiles_are_zero() {
    let h = Histogram::new();
    for p in [0.0, 0.5, 0.99, 0.999, 1.0] {
        assert_eq!(h.percentile(p), 0);
    }
}
