//! The snapshot a [`TraceRecorder`](crate::TraceRecorder) produces.

use parblock_types::wire::Wire;
use parblock_types::TxId;

use crate::histogram::Histogram;
use crate::stage::{Stage, STAGE_COUNT};

/// Latency distribution between two consecutively recorded stages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StagePair {
    /// Earlier stage.
    pub from: Stage,
    /// Later stage (the next one actually recorded for the
    /// transaction; engines that skip a stage — e.g. pessimistic
    /// execution never validates — produce the skipping pair).
    pub to: Stage,
    /// Gap distribution in nanoseconds.
    pub hist: Histogram,
}

/// One sampled transaction's full lifecycle, as nanosecond offsets from
/// the recorder's origin (`None` = stage never recorded).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxTimeline {
    /// The transaction.
    pub tx: TxId,
    /// Per-stage timestamps, indexed by [`Stage::index`].
    pub stages: [Option<u64>; STAGE_COUNT],
}

/// Everything a run's tracing produced. The default value is the
/// disabled/empty report, which existing `RunReport` digests never see
/// (digest gating, DESIGN.md §14).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceReport {
    /// Whether tracing was on for the run.
    pub enabled: bool,
    /// Stage-pair latency histograms, ascending `(from, to)` order.
    pub pairs: Vec<StagePair>,
    /// Durability-layer seal (WAL append + fsync) durations in
    /// nanoseconds, recorded inside the store.
    pub seal: Histogram,
    /// Sampled full timelines (ring-buffer bounded).
    pub timelines: Vec<TxTimeline>,
    /// Transactions that reached [`Stage::Durable`] and folded into the
    /// histograms.
    pub finished: u64,
    /// Transactions dropped after an abort.
    pub aborted: u64,
    /// Transactions still in flight when the snapshot was taken.
    pub incomplete: u64,
    /// Sampled timelines evicted by the ring-buffer bound.
    pub dropped_timelines: u64,
}

impl TraceReport {
    /// `true` when this report carries (or could have carried) data —
    /// the digest-gating predicate: a default report encodes nothing,
    /// keeping historical `RunReport::digest()` values byte-stable.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.enabled
            || !self.pairs.is_empty()
            || self.finished != 0
            || self.incomplete != 0
    }

    /// The histogram for a stage pair, if any transaction produced it.
    #[must_use]
    pub fn pair(&self, from: Stage, to: Stage) -> Option<&Histogram> {
        self.pairs
            .iter()
            .find(|pair| pair.from == from && pair.to == to)
            .map(|pair| &pair.hist)
    }

    /// Appends a canonical byte encoding. Iteration covers only the
    /// already-sorted `pairs` and `timelines` vectors, so the encoding
    /// is deterministic; under the virtual clock it is a pure function
    /// of the seed.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        u64::from(self.enabled).encode(out);
        self.finished.encode(out);
        self.aborted.encode(out);
        self.incomplete.encode(out);
        self.dropped_timelines.encode(out);
        self.seal.encode_into(out);
        (self.pairs.len() as u64).encode(out);
        for pair in &self.pairs {
            (pair.from.index() as u64).encode(out);
            (pair.to.index() as u64).encode(out);
            pair.hist.encode_into(out);
        }
        (self.timelines.len() as u64).encode(out);
        for timeline in &self.timelines {
            u64::from(timeline.tx.client.0).encode(out);
            timeline.tx.client_ts.encode(out);
            for slot in &timeline.stages {
                match slot {
                    Some(ns) => {
                        1u64.encode(out);
                        ns.encode(out);
                    }
                    None => 0u64.encode(out),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use parblock_types::ClientId;

    use super::*;

    #[test]
    fn default_report_is_inactive_and_encodes_stably() {
        let report = TraceReport::default();
        assert!(!report.is_active());
        let mut a = Vec::new();
        let mut b = Vec::new();
        report.encode_into(&mut a);
        report.encode_into(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn encoding_distinguishes_timelines() {
        let timeline = TxTimeline {
            tx: TxId::new(ClientId(1), 9),
            stages: [None; STAGE_COUNT],
        };
        let mut with = TraceReport {
            enabled: true,
            timelines: vec![timeline],
            ..TraceReport::default()
        };
        let mut bytes_with = Vec::new();
        with.encode_into(&mut bytes_with);
        with.timelines[0].stages[0] = Some(5);
        let mut bytes_changed = Vec::new();
        with.encode_into(&mut bytes_changed);
        assert_ne!(bytes_with, bytes_changed);
        assert!(with.is_active());
    }

    #[test]
    fn pair_lookup_finds_exact_pairs_only() {
        let mut hist = Histogram::new();
        hist.record(10);
        let report = TraceReport {
            enabled: true,
            pairs: vec![StagePair {
                from: Stage::Cut,
                to: Stage::GraphReady,
                hist,
            }],
            ..TraceReport::default()
        };
        assert!(report.pair(Stage::Cut, Stage::GraphReady).is_some());
        assert!(report.pair(Stage::Cut, Stage::Dispatched).is_none());
    }
}
