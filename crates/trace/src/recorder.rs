//! The per-transaction lifecycle recorder.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use parblock_types::{Clock, TxId};

use crate::histogram::Histogram;
use crate::report::{StagePair, TraceReport, TxTimeline};
use crate::stage::{Stage, STAGE_COUNT};

/// Sentinel for "stage not recorded" in a timestamp slot (a real offset
/// of `u64::MAX` ns is ~584 years past the clock origin).
const UNSET: u64 = u64::MAX;

/// Tracing configuration, carried by `ClusterSpec`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Master switch. Disabled (the default) costs one branch per
    /// record call.
    pub enabled: bool,
    /// Timeline sampling rate: a transaction's full timeline is kept
    /// when the low `sample_shift` bits of its hashed [`TxId`] are zero
    /// (1 in `2^sample_shift`; 0 keeps every transaction). Hashing the
    /// id — not counting arrivals — keeps the sample deterministic
    /// across runs and engines.
    pub sample_shift: u32,
    /// Ring-buffer bound on retained timelines: beyond this the oldest
    /// sampled timeline is dropped (and counted).
    pub sample_cap: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            enabled: false,
            sample_shift: 4,
            sample_cap: 256,
        }
    }
}

impl TraceConfig {
    /// An enabled configuration with default sampling (1 in 16, 256
    /// retained timelines).
    #[must_use]
    pub fn on() -> Self {
        TraceConfig {
            enabled: true,
            ..TraceConfig::default()
        }
    }
}

/// SplitMix64 finalizer: disperses [`TxId`]s for sampling.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn sampled(tx: TxId, shift: u32) -> bool {
    shift == 0 || mix64((u64::from(tx.client.0) << 32) ^ tx.client_ts) & ((1 << shift) - 1) == 0
}

#[derive(Debug)]
struct State {
    /// Stage timestamps (ns since origin, [`UNSET`] until recorded) for
    /// transactions that have not yet reached [`Stage::Durable`].
    inflight: HashMap<TxId, [u64; STAGE_COUNT]>,
    /// `pairs[from * STAGE_COUNT + to]`: latency between consecutive
    /// *recorded* stages, folded in when a transaction finishes.
    pairs: Vec<Histogram>,
    /// Durability-layer seal (WAL append + fsync) durations, recorded
    /// by the store.
    seal: Histogram,
    timelines: VecDeque<TxTimeline>,
    finished: u64,
    aborted: u64,
    dropped_timelines: u64,
}

#[derive(Debug)]
struct Inner {
    config: TraceConfig,
    clock: Clock,
    origin: Instant,
    state: Mutex<State>,
}

/// Records stage timestamps for every transaction and folds them into
/// stage-pair histograms when the transaction completes.
///
/// Cheap to clone (an `Arc`); the default value is disabled and records
/// nothing. All timestamps come from the injected [`Clock`], stored as
/// nanoseconds since the recorder's creation instant — under the
/// virtual clock this makes whole traces a pure function of the seed.
#[derive(Debug, Clone, Default)]
pub struct TraceRecorder {
    inner: Option<Arc<Inner>>,
}

impl TraceRecorder {
    /// Creates a recorder reading `clock`; disabled configs yield the
    /// free recorder.
    #[must_use]
    pub fn new(clock: &Clock, config: TraceConfig) -> Self {
        if !config.enabled {
            return TraceRecorder::default();
        }
        TraceRecorder {
            inner: Some(Arc::new(Inner {
                config,
                clock: clock.clone(),
                origin: clock.now(),
                state: Mutex::new(State {
                    inflight: HashMap::new(),
                    pairs: vec![Histogram::new(); STAGE_COUNT * STAGE_COUNT],
                    seal: Histogram::new(),
                    timelines: VecDeque::new(),
                    finished: 0,
                    aborted: 0,
                    dropped_timelines: 0,
                }),
            })),
        }
    }

    /// `true` when this recorder actually records.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The recorder's clock, `None` when disabled — lets instrumented
    /// layers (the store's seal timing) read time without holding their
    /// own clock handle.
    #[must_use]
    pub fn clock(&self) -> Option<&Clock> {
        self.inner.as_deref().map(|inner| &inner.clock)
    }

    /// Records `stage` for `tx` at the clock's current instant.
    pub fn record(&self, tx: TxId, stage: Stage) {
        let Some(inner) = self.inner.as_deref() else {
            return;
        };
        self.record_offset(inner, tx, stage, inner.clock.ns_since(inner.origin));
    }

    /// Records `stage` for `tx` at an explicit instant (the driver
    /// stamps [`Stage::Submitted`] with the *intended* arrival, so
    /// driver overruns are charged to the pipeline, not hidden).
    pub fn record_at(&self, tx: TxId, stage: Stage, at: Instant) {
        let Some(inner) = self.inner.as_deref() else {
            return;
        };
        self.record_offset(inner, tx, stage, offset_ns(inner.origin, at));
    }

    /// Records [`Stage::Durable`] for a whole block's transactions at
    /// one instant (one lock, one clock read).
    pub fn record_durable_block(&self, ids: impl IntoIterator<Item = TxId>) {
        let Some(inner) = self.inner.as_deref() else {
            return;
        };
        let ns = inner.clock.ns_since(inner.origin);
        let mut state = inner.state.lock().expect("trace state");
        for tx in ids {
            record_slot(&mut state, &inner.config, tx, Stage::Durable, ns);
        }
    }

    /// Records one durability-layer seal (WAL append + fsync) duration.
    pub fn record_seal(&self, started: Instant) {
        let Some(inner) = self.inner.as_deref() else {
            return;
        };
        let ns = duration_ns(inner.clock.now().saturating_duration_since(started));
        let mut state = inner.state.lock().expect("trace state");
        state.seal.record(ns);
    }

    /// Forgets an aborted transaction (its partial timeline would
    /// otherwise be counted as incomplete).
    pub fn drop_tx(&self, tx: TxId) {
        let Some(inner) = self.inner.as_deref() else {
            return;
        };
        let mut state = inner.state.lock().expect("trace state");
        if state.inflight.remove(&tx).is_some() {
            state.aborted += 1;
        }
    }

    fn record_offset(&self, inner: &Inner, tx: TxId, stage: Stage, ns: u64) {
        let mut state = inner.state.lock().expect("trace state");
        record_slot(&mut state, &inner.config, tx, stage, ns);
    }

    /// Snapshots the recorded data. Transactions still in flight are
    /// counted as incomplete and discarded (mirroring
    /// `Metrics::report`'s submit-map prune).
    #[must_use]
    pub fn snapshot(&self) -> TraceReport {
        let Some(inner) = self.inner.as_deref() else {
            return TraceReport::default();
        };
        let mut state = inner.state.lock().expect("trace state");
        let incomplete = state.inflight.len() as u64;
        state.inflight.clear();
        let mut pairs = Vec::new();
        for (index, hist) in state.pairs.iter().enumerate() {
            if !hist.is_empty() {
                let from = Stage::from_index(index / STAGE_COUNT).expect("pair index");
                let to = Stage::from_index(index % STAGE_COUNT).expect("pair index");
                pairs.push(StagePair {
                    from,
                    to,
                    hist: hist.clone(),
                });
            }
        }
        TraceReport {
            enabled: true,
            pairs,
            seal: state.seal.clone(),
            timelines: state.timelines.iter().cloned().collect(),
            finished: state.finished,
            aborted: state.aborted,
            incomplete,
            dropped_timelines: state.dropped_timelines,
        }
    }
}

fn offset_ns(origin: Instant, at: Instant) -> u64 {
    duration_ns(at.saturating_duration_since(origin))
}

fn duration_ns(d: std::time::Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// First-record-wins slot write; a [`Stage::Durable`] record finishes
/// the transaction: consecutive recorded stages fold into the pair
/// histograms and the (sampled) timeline enters the ring buffer.
fn record_slot(state: &mut State, config: &TraceConfig, tx: TxId, stage: Stage, ns: u64) {
    let slots = state.inflight.entry(tx).or_insert([UNSET; STAGE_COUNT]);
    if slots[stage.index()] == UNSET {
        slots[stage.index()] = ns;
    }
    if stage != Stage::Durable {
        return;
    }
    let slots = state.inflight.remove(&tx).expect("just inserted");
    let mut previous: Option<(usize, u64)> = None;
    for (index, &at) in slots.iter().enumerate() {
        if at == UNSET {
            continue;
        }
        if let Some((from, from_ns)) = previous {
            state.pairs[from * STAGE_COUNT + index].record(at.saturating_sub(from_ns));
        }
        previous = Some((index, at));
    }
    state.finished += 1;
    if sampled(tx, config.sample_shift) {
        let stages = slots.map(|at| (at != UNSET).then_some(at));
        state.timelines.push_back(TxTimeline { tx, stages });
        if state.timelines.len() > config.sample_cap {
            state.timelines.pop_front();
            state.dropped_timelines += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use std::time::Duration;

    use parblock_types::ClientId;

    use super::*;

    fn tx(n: u64) -> TxId {
        TxId::new(ClientId(0), n)
    }

    #[test]
    fn disabled_recorder_is_free_and_reports_nothing() {
        let recorder = TraceRecorder::default();
        assert!(!recorder.enabled());
        recorder.record(tx(1), Stage::Submitted);
        recorder.record_durable_block([tx(1)]);
        let report = recorder.snapshot();
        assert_eq!(report, TraceReport::default());
        assert!(!report.enabled);
    }

    #[test]
    fn stage_deltas_fold_into_pair_histograms_on_durable() {
        let clock = Clock::simulated();
        let recorder = TraceRecorder::new(
            &clock,
            TraceConfig {
                sample_shift: 0,
                ..TraceConfig::on()
            },
        );
        recorder.record(tx(1), Stage::Submitted);
        clock.advance(Duration::from_micros(100));
        recorder.record(tx(1), Stage::Sequenced);
        clock.advance(Duration::from_micros(50));
        // Validated never recorded (pessimistic engine): the fold skips it.
        recorder.record(tx(1), Stage::Committed);
        clock.advance(Duration::from_micros(10));
        recorder.record_durable_block([tx(1)]);

        let report = recorder.snapshot();
        assert_eq!(report.finished, 1);
        assert_eq!(report.incomplete, 0);
        let submit_seq = report.pair(Stage::Submitted, Stage::Sequenced).expect("pair");
        assert_eq!(submit_seq.count(), 1);
        assert_eq!(submit_seq.min(), Some(100_000));
        let seq_commit = report.pair(Stage::Sequenced, Stage::Committed).expect("pair");
        assert_eq!(seq_commit.min(), Some(50_000));
        assert!(report.pair(Stage::Sequenced, Stage::Cut).is_none());
        assert_eq!(report.timelines.len(), 1);
        let timeline = &report.timelines[0];
        assert_eq!(timeline.stages[Stage::Submitted.index()], Some(0));
        assert_eq!(timeline.stages[Stage::Cut.index()], None);
        assert_eq!(timeline.stages[Stage::Durable.index()], Some(160_000));
    }

    #[test]
    fn first_record_wins_and_unfinished_count_as_incomplete() {
        let clock = Clock::simulated();
        let recorder = TraceRecorder::new(&clock, TraceConfig::on());
        recorder.record(tx(7), Stage::Dispatched);
        clock.advance(Duration::from_millis(1));
        recorder.record(tx(7), Stage::Dispatched); // re-execution: ignored
        let report = recorder.snapshot();
        assert_eq!(report.incomplete, 1);
        assert_eq!(report.finished, 0);
        // The snapshot drained the in-flight map.
        assert_eq!(recorder.snapshot().incomplete, 0);
    }

    #[test]
    fn aborted_transactions_are_dropped_not_incomplete() {
        let clock = Clock::simulated();
        let recorder = TraceRecorder::new(&clock, TraceConfig::on());
        recorder.record(tx(3), Stage::Submitted);
        recorder.drop_tx(tx(3));
        let report = recorder.snapshot();
        assert_eq!(report.aborted, 1);
        assert_eq!(report.incomplete, 0);
    }

    #[test]
    fn ring_buffer_bounds_sampled_timelines() {
        let clock = Clock::simulated();
        let recorder = TraceRecorder::new(
            &clock,
            TraceConfig {
                sample_shift: 0,
                sample_cap: 2,
                ..TraceConfig::on()
            },
        );
        for n in 0..5 {
            recorder.record(tx(n), Stage::Submitted);
            clock.advance(Duration::from_micros(1));
            recorder.record_durable_block([tx(n)]);
        }
        let report = recorder.snapshot();
        assert_eq!(report.finished, 5);
        assert_eq!(report.timelines.len(), 2, "ring keeps the most recent");
        assert_eq!(report.dropped_timelines, 3);
        assert_eq!(report.timelines[0].tx, tx(3));
        assert_eq!(report.timelines[1].tx, tx(4));
    }

    #[test]
    fn sampling_is_a_deterministic_function_of_the_id() {
        let keep_all: Vec<bool> = (0..64).map(|n| sampled(tx(n), 0)).collect();
        assert!(keep_all.iter().all(|&k| k));
        let one_in_16a: Vec<bool> = (0..256).map(|n| sampled(tx(n), 4)).collect();
        let one_in_16b: Vec<bool> = (0..256).map(|n| sampled(tx(n), 4)).collect();
        assert_eq!(one_in_16a, one_in_16b);
        let kept = one_in_16a.iter().filter(|&&k| k).count();
        assert!(kept > 0 && kept < 256, "roughly 1 in 16, got {kept}/256");
    }

    #[test]
    fn seal_durations_land_in_the_seal_histogram() {
        let clock = Clock::simulated();
        let recorder = TraceRecorder::new(&clock, TraceConfig::on());
        let started = clock.now();
        clock.advance(Duration::from_micros(250));
        recorder.record_seal(started);
        let report = recorder.snapshot();
        assert_eq!(report.seal.count(), 1);
        assert_eq!(report.seal.min(), Some(250_000));
    }
}
