//! Per-transaction lifecycle tracing (DESIGN.md §14).
//!
//! The saturation harness (DESIGN.md §13) says *that* the knee sits at a
//! rate; this crate says *where* the latency goes. Every transaction
//! moves through a fixed pipeline of stages — submitted → sequenced →
//! cut → graph-ready → dispatched → executed → validated → committed →
//! durable — and the [`TraceRecorder`] stamps each stage with a
//! timestamp from the injectable [`parblock_types::Clock`], so the
//! virtual-time sim leg produces bit-reproducible traces.
//!
//! Two products come out of a run:
//!
//! * **Stage-pair histograms** ([`Histogram`]): mergeable, log-bucketed
//!   (HDR-style) latency distributions between consecutive recorded
//!   stages, exact enough that p50/p99/p999 agree with a sorted-vec
//!   nearest-rank percentile within one bucket (≤ 6.25% relative
//!   error).
//! * **Sampled timelines** ([`TxTimeline`]): full per-stage timestamp
//!   vectors for a deterministic (seed-independent, [`TxId`]-hashed)
//!   sample of transactions, bounded by a ring buffer, renderable as
//!   Chrome trace events.
//!
//! The recorder is near-free when disabled: a disabled
//! [`TraceRecorder`] is a `None` and every record call is a single
//! branch.
//!
//! [`TxId`]: parblock_types::TxId

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod histogram;
mod recorder;
mod report;
mod stage;

pub use histogram::{Histogram, BUCKETS, SUB_BUCKETS};
pub use recorder::{TraceConfig, TraceRecorder};
pub use report::{StagePair, TraceReport, TxTimeline};
pub use stage::{Stage, STAGE_COUNT};
