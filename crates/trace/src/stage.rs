//! The fixed transaction lifecycle stage model.

use std::fmt;

/// Number of lifecycle stages — the length of [`Stage::ALL`].
pub const STAGE_COUNT: usize = 9;

/// One stage of a transaction's lifecycle through an OXII cluster, in
/// pipeline order. The discriminants are stable (they appear in digest
/// encodings and JSON artifacts) — append-only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Stage {
    /// Client driver handed the signed request to the entry orderer
    /// (stamped with the *intended* arrival, so driver lag is charged
    /// to the submit→sequence gap, not hidden).
    Submitted = 0,
    /// Consensus delivered the transaction to the ordering service.
    Sequenced = 1,
    /// The block cutter sealed the transaction into a block.
    Cut = 2,
    /// Every dependency-graph predecessor completed: the scheduler may
    /// dispatch it.
    GraphReady = 3,
    /// An executor worker picked it up (first dispatch under
    /// re-execution).
    Dispatched = 4,
    /// Contract execution finished (first completion; optimistic
    /// re-execution latency lands in the gap to the next stage).
    Executed = 5,
    /// The optimistic engine's validation scan accepted the speculative
    /// result (absent under the pessimistic engine).
    Validated = 6,
    /// The commit quorum was reached on the observer.
    Committed = 7,
    /// The block holding the transaction was sealed to the durability
    /// layer (the WAL fsync lands here on-disk).
    Durable = 8,
}

impl Stage {
    /// All stages in pipeline order.
    pub const ALL: [Stage; STAGE_COUNT] = [
        Stage::Submitted,
        Stage::Sequenced,
        Stage::Cut,
        Stage::GraphReady,
        Stage::Dispatched,
        Stage::Executed,
        Stage::Validated,
        Stage::Committed,
        Stage::Durable,
    ];

    /// The stage's position in [`Stage::ALL`].
    #[must_use]
    pub fn index(self) -> usize {
        self as usize
    }

    /// The inverse of [`Stage::index`].
    #[must_use]
    pub fn from_index(index: usize) -> Option<Stage> {
        Stage::ALL.get(index).copied()
    }

    /// Stable lowercase name, used in tables and JSON artifacts.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Stage::Submitted => "submitted",
            Stage::Sequenced => "sequenced",
            Stage::Cut => "cut",
            Stage::GraphReady => "graph-ready",
            Stage::Dispatched => "dispatched",
            Stage::Executed => "executed",
            Stage::Validated => "validated",
            Stage::Committed => "committed",
            Stage::Durable => "durable",
        }
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_round_trip_and_are_ordered() {
        for (i, stage) in Stage::ALL.iter().enumerate() {
            assert_eq!(stage.index(), i);
            assert_eq!(Stage::from_index(i), Some(*stage));
        }
        assert_eq!(Stage::from_index(STAGE_COUNT), None);
        let mut sorted = Stage::ALL;
        sorted.sort();
        assert_eq!(sorted, Stage::ALL, "ALL is pipeline-ordered");
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = Stage::ALL.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), STAGE_COUNT);
        assert_eq!(Stage::GraphReady.to_string(), "graph-ready");
    }
}
