//! Mergeable log-bucketed (HDR-style) latency histograms.
//!
//! Values are bucketed into power-of-two octaves, each subdivided into
//! [`SUB_BUCKETS`] linear sub-buckets, so the bucket width is at most
//! `value / 16`: any percentile read off the histogram lands in the same
//! bucket as the exact nearest-rank sample, i.e. within 6.25% relative
//! error. Values below [`SUB_BUCKETS`] are exact (one bucket per value).
//!
//! Histograms merge by element-wise count addition, which is
//! associative and commutative — per-shard recorders can be combined in
//! any order and produce identical results.

use parblock_types::wire::Wire;

/// Linear sub-buckets per power-of-two octave.
pub const SUB_BUCKETS: usize = 16;

/// Total bucket count: 16 exact unit buckets for values `0..16`, then
/// 16 sub-buckets for each octave `[2^o, 2^(o+1))`, `o = 4..=63`.
pub const BUCKETS: usize = SUB_BUCKETS + 60 * SUB_BUCKETS;

/// A fixed-shape log-bucketed histogram over `u64` values (the tracer
/// stores nanoseconds; the unit is the caller's).
///
/// The default value is the empty histogram; `counts` stays unallocated
/// until the first sample so an idle stage pair costs nothing.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Histogram {
    /// Either empty (no samples) or exactly [`BUCKETS`] long.
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

/// The bucket a value falls into.
#[must_use]
pub(crate) fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS as u64 {
        v as usize
    } else {
        let octave = 63 - v.leading_zeros() as usize; // >= 4
        let sub = ((v >> (octave - 4)) & 15) as usize;
        SUB_BUCKETS * (octave - 3) + sub
    }
}

/// The inclusive `[lower, upper]` value range of a bucket.
#[must_use]
pub(crate) fn bucket_bounds(index: usize) -> (u64, u64) {
    if index < SUB_BUCKETS {
        (index as u64, index as u64)
    } else {
        let octave = index / SUB_BUCKETS + 3;
        let sub = (index % SUB_BUCKETS) as u64;
        let lower = (SUB_BUCKETS as u64 + sub) << (octave - 4);
        (lower, lower + ((1u64 << (octave - 4)) - 1))
    }
}

impl Histogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        if self.counts.is_empty() {
            self.counts = vec![0; BUCKETS];
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.counts[bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Total number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// `true` when no samples have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of all samples (saturating).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample (exact), `None` when empty.
    #[must_use]
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample (exact), `None` when empty.
    #[must_use]
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean of all samples, 0 when empty.
    #[must_use]
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Nearest-rank percentile, `p` in `[0, 1]`; 0 when empty.
    ///
    /// Returns the upper bound of the bucket holding the nearest-rank
    /// sample, clamped into `[min, max]` — always in the same bucket as
    /// the exact sorted-vec percentile
    /// ([`crate::report::TraceReport`] relies on this agreement; the
    /// property tests pin it).
    #[must_use]
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation)]
        #[allow(clippy::cast_sign_loss)]
        let rank = ((p * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (index, &n) in self.counts.iter().enumerate() {
            cumulative += n;
            if cumulative >= rank {
                let (_, upper) = bucket_bounds(index);
                return upper.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Adds every sample of `other` into `self` (associative and
    /// commutative: shard recorders merge in any order).
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        for (into, from) in self.counts.iter_mut().zip(&other.counts) {
            *into += from;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Appends a canonical byte encoding (for digests): only populated
    /// buckets, as sorted `(index, count)` pairs.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        self.count.encode(out);
        self.sum.encode(out);
        self.min.encode(out);
        self.max.encode(out);
        let populated = self.counts.iter().filter(|&&n| n != 0).count() as u64;
        populated.encode(out);
        for (index, &n) in self.counts.iter().enumerate() {
            if n != 0 {
                (index as u64).encode(out);
                n.encode(out);
            }
        }
    }

    /// Iterates populated buckets as `(lower, upper, count)` in
    /// ascending value order.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.counts.iter().enumerate().filter(|(_, &n)| n != 0).map(|(index, &n)| {
            let (lower, upper) = bucket_bounds(index);
            (lower, upper, n)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_is_contiguous_and_total() {
        // Every boundary value maps into a bucket whose bounds contain
        // it, and bucket ranges tile the u64 line in order.
        let mut expected_lower = 0u64;
        for index in 0..BUCKETS {
            let (lower, upper) = bucket_bounds(index);
            assert_eq!(lower, expected_lower, "bucket {index} starts where the last ended");
            assert!(upper >= lower);
            assert_eq!(bucket_index(lower), index);
            assert_eq!(bucket_index(upper), index);
            expected_lower = upper.wrapping_add(1);
        }
        assert_eq!(expected_lower, 0, "last bucket ends at u64::MAX");
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn relative_error_is_bounded() {
        for v in [16u64, 100, 999, 1_000_000, u64::MAX / 3] {
            let (lower, upper) = bucket_bounds(bucket_index(v));
            assert!((upper - lower) as f64 <= v as f64 / 16.0 + 1.0, "v={v}");
        }
    }

    #[test]
    fn exact_below_cutoff() {
        let mut h = Histogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        assert_eq!(h.percentile(0.5), 7);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(15));
        assert_eq!(h.mean(), 7);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.percentile(0.99), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), 0);
        assert_eq!(h, Histogram::default());
    }

    #[test]
    fn single_sample_dominates_every_percentile() {
        let mut h = Histogram::new();
        h.record(123_456);
        for p in [0.0, 0.5, 0.99, 0.999, 1.0] {
            assert_eq!(h.percentile(p), 123_456, "single sample is exact via clamping");
        }
    }

    #[test]
    fn merge_equals_recording_everything_in_one() {
        let samples_a = [3u64, 17, 17, 999, 1_000_000];
        let samples_b = [0u64, 25_000, u64::MAX];
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for v in samples_a {
            a.record(v);
            all.record(v);
        }
        for v in samples_b {
            b.record(v);
            all.record(v);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged, all);
        // Merge into empty clones the source.
        let mut from_empty = Histogram::new();
        from_empty.merge(&all);
        assert_eq!(from_empty, all);
    }

    #[test]
    fn encoding_is_stable_and_distinguishes_content() {
        let mut a = Histogram::new();
        a.record(42);
        let mut bytes1 = Vec::new();
        let mut bytes2 = Vec::new();
        a.encode_into(&mut bytes1);
        a.encode_into(&mut bytes2);
        assert_eq!(bytes1, bytes2);
        let mut b = Histogram::new();
        b.record(43);
        let mut other = Vec::new();
        b.encode_into(&mut other);
        assert_ne!(bytes1, other);
    }

    #[test]
    fn buckets_iterator_reports_populated_ranges() {
        let mut h = Histogram::new();
        h.record(5);
        h.record(5);
        h.record(40);
        let buckets: Vec<_> = h.buckets().collect();
        assert_eq!(buckets[0], (5, 5, 2));
        let (lower, upper, n) = buckets[1];
        assert!(lower <= 40 && 40 <= upper);
        assert_eq!(n, 1);
    }
}
