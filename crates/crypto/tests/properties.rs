//! Property tests for the crypto primitives.

use proptest::prelude::*;

use parblock_crypto::{hmac_sha256, merkle_root, sha256, KeyRegistry, Sha256, SignerId};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Incremental hashing over any chunking equals one-shot hashing.
    #[test]
    fn incremental_equals_oneshot(
        data in proptest::collection::vec(any::<u8>(), 0..512),
        cuts in proptest::collection::vec(0usize..512, 0..6),
    ) {
        let want = sha256(&data);
        let mut h = Sha256::new();
        let mut cuts: Vec<usize> = cuts.into_iter().map(|c| c % (data.len() + 1)).collect();
        cuts.sort_unstable();
        let mut prev = 0;
        for cut in cuts {
            h.update(&data[prev..cut.max(prev)]);
            prev = cut.max(prev);
        }
        h.update(&data[prev..]);
        prop_assert_eq!(h.finalize(), want);
    }

    /// Distinct messages (almost surely) hash differently, and hashing is
    /// deterministic.
    #[test]
    fn deterministic_and_sensitive(data in proptest::collection::vec(any::<u8>(), 1..256)) {
        prop_assert_eq!(sha256(&data), sha256(&data));
        let mut flipped = data.clone();
        flipped[0] ^= 0x01;
        prop_assert_ne!(sha256(&data), sha256(&flipped));
    }

    /// HMAC differs when either the key or the message changes.
    #[test]
    fn hmac_sensitivity(
        key in proptest::collection::vec(any::<u8>(), 1..64),
        msg in proptest::collection::vec(any::<u8>(), 0..128),
    ) {
        let mac = hmac_sha256(&key, &msg);
        let mut key2 = key.clone();
        key2[0] ^= 1;
        prop_assert_ne!(hmac_sha256(&key2, &msg), mac);
        let mut msg2 = msg.clone();
        msg2.push(0);
        prop_assert_ne!(hmac_sha256(&key, &msg2), mac);
    }

    /// Signatures verify only for the signer and message they cover.
    #[test]
    fn signature_binding(
        signer in 0u32..8,
        other in 0u32..8,
        msg in proptest::collection::vec(any::<u8>(), 1..128),
    ) {
        let registry = KeyRegistry::deterministic(8);
        let sig = registry.sign(SignerId(signer), &msg);
        prop_assert!(registry.verify(SignerId(signer), &msg, &sig));
        if other != signer {
            prop_assert!(!registry.verify(SignerId(other), &msg, &sig));
        }
        let mut tampered = msg.clone();
        tampered[0] ^= 0xff;
        prop_assert!(!registry.verify(SignerId(signer), &tampered, &sig));
    }

    /// The Merkle root commits to every leaf and the leaf order.
    #[test]
    fn merkle_commits_to_leaves(
        n in 1usize..24,
        tamper in 0usize..24,
    ) {
        let leaves: Vec<_> = (0..n).map(|i| sha256(&[i as u8, 0x7f])).collect();
        let root = merkle_root(&leaves);
        let tamper = tamper % n;
        let mut modified = leaves.clone();
        modified[tamper] = sha256(b"tampered");
        prop_assert_ne!(merkle_root(&modified), root);
    }
}
