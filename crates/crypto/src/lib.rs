//! Cryptographic primitives for the ParBlockchain reproduction.
//!
//! Everything here is implemented from scratch on top of the standard
//! library: SHA-256 (validated against the NIST test vectors), HMAC-SHA256,
//! a Merkle-root helper, and a *simulated* signature scheme.
//!
//! # Simulated signatures
//!
//! The paper assumes pairwise-authenticated channels and signed client /
//! orderer / executor messages. A real deployment would use asymmetric
//! signatures (e.g. ECDSA); this reproduction substitutes HMAC-SHA256 under
//! a shared in-process [`KeyRegistry`], which provides the same
//! authenticity property inside one simulation while costing a comparable
//! per-message hash pass (see DESIGN.md §3).
//!
//! # Examples
//!
//! ```
//! use parblock_crypto::{sha256, KeyRegistry, SignerId};
//!
//! let digest = sha256(b"abc");
//! assert_eq!(
//!     digest.to_hex(),
//!     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
//! );
//!
//! let registry = KeyRegistry::deterministic(4);
//! let sig = registry.sign(SignerId(2), b"hello");
//! assert!(registry.verify(SignerId(2), b"hello", &sig));
//! assert!(!registry.verify(SignerId(1), b"hello", &sig));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hmac;
mod merkle;
mod registry;
mod sha256;

pub use hmac::hmac_sha256;
pub use merkle::merkle_root;
pub use registry::{KeyRegistry, SecretKey, Signature, SignerId};
pub use sha256::{sha256, Sha256};

use parblock_types::wire::Wire;
use parblock_types::Hash32;

/// Hashes a [`Wire`]-encodable value (canonical bytes, then SHA-256).
///
/// # Examples
///
/// ```
/// use parblock_crypto::hash_wire;
/// use parblock_types::{AppId, ClientId, RwSet, Transaction};
///
/// let tx = Transaction::new(AppId(0), ClientId(1), 0, RwSet::default(), vec![]);
/// assert_eq!(hash_wire(&tx), hash_wire(&tx.clone()));
/// ```
pub fn hash_wire<T: Wire + ?Sized>(value: &T) -> Hash32 {
    sha256(&value.wire_bytes())
}
