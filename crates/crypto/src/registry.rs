//! A simulated signature scheme backed by a shared key registry.
//!
//! See the crate-level documentation for why HMAC-based signatures are an
//! acceptable substitution in this reproduction.

use std::fmt;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::hmac::hmac_sha256;

/// Identifies a signing principal (any node or client).
///
/// The mapping from protocol-level identities (`NodeId`, `ClientId`) to
/// `SignerId` is chosen by the embedding system; keeping it a plain integer
/// avoids coupling the crypto crate to role types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SignerId(pub u32);

impl fmt::Display for SignerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A secret signing key.
#[derive(Clone, PartialEq, Eq)]
pub struct SecretKey(pub [u8; 32]);

impl fmt::Debug for SecretKey {
    /// Redacted debug output: never leak key material into logs.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SecretKey(<redacted>)")
    }
}

/// A signature (MAC) over a message.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Signature(pub [u8; 32]);

impl fmt::Debug for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let hex: String = self.0[..4].iter().map(|b| format!("{b:02x}")).collect();
        write!(f, "Signature({hex}…)")
    }
}

/// An in-process registry of signing keys, shared by all simulated nodes.
///
/// Cloning is cheap (the key table is behind an `Arc`), so a single
/// registry can be handed to every node of a simulated cluster.
///
/// # Examples
///
/// ```
/// use parblock_crypto::{KeyRegistry, SignerId};
///
/// let reg = KeyRegistry::deterministic(2);
/// let sig = reg.sign(SignerId(0), b"msg");
/// assert!(reg.verify(SignerId(0), b"msg", &sig));
/// assert!(!reg.verify(SignerId(0), b"other", &sig));
/// ```
#[derive(Debug, Clone, Default)]
pub struct KeyRegistry {
    keys: Arc<RwLock<Vec<Option<SecretKey>>>>,
}

impl KeyRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a registry with `n` deterministic keys (signers `0..n`).
    ///
    /// Deterministic keys keep simulations reproducible; they are derived
    /// by hashing the signer index under a fixed domain tag.
    #[must_use]
    pub fn deterministic(n: u32) -> Self {
        let reg = Self::new();
        for i in 0..n {
            let digest = hmac_sha256(b"parblockchain-sim-key", &i.to_le_bytes());
            reg.register(SignerId(i), SecretKey(digest.0));
        }
        reg
    }

    /// Registers (or replaces) the key for `signer`.
    pub fn register(&self, signer: SignerId, key: SecretKey) {
        let mut keys = self.keys.write();
        let idx = signer.0 as usize;
        if keys.len() <= idx {
            keys.resize(idx + 1, None);
        }
        keys[idx] = Some(key);
    }

    /// Number of registered signers (highest index + 1).
    #[must_use]
    pub fn len(&self) -> usize {
        self.keys.read().len()
    }

    /// Returns `true` when no signer is registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.keys.read().iter().all(Option::is_none)
    }

    /// Signs `message` as `signer`.
    ///
    /// # Panics
    ///
    /// Panics if `signer` has no registered key — in the simulation this is
    /// a configuration bug, not a runtime condition.
    #[must_use]
    pub fn sign(&self, signer: SignerId, message: &[u8]) -> Signature {
        let keys = self.keys.read();
        let key = keys
            .get(signer.0 as usize)
            .and_then(Option::as_ref)
            .unwrap_or_else(|| panic!("no key registered for signer {signer}"));
        let mut tagged = Vec::with_capacity(message.len() + 4);
        tagged.extend_from_slice(&signer.0.to_le_bytes());
        tagged.extend_from_slice(message);
        Signature(hmac_sha256(&key.0, &tagged).0)
    }

    /// Verifies that `sig` is `signer`'s signature over `message`.
    ///
    /// Returns `false` (rather than erroring) for unknown signers, matching
    /// how a verifier treats an unknown public key.
    #[must_use]
    pub fn verify(&self, signer: SignerId, message: &[u8], sig: &Signature) -> bool {
        let keys = self.keys.read();
        let Some(key) = keys.get(signer.0 as usize).and_then(Option::as_ref) else {
            return false;
        };
        let mut tagged = Vec::with_capacity(message.len() + 4);
        tagged.extend_from_slice(&signer.0.to_le_bytes());
        tagged.extend_from_slice(message);
        let expected = hmac_sha256(&key.0, &tagged).0;
        // Constant-time comparison, as a verifier should.
        expected
            .iter()
            .zip(sig.0.iter())
            .fold(0u8, |acc, (a, b)| acc | (a ^ b))
            == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_verify_round_trip() {
        let reg = KeyRegistry::deterministic(3);
        for i in 0..3 {
            let sig = reg.sign(SignerId(i), b"payload");
            assert!(reg.verify(SignerId(i), b"payload", &sig));
        }
    }

    #[test]
    fn cross_signer_verification_fails() {
        let reg = KeyRegistry::deterministic(2);
        let sig = reg.sign(SignerId(0), b"m");
        assert!(!reg.verify(SignerId(1), b"m", &sig));
    }

    #[test]
    fn tampered_message_fails() {
        let reg = KeyRegistry::deterministic(1);
        let sig = reg.sign(SignerId(0), b"m");
        assert!(!reg.verify(SignerId(0), b"m2", &sig));
    }

    #[test]
    fn unknown_signer_verifies_false_not_panic() {
        let reg = KeyRegistry::deterministic(1);
        let sig = reg.sign(SignerId(0), b"m");
        assert!(!reg.verify(SignerId(9), b"m", &sig));
    }

    #[test]
    #[should_panic(expected = "no key registered")]
    fn signing_without_key_panics() {
        let reg = KeyRegistry::new();
        let _ = reg.sign(SignerId(0), b"m");
    }

    #[test]
    fn deterministic_registries_agree() {
        let a = KeyRegistry::deterministic(4);
        let b = KeyRegistry::deterministic(4);
        let sig = a.sign(SignerId(2), b"x");
        assert!(b.verify(SignerId(2), b"x", &sig));
    }

    #[test]
    fn debug_never_prints_key_material() {
        let key = SecretKey([7; 32]);
        assert_eq!(format!("{key:?}"), "SecretKey(<redacted>)");
    }

    #[test]
    fn len_and_is_empty() {
        let reg = KeyRegistry::new();
        assert!(reg.is_empty());
        reg.register(SignerId(5), SecretKey([1; 32]));
        assert!(!reg.is_empty());
        assert_eq!(reg.len(), 6);
    }
}
