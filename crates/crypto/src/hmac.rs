//! HMAC-SHA256 (RFC 2104).

use parblock_types::Hash32;

use crate::sha256::{sha256, Sha256};

const BLOCK_LEN: usize = 64;

/// Computes HMAC-SHA256 of `message` under `key`.
///
/// # Examples
///
/// ```
/// use parblock_crypto::hmac_sha256;
///
/// // RFC 4231 test case 2.
/// let mac = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
/// assert_eq!(
///     mac.to_hex(),
///     "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
/// );
/// ```
#[must_use]
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> Hash32 {
    // Keys longer than the block size are hashed first.
    let mut key_block = [0u8; BLOCK_LEN];
    if key.len() > BLOCK_LEN {
        key_block[..32].copy_from_slice(&sha256(key).0);
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }

    let mut inner = Sha256::new();
    let ipad: Vec<u8> = key_block.iter().map(|b| b ^ 0x36).collect();
    inner.update(&ipad);
    inner.update(message);
    let inner_digest = inner.finalize();

    let mut outer = Sha256::new();
    let opad: Vec<u8> = key_block.iter().map(|b| b ^ 0x5c).collect();
    outer.update(&opad);
    outer.update(&inner_digest.0);
    outer.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 4231 test vectors.
    #[test]
    fn rfc4231_vectors() {
        // Case 1.
        let mac = hmac_sha256(&[0x0b; 20], b"Hi There");
        assert_eq!(
            mac.to_hex(),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
        // Case 3: 50 bytes of 0xdd under 20-byte 0xaa key.
        let mac = hmac_sha256(&[0xaa; 20], &[0xdd; 50]);
        assert_eq!(
            mac.to_hex(),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
        // Case 6: key longer than the block size.
        let mac = hmac_sha256(
            &[0xaa; 131],
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            mac.to_hex(),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn different_keys_give_different_macs() {
        let m = b"message";
        assert_ne!(hmac_sha256(b"k1", m), hmac_sha256(b"k2", m));
    }

    #[test]
    fn different_messages_give_different_macs() {
        assert_ne!(hmac_sha256(b"k", b"a"), hmac_sha256(b"k", b"b"));
    }
}
