//! SHA-256, implemented from FIPS 180-4.

use parblock_types::Hash32;

/// Round constants: first 32 bits of the fractional parts of the cube
/// roots of the first 64 primes.
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Incremental SHA-256 hasher.
///
/// # Examples
///
/// ```
/// use parblock_crypto::Sha256;
///
/// let mut h = Sha256::new();
/// h.update(b"ab");
/// h.update(b"c");
/// assert_eq!(
///     h.finalize().to_hex(),
///     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
/// );
/// ```
#[derive(Debug, Clone)]
pub struct Sha256 {
    state: [u32; 8],
    /// Bytes not yet forming a full 64-byte chunk.
    buffer: Vec<u8>,
    /// Total message length in bytes.
    length: u64,
}

impl Sha256 {
    /// Creates a fresh hasher.
    #[must_use]
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            buffer: Vec::with_capacity(64),
            length: 0,
        }
    }

    /// Feeds bytes into the hash.
    pub fn update(&mut self, data: &[u8]) {
        self.length += data.len() as u64;
        self.buffer.extend_from_slice(data);
        let full_chunks = self.buffer.len() / 64;
        for i in 0..full_chunks {
            let chunk: [u8; 64] = self.buffer[i * 64..(i + 1) * 64].try_into().expect("64");
            compress(&mut self.state, &chunk);
        }
        self.buffer.drain(..full_chunks * 64);
    }

    /// Consumes the hasher and returns the digest.
    #[must_use]
    pub fn finalize(mut self) -> Hash32 {
        let bit_len = self.length * 8;
        // Padding: 0x80, zeros, then the 64-bit big-endian bit length.
        self.buffer.push(0x80);
        while self.buffer.len() % 64 != 56 {
            self.buffer.push(0);
        }
        self.buffer.extend_from_slice(&bit_len.to_be_bytes());
        for chunk in self.buffer.chunks_exact(64) {
            let chunk: [u8; 64] = chunk.try_into().expect("64");
            compress(&mut self.state, &chunk);
        }
        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..(i + 1) * 4].copy_from_slice(&word.to_be_bytes());
        }
        Hash32(out)
    }
}

impl Default for Sha256 {
    fn default() -> Self {
        Sha256::new()
    }
}

fn compress(state: &mut [u32; 8], chunk: &[u8; 64]) {
    let mut w = [0u32; 64];
    for (i, word) in w.iter_mut().take(16).enumerate() {
        *word = u32::from_be_bytes(chunk[i * 4..(i + 1) * 4].try_into().expect("4"));
    }
    for i in 16..64 {
        let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
        let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
        w[i] = w[i - 16]
            .wrapping_add(s0)
            .wrapping_add(w[i - 7])
            .wrapping_add(s1);
    }

    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
    for i in 0..64 {
        let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
        let ch = (e & f) ^ (!e & g);
        let temp1 = h
            .wrapping_add(s1)
            .wrapping_add(ch)
            .wrapping_add(K[i])
            .wrapping_add(w[i]);
        let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
        let maj = (a & b) ^ (a & c) ^ (b & c);
        let temp2 = s0.wrapping_add(maj);
        h = g;
        g = f;
        f = e;
        e = d.wrapping_add(temp1);
        d = c;
        c = b;
        b = a;
        a = temp1.wrapping_add(temp2);
    }

    state[0] = state[0].wrapping_add(a);
    state[1] = state[1].wrapping_add(b);
    state[2] = state[2].wrapping_add(c);
    state[3] = state[3].wrapping_add(d);
    state[4] = state[4].wrapping_add(e);
    state[5] = state[5].wrapping_add(f);
    state[6] = state[6].wrapping_add(g);
    state[7] = state[7].wrapping_add(h);
}

/// One-shot SHA-256 of `data`.
///
/// # Examples
///
/// ```
/// use parblock_crypto::sha256;
/// assert_eq!(
///     sha256(b"").to_hex(),
///     "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
/// );
/// ```
#[must_use]
pub fn sha256(data: &[u8]) -> Hash32 {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// NIST FIPS 180-4 / classic test vectors.
    #[test]
    fn nist_vectors() {
        let cases: &[(&[u8], &str)] = &[
            (
                b"",
                "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855",
            ),
            (
                b"abc",
                "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad",
            ),
            (
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
                "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1",
            ),
            (
                b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno\
ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
                "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1",
            ),
        ];
        for (input, want) in cases {
            assert_eq!(sha256(input).to_hex(), *want);
        }
    }

    #[test]
    fn million_a() {
        let mut h = Sha256::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            h.finalize().to_hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_equals_oneshot_at_all_split_points() {
        let data: Vec<u8> = (0..=255u8).cycle().take(300).collect();
        let want = sha256(&data);
        for split in [0, 1, 55, 56, 63, 64, 65, 128, 299, 300] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), want, "split at {split}");
        }
    }

    #[test]
    fn padding_boundary_lengths() {
        // Lengths around the 55/56/64-byte padding boundaries must all be
        // distinct and deterministic.
        let mut digests = std::collections::HashSet::new();
        for len in 50..70 {
            let data = vec![0xaa_u8; len];
            let d1 = sha256(&data);
            let d2 = sha256(&data);
            assert_eq!(d1, d2);
            assert!(digests.insert(d1.0), "collision at length {len}");
        }
    }
}
