//! Merkle root over a list of digests.
//!
//! Orderers batch transactions into blocks partly to "amortize the cost of
//! cryptography" (§III-A); committing to a block by the Merkle root of its
//! transaction hashes is the standard way to do that.

use parblock_types::Hash32;

use crate::sha256::Sha256;

/// Computes the Merkle root of `leaves`.
///
/// Odd nodes at any level are paired with themselves (Bitcoin-style). An
/// empty leaf list yields [`Hash32::ZERO`].
///
/// # Examples
///
/// ```
/// use parblock_crypto::{merkle_root, sha256};
/// use parblock_types::Hash32;
///
/// assert_eq!(merkle_root(&[]), Hash32::ZERO);
/// let a = sha256(b"a");
/// // A single leaf is its own root.
/// assert_eq!(merkle_root(&[a]), a);
/// ```
#[must_use]
pub fn merkle_root(leaves: &[Hash32]) -> Hash32 {
    if leaves.is_empty() {
        return Hash32::ZERO;
    }
    let mut level: Vec<Hash32> = leaves.to_vec();
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        for pair in level.chunks(2) {
            let left = pair[0];
            let right = *pair.get(1).unwrap_or(&pair[0]);
            let mut h = Sha256::new();
            h.update(&left.0);
            h.update(&right.0);
            next.push(h.finalize());
        }
        level = next;
    }
    level[0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::sha256;

    fn leaves(n: usize) -> Vec<Hash32> {
        (0..n).map(|i| sha256(&[i as u8])).collect()
    }

    #[test]
    fn empty_is_zero() {
        assert_eq!(merkle_root(&[]), Hash32::ZERO);
    }

    #[test]
    fn single_leaf_is_root() {
        let l = leaves(1);
        assert_eq!(merkle_root(&l), l[0]);
    }

    #[test]
    fn root_changes_with_any_leaf() {
        let base = leaves(8);
        let root = merkle_root(&base);
        for i in 0..8 {
            let mut tampered = base.clone();
            tampered[i] = sha256(b"tampered");
            assert_ne!(merkle_root(&tampered), root, "leaf {i}");
        }
    }

    #[test]
    fn root_depends_on_order() {
        let mut l = leaves(4);
        let root = merkle_root(&l);
        l.swap(0, 1);
        assert_ne!(merkle_root(&l), root);
    }

    #[test]
    fn odd_levels_handled() {
        for n in [2, 3, 5, 7, 9] {
            let l = leaves(n);
            // Deterministic and distinct from the (n-1)-leaf tree.
            assert_eq!(merkle_root(&l), merkle_root(&l));
            assert_ne!(merkle_root(&l), merkle_root(&l[..n - 1]));
        }
    }
}
