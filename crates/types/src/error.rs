//! Error types shared across the workspace.

use std::error::Error;
use std::fmt;

use crate::{AppId, ClientId, TxId};

/// Errors arising from malformed or unauthorized requests, detected by the
/// ordering service's access-control and validity checks (§III-A).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TypeError {
    /// The client is not authorized to submit requests for the application.
    Unauthorized {
        /// The offending client.
        client: ClientId,
        /// The application the client attempted to use.
        app: AppId,
    },
    /// A message signature failed verification.
    BadSignature {
        /// Human-readable description of the signed artifact.
        what: String,
    },
    /// A transaction was submitted twice (client timestamps enforce
    /// exactly-once semantics).
    DuplicateTransaction(TxId),
    /// The named application is not deployed.
    UnknownApp(AppId),
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::Unauthorized { client, app } => {
                write!(f, "client {client} is not authorized for application {app}")
            }
            TypeError::BadSignature { what } => write!(f, "invalid signature on {what}"),
            TypeError::DuplicateTransaction(id) => {
                write!(f, "duplicate transaction {id}")
            }
            TypeError::UnknownApp(app) => write!(f, "unknown application {app}"),
        }
    }
}

impl Error for TypeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = TypeError::Unauthorized {
            client: ClientId(1),
            app: AppId(2),
        };
        assert_eq!(e.to_string(), "client c1 is not authorized for application A2");
        let e = TypeError::DuplicateTransaction(TxId::new(ClientId(1), 5));
        assert!(e.to_string().contains("t1.5"));
        let e = TypeError::UnknownApp(AppId(9));
        assert!(e.to_string().contains("A9"));
        let e = TypeError::BadSignature { what: "block".into() };
        assert!(e.to_string().contains("block"));
    }

    #[test]
    fn is_std_error_send_sync() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<TypeError>();
    }
}
