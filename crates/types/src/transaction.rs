//! Transactions: a client request for one application, with a declared
//! read/write set and an opaque, contract-specific payload.

use serde::{Deserialize, Serialize};

use crate::wire::{self, Wire};
use crate::{AppId, ClientId, RwSet, TxId};

/// Microsecond timestamp relative to an arbitrary epoch.
pub type Timestamp = u64;

/// A transaction submitted by a client for a given application.
///
/// The payload is opaque to the ordering service: orderers only need the
/// application id (for access control / agent routing) and the read/write
/// set (for dependency-graph generation, §III-A). Executors decode the
/// payload with the application's smart contract.
///
/// # Examples
///
/// ```
/// use parblock_types::{AppId, ClientId, Key, RwSet, Transaction};
///
/// let rw = RwSet::new([Key(1001)], [Key(1001), Key(1002)]);
/// let tx = Transaction::new(AppId(0), ClientId(1), 42, rw, b"transfer".to_vec());
/// assert_eq!(tx.app(), AppId(0));
/// assert_eq!(tx.id().client_ts, 42);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Transaction {
    id: TxId,
    app: AppId,
    rw: RwSet,
    payload: Vec<u8>,
}

impl Transaction {
    /// Creates a transaction.
    ///
    /// `client_ts` is the client-local timestamp: the paper uses it to
    /// totally order each client's requests and for exactly-once semantics.
    #[must_use]
    pub fn new(
        app: AppId,
        client: ClientId,
        client_ts: u64,
        rw: RwSet,
        payload: Vec<u8>,
    ) -> Self {
        Transaction {
            id: TxId::new(client, client_ts),
            app,
            rw,
            payload,
        }
    }

    /// The globally unique transaction id.
    #[must_use]
    pub fn id(&self) -> TxId {
        self.id
    }

    /// The application this transaction belongs to.
    #[must_use]
    pub fn app(&self) -> AppId {
        self.app
    }

    /// The issuing client.
    #[must_use]
    pub fn client(&self) -> ClientId {
        self.id.client
    }

    /// The declared read/write set.
    #[must_use]
    pub fn rw_set(&self) -> &RwSet {
        &self.rw
    }

    /// The opaque contract payload.
    #[must_use]
    pub fn payload(&self) -> &[u8] {
        &self.payload
    }

    /// Approximate serialized size in bytes, used by the block cutter's
    /// maximal-block-size condition (§IV-B).
    #[must_use]
    pub fn encoded_len(&self) -> usize {
        self.wire_bytes().len()
    }

    /// Decodes a transaction from a [`Reader`](wire::Reader) positioned at
    /// a `Transaction::encode` boundary. Returns `None` on malformed
    /// input.
    #[must_use]
    pub fn decode(reader: &mut wire::Reader<'_>) -> Option<Self> {
        let client = ClientId(reader.u32()?);
        let client_ts = reader.u64()?;
        let app = AppId(u16::try_from(reader.u64()?).ok()?);
        let reads = reader.key_set()?;
        let writes = reader.key_set()?;
        let payload = reader.bytes()?.to_vec();
        Some(Transaction {
            id: TxId::new(client, client_ts),
            app,
            rw: RwSet::new(reads, writes),
            payload,
        })
    }

    /// Decodes a transaction from exactly these bytes.
    #[must_use]
    pub fn from_wire(bytes: &[u8]) -> Option<Self> {
        let mut reader = wire::Reader::new(bytes);
        let tx = Self::decode(&mut reader)?;
        reader.is_exhausted().then_some(tx)
    }
}

impl Wire for Transaction {
    fn encode(&self, out: &mut Vec<u8>) {
        self.id.client.0.encode(out);
        self.id.client_ts.encode(out);
        u64::from(self.app.0).encode(out);
        wire::encode_key_set(self.rw.reads(), out);
        wire::encode_key_set(self.rw.writes(), out);
        self.payload.encode(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Key;

    fn sample() -> Transaction {
        Transaction::new(
            AppId(2),
            ClientId(9),
            100,
            RwSet::new([Key(1)], [Key(2)]),
            vec![0xde, 0xad],
        )
    }

    #[test]
    fn accessors() {
        let tx = sample();
        assert_eq!(tx.app(), AppId(2));
        assert_eq!(tx.client(), ClientId(9));
        assert_eq!(tx.id(), TxId::new(ClientId(9), 100));
        assert_eq!(tx.payload(), &[0xde, 0xad]);
        assert!(tx.rw_set().reads().contains(&Key(1)));
    }

    #[test]
    fn wire_encoding_is_deterministic_and_injective_on_samples() {
        let a = sample().wire_bytes();
        let b = sample().wire_bytes();
        assert_eq!(a, b);

        let different = Transaction::new(
            AppId(2),
            ClientId(9),
            101, // only the timestamp differs
            RwSet::new([Key(1)], [Key(2)]),
            vec![0xde, 0xad],
        );
        assert_ne!(a, different.wire_bytes());
    }

    #[test]
    fn wire_round_trip() {
        let tx = sample();
        assert_eq!(Transaction::from_wire(&tx.wire_bytes()), Some(tx));
    }

    #[test]
    fn from_wire_rejects_truncation_and_trailing_garbage() {
        let bytes = sample().wire_bytes();
        for cut in [0, 1, bytes.len() / 2, bytes.len() - 1] {
            assert_eq!(Transaction::from_wire(&bytes[..cut]), None, "cut {cut}");
        }
        let mut extended = bytes.clone();
        extended.push(0);
        assert_eq!(Transaction::from_wire(&extended), None);
    }

    #[test]
    fn decode_reads_consecutive_transactions() {
        use crate::wire::Reader;
        let a = sample();
        let b = Transaction::new(AppId(1), ClientId(2), 7, RwSet::default(), vec![1]);
        let mut buf = Vec::new();
        a.encode(&mut buf);
        b.encode(&mut buf);
        let mut reader = Reader::new(&buf);
        assert_eq!(Transaction::decode(&mut reader), Some(a));
        assert_eq!(Transaction::decode(&mut reader), Some(b));
        assert!(reader.is_exhausted());
    }

    #[test]
    fn encoded_len_grows_with_payload() {
        let small = sample();
        let big = Transaction::new(
            AppId(2),
            ClientId(9),
            100,
            RwSet::new([Key(1)], [Key(2)]),
            vec![0; 1024],
        );
        assert!(big.encoded_len() > small.encoded_len());
    }
}
