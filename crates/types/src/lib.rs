//! Core data types for the ParBlockchain (OXII) reproduction.
//!
//! This crate defines the vocabulary shared by every other crate in the
//! workspace: identifiers for nodes, applications and clients; transactions
//! with declared read/write sets (§III-A of the paper); blocks; and the
//! deterministic wire encoding used for hashing and signing.
//!
//! # Examples
//!
//! ```
//! use parblock_types::{AppId, ClientId, Key, RwSet, Transaction};
//!
//! let rw = RwSet::new([Key(1001)], [Key(1001), Key(1002)]);
//! let tx = Transaction::new(AppId(0), ClientId(7), 1, rw, vec![1, 2, 3]);
//! assert!(tx.rw_set().conflicts_with(tx.rw_set()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod block;
mod clock;
mod config;
mod error;
mod ids;
mod rwset;
mod transaction;
mod value;
pub mod wire;

pub use block::{Block, BlockHeader, Hash32};
pub use clock::Clock;
pub use config::{
    ArrivalProcess, BlockCutConfig, CommitPolicy, DurabilityConfig, ExecutionCosts, ExecutionMode,
    SystemConfig,
};
pub use error::TypeError;
pub use ids::{AppId, BlockNumber, ClientId, NodeId, Role, SeqNo, TxId};
pub use rwset::{Key, RwSet};
pub use transaction::{Timestamp, Transaction};
pub use value::Value;
