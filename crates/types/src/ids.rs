//! Identifier newtypes (C-NEWTYPE): distinct types for node, client,
//! application, transaction and block identities so they cannot be confused.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identity of a peer in the network (orderer, executor, or client host).
///
/// # Examples
///
/// ```
/// use parblock_types::NodeId;
/// let n = NodeId(3);
/// assert_eq!(n.to_string(), "n3");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identity of a client issuing transactions.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ClientId(pub u32);

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Identity of a distributed application (smart contract) deployed on the
/// blockchain. The paper denotes applications `A1..An`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct AppId(pub u16);

impl fmt::Display for AppId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "A{}", self.0)
    }
}

/// Block sequence number; block `n` links to block `n - 1` by hash.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct BlockNumber(pub u64);

impl BlockNumber {
    /// The genesis block number.
    pub const GENESIS: BlockNumber = BlockNumber(0);

    /// The next block number.
    #[must_use]
    pub fn next(self) -> BlockNumber {
        BlockNumber(self.0 + 1)
    }

    /// The previous block number, or `None` for the genesis block.
    #[must_use]
    pub fn prev(self) -> Option<BlockNumber> {
        self.0.checked_sub(1).map(BlockNumber)
    }
}

impl fmt::Display for BlockNumber {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Globally unique transaction identifier.
///
/// Composed of the issuing client and that client's local timestamp, which
/// the paper uses "to totally order the requests of each client and to
/// ensure exactly-once semantics" (§IV-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TxId {
    /// The client that issued the transaction.
    pub client: ClientId,
    /// The client-local timestamp (monotonically increasing per client).
    pub client_ts: u64,
}

impl TxId {
    /// Creates a transaction id from its parts.
    #[must_use]
    pub fn new(client: ClientId, client_ts: u64) -> Self {
        TxId { client, client_ts }
    }
}

impl fmt::Display for TxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}.{}", self.client.0, self.client_ts)
    }
}

/// Position of a transaction inside a block; doubles as the timestamp
/// `ts(T)` of §III-A (earlier position ⇒ smaller timestamp).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct SeqNo(pub u32);

impl fmt::Display for SeqNo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

/// The role a node plays in the OXII paradigm (§III).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Role {
    /// Sends operations to be executed by the blockchain.
    Client,
    /// Agrees on a total order of all transactions and builds blocks.
    Orderer,
    /// Validates and executes transactions (an agent for ≥1 application).
    Executor,
    /// An executor-side peer that is an agent for no application in the
    /// current workload; it only applies committed state (Fig 7d).
    NonExecutor,
}

impl fmt::Display for Role {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Role::Client => "client",
            Role::Orderer => "orderer",
            Role::Executor => "executor",
            Role::NonExecutor => "non-executor",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(NodeId(1).to_string(), "n1");
        assert_eq!(ClientId(2).to_string(), "c2");
        assert_eq!(AppId(3).to_string(), "A3");
        assert_eq!(BlockNumber(4).to_string(), "#4");
        assert_eq!(TxId::new(ClientId(1), 9).to_string(), "t1.9");
        assert_eq!(SeqNo(5).to_string(), "@5");
        assert_eq!(Role::Orderer.to_string(), "orderer");
    }

    #[test]
    fn block_number_navigation() {
        assert_eq!(BlockNumber::GENESIS.prev(), None);
        assert_eq!(BlockNumber(1).prev(), Some(BlockNumber(0)));
        assert_eq!(BlockNumber(1).next(), BlockNumber(2));
    }

    #[test]
    fn tx_ids_order_by_client_then_ts() {
        let a = TxId::new(ClientId(1), 5);
        let b = TxId::new(ClientId(1), 6);
        let c = TxId::new(ClientId(2), 0);
        assert!(a < b && b < c);
    }

    #[test]
    fn ids_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NodeId>();
        assert_send_sync::<TxId>();
        assert_send_sync::<Role>();
    }
}
