//! Values stored in the blockchain state.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::wire::{self, Wire};

/// A value stored under a [`Key`](crate::Key) in the blockchain state.
///
/// The accounting application of §V stores integer balances; other
/// contracts may store text or raw bytes.
///
/// # Examples
///
/// ```
/// use parblock_types::Value;
///
/// let balance = Value::Int(100);
/// assert_eq!(balance.as_int(), Some(100));
/// assert_eq!(Value::Text("ok".into()).as_int(), None);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Value {
    /// The absent / deleted value.
    #[default]
    Unit,
    /// A signed integer (account balances, counters).
    Int(i64),
    /// A UTF-8 string.
    Text(String),
    /// Raw bytes.
    Bytes(Vec<u8>),
}

impl Value {
    /// Returns the integer content, if this is an [`Value::Int`].
    #[must_use]
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the text content, if this is a [`Value::Text`].
    #[must_use]
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the byte content, if this is a [`Value::Bytes`].
    #[must_use]
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            Value::Bytes(b) => Some(b),
            _ => None,
        }
    }

    /// Returns `true` for [`Value::Unit`].
    #[must_use]
    pub fn is_unit(&self) -> bool {
        matches!(self, Value::Unit)
    }

    /// Decodes a value from a [`Reader`](wire::Reader) positioned at a
    /// `Value::encode` boundary. Returns `None` on malformed input
    /// (unknown tag, truncation, invalid UTF-8).
    #[must_use]
    pub fn decode(reader: &mut wire::Reader<'_>) -> Option<Self> {
        match reader.u8()? {
            0 => Some(Value::Unit),
            1 => Some(Value::Int(reader.i64()?)),
            2 => {
                let bytes = reader.bytes()?;
                Some(Value::Text(String::from_utf8(bytes.to_vec()).ok()?))
            }
            3 => Some(Value::Bytes(reader.bytes()?.to_vec())),
            _ => None,
        }
    }
}

impl Wire for Value {
    /// Tagged encoding: `0` unit, `1` int, `2` text, `3` bytes. Durable
    /// stores (WAL records, state checkpoints) rely on this round-tripping
    /// through [`Value::decode`].
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Value::Unit => 0u8.encode(out),
            Value::Int(i) => {
                1u8.encode(out);
                i.encode(out);
            }
            Value::Text(s) => {
                2u8.encode(out);
                s.as_str().encode(out);
            }
            Value::Bytes(b) => {
                3u8.encode(out);
                b.encode(out);
            }
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Text(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Text(s)
    }
}

impl From<Vec<u8>> for Value {
    fn from(b: Vec<u8>) -> Self {
        Value::Bytes(b)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Unit => f.write_str("()"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Text(s) => write!(f, "{s:?}"),
            Value::Bytes(b) => write!(f, "0x{}", hex(b)),
        }
    }
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(5).as_int(), Some(5));
        assert_eq!(Value::from("hi").as_text(), Some("hi"));
        assert_eq!(Value::from(vec![1u8]).as_bytes(), Some(&[1u8][..]));
        assert!(Value::Unit.is_unit());
        assert!(Value::default().is_unit());
    }

    #[test]
    fn display_is_never_empty() {
        for v in [
            Value::Unit,
            Value::Int(-3),
            Value::from("x"),
            Value::from(vec![0xab_u8]),
        ] {
            assert!(!v.to_string().is_empty());
        }
        assert_eq!(Value::from(vec![0xab_u8]).to_string(), "0xab");
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(7i64), Value::Int(7));
        assert_eq!(Value::from(String::from("s")), Value::Text("s".into()));
    }

    #[test]
    fn wire_round_trip_all_variants() {
        for v in [
            Value::Unit,
            Value::Int(i64::MIN),
            Value::Int(-1),
            Value::Text(String::new()),
            Value::Text("héllo".into()),
            Value::Bytes(vec![]),
            Value::Bytes(vec![0xff; 100]),
        ] {
            let bytes = v.wire_bytes();
            let mut reader = crate::wire::Reader::new(&bytes);
            assert_eq!(Value::decode(&mut reader), Some(v.clone()), "{v:?}");
            assert!(reader.is_exhausted(), "{v:?} left trailing bytes");
        }
    }

    #[test]
    fn decode_rejects_unknown_tag_and_truncation() {
        let mut reader = crate::wire::Reader::new(&[9]);
        assert_eq!(Value::decode(&mut reader), None);
        let bytes = Value::Int(7).wire_bytes();
        for cut in 0..bytes.len() {
            let mut reader = crate::wire::Reader::new(&bytes[..cut]);
            assert_eq!(Value::decode(&mut reader), None, "cut {cut}");
        }
        // Invalid UTF-8 under the text tag.
        let mut bad = vec![2u8];
        vec![0xffu8, 0xfe].encode(&mut bad);
        let mut reader = crate::wire::Reader::new(&bad);
        assert_eq!(Value::decode(&mut reader), None);
    }
}
