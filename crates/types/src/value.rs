//! Values stored in the blockchain state.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A value stored under a [`Key`](crate::Key) in the blockchain state.
///
/// The accounting application of §V stores integer balances; other
/// contracts may store text or raw bytes.
///
/// # Examples
///
/// ```
/// use parblock_types::Value;
///
/// let balance = Value::Int(100);
/// assert_eq!(balance.as_int(), Some(100));
/// assert_eq!(Value::Text("ok".into()).as_int(), None);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Value {
    /// The absent / deleted value.
    #[default]
    Unit,
    /// A signed integer (account balances, counters).
    Int(i64),
    /// A UTF-8 string.
    Text(String),
    /// Raw bytes.
    Bytes(Vec<u8>),
}

impl Value {
    /// Returns the integer content, if this is an [`Value::Int`].
    #[must_use]
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the text content, if this is a [`Value::Text`].
    #[must_use]
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the byte content, if this is a [`Value::Bytes`].
    #[must_use]
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            Value::Bytes(b) => Some(b),
            _ => None,
        }
    }

    /// Returns `true` for [`Value::Unit`].
    #[must_use]
    pub fn is_unit(&self) -> bool {
        matches!(self, Value::Unit)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Text(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Text(s)
    }
}

impl From<Vec<u8>> for Value {
    fn from(b: Vec<u8>) -> Self {
        Value::Bytes(b)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Unit => f.write_str("()"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Text(s) => write!(f, "{s:?}"),
            Value::Bytes(b) => write!(f, "0x{}", hex(b)),
        }
    }
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(5).as_int(), Some(5));
        assert_eq!(Value::from("hi").as_text(), Some("hi"));
        assert_eq!(Value::from(vec![1u8]).as_bytes(), Some(&[1u8][..]));
        assert!(Value::Unit.is_unit());
        assert!(Value::default().is_unit());
    }

    #[test]
    fn display_is_never_empty() {
        for v in [
            Value::Unit,
            Value::Int(-3),
            Value::from("x"),
            Value::from(vec![0xab_u8]),
        ] {
            assert!(!v.to_string().is_empty());
        }
        assert_eq!(Value::from(vec![0xab_u8]).to_string(), "0xab");
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(7i64), Value::Int(7));
        assert_eq!(Value::from(String::from("s")), Value::Text("s".into()));
    }
}
