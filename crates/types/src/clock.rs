//! Injectable time source (DESIGN.md §10).
//!
//! Every component that reads time — the network delivery engine, the
//! orderer's batch/cut/consensus timers, the executor's stall tracking,
//! the metrics sink — takes its notion of *now* from a [`Clock`] instead
//! of calling [`Instant::now`] directly. A wall clock reproduces the
//! free-running behaviour; a *simulated* clock is advanced explicitly by
//! the deterministic scheduler, so an entire cluster run becomes a pure
//! function of its seed.
//!
//! The simulated clock still hands out [`Instant`]s: it captures one
//! real instant at creation and returns `base + virtual_offset`. All
//! existing `Duration` arithmetic (`duration_since`, deadline
//! comparisons) works unchanged, and every *duration* derived from a
//! simulated clock is bit-deterministic even though the absolute base
//! differs between processes.
//!
//! # Examples
//!
//! ```
//! use std::time::Duration;
//! use parblock_types::Clock;
//!
//! let clock = Clock::simulated();
//! let t0 = clock.now();
//! clock.advance(Duration::from_millis(5));
//! assert_eq!(clock.now().duration_since(t0), Duration::from_millis(5));
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A shared virtual-time core: a fixed base instant plus an explicitly
/// advanced offset.
#[derive(Debug)]
struct VirtualCore {
    base: Instant,
    offset_ns: AtomicU64,
}

#[derive(Debug, Clone)]
enum ClockInner {
    Wall,
    Virtual(Arc<VirtualCore>),
}

/// A time source: either the operating-system wall clock or a simulated
/// clock advanced by a deterministic scheduler.
///
/// Cloning is cheap and clones share the same virtual time.
#[derive(Debug, Clone)]
pub struct Clock {
    inner: ClockInner,
}

impl Default for Clock {
    /// The wall clock.
    fn default() -> Self {
        Clock::wall()
    }
}

impl Clock {
    /// The operating-system wall clock ([`Instant::now`]).
    #[must_use]
    pub fn wall() -> Self {
        Clock {
            inner: ClockInner::Wall,
        }
    }

    /// A simulated clock starting at virtual time zero. Time only moves
    /// when [`Clock::advance`] (or [`Clock::advance_to`]) is called.
    #[must_use]
    pub fn simulated() -> Self {
        Clock {
            inner: ClockInner::Virtual(Arc::new(VirtualCore {
                base: Instant::now(),
                offset_ns: AtomicU64::new(0),
            })),
        }
    }

    /// Whether this is a simulated clock.
    #[must_use]
    pub fn is_simulated(&self) -> bool {
        matches!(self.inner, ClockInner::Virtual(_))
    }

    /// The current time.
    #[must_use]
    pub fn now(&self) -> Instant {
        match &self.inner {
            ClockInner::Wall => Instant::now(),
            ClockInner::Virtual(core) => {
                core.base + Duration::from_nanos(core.offset_ns.load(Ordering::Acquire))
            }
        }
    }

    /// Virtual time elapsed since the clock was created (wall clocks
    /// return `None` — they have no fixed origin).
    #[must_use]
    pub fn elapsed(&self) -> Option<Duration> {
        match &self.inner {
            ClockInner::Wall => None,
            ClockInner::Virtual(core) => {
                Some(Duration::from_nanos(core.offset_ns.load(Ordering::Acquire)))
            }
        }
    }

    /// Nanoseconds elapsed from `origin` to [`Clock::now`], saturating
    /// at zero when `origin` is in the future (and at `u64::MAX` far
    /// past it). This is the timestamp-as-offset primitive the tracer
    /// uses: offsets from a fixed origin are bit-deterministic under a
    /// simulated clock even though the absolute base instant differs
    /// between processes.
    #[must_use]
    pub fn ns_since(&self, origin: Instant) -> u64 {
        let elapsed = self.now().saturating_duration_since(origin);
        u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX)
    }

    /// Advances a simulated clock by `delta`.
    ///
    /// # Panics
    ///
    /// Panics on a wall clock — advancing real time is a scheduler bug.
    pub fn advance(&self, delta: Duration) {
        match &self.inner {
            ClockInner::Wall => panic!("cannot advance the wall clock"),
            ClockInner::Virtual(core) => {
                let ns = u64::try_from(delta.as_nanos()).expect("virtual time fits u64 nanos");
                core.offset_ns.fetch_add(ns, Ordering::AcqRel);
            }
        }
    }

    /// Advances a simulated clock so that [`Clock::now`] returns `target`
    /// (a no-op when `target` is not in the future).
    ///
    /// # Panics
    ///
    /// Panics on a wall clock, like [`Clock::advance`].
    pub fn advance_to(&self, target: Instant) {
        let now = self.now();
        if target > now {
            self.advance(target.duration_since(now));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_tracks_real_time() {
        let clock = Clock::wall();
        assert!(!clock.is_simulated());
        assert_eq!(clock.elapsed(), None);
        let a = clock.now();
        let b = clock.now();
        assert!(b >= a);
    }

    #[test]
    fn simulated_clock_only_moves_on_advance() {
        let clock = Clock::simulated();
        assert!(clock.is_simulated());
        let t0 = clock.now();
        assert_eq!(clock.now(), t0, "virtual time is frozen");
        clock.advance(Duration::from_micros(250));
        assert_eq!(clock.now() - t0, Duration::from_micros(250));
        assert_eq!(clock.elapsed(), Some(Duration::from_micros(250)));
    }

    #[test]
    fn clones_share_virtual_time() {
        let clock = Clock::simulated();
        let witness = clock.clone();
        clock.advance(Duration::from_millis(3));
        assert_eq!(witness.elapsed(), Some(Duration::from_millis(3)));
    }

    #[test]
    fn advance_to_is_monotone() {
        let clock = Clock::simulated();
        let target = clock.now() + Duration::from_millis(2);
        clock.advance_to(target);
        assert_eq!(clock.now(), target);
        // Past targets do not rewind.
        clock.advance_to(target - Duration::from_millis(1));
        assert_eq!(clock.now(), target);
    }

    #[test]
    #[should_panic(expected = "cannot advance the wall clock")]
    fn advancing_wall_clock_panics() {
        Clock::wall().advance(Duration::from_secs(1));
    }

    #[test]
    fn ns_since_saturates_and_tracks_virtual_offsets() {
        let clock = Clock::simulated();
        let origin = clock.now();
        assert_eq!(clock.ns_since(origin), 0);
        clock.advance(Duration::from_micros(7));
        assert_eq!(clock.ns_since(origin), 7_000);
        // A future origin saturates to zero instead of panicking.
        let future = clock.now() + Duration::from_secs(1);
        assert_eq!(clock.ns_since(future), 0);
    }
}
