//! A tiny deterministic binary encoding.
//!
//! Hashing and signing need a canonical byte representation of transactions
//! and block headers. Rather than pull in a serialization framework, this
//! module provides a little-endian, length-prefixed encoding whose output is
//! a pure function of the value — sufficient for cryptographic commitments
//! inside a single build of the system.
//!
//! # Examples
//!
//! ```
//! use parblock_types::wire::Wire;
//!
//! let mut buf = Vec::new();
//! 7u64.encode(&mut buf);
//! assert_eq!(buf.len(), 8);
//! ```

use std::collections::BTreeSet;

use crate::Key;

/// Types with a canonical byte encoding used for hashing and signing.
pub trait Wire {
    /// Appends the canonical encoding of `self` to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Convenience: encodes into a fresh buffer.
    fn wire_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }
}

impl Wire for u8 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(*self);
    }
}

impl Wire for u32 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
}

impl Wire for u64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
}

impl Wire for i64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
}

impl Wire for [u8] {
    /// Length-prefixed byte string.
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode(out);
        out.extend_from_slice(self);
    }
}

impl Wire for Vec<u8> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.as_slice().encode(out);
    }
}

impl Wire for str {
    fn encode(&self, out: &mut Vec<u8>) {
        self.as_bytes().encode(out);
    }
}

/// Encodes a slice of `Wire` values with a length prefix.
pub fn encode_slice<T: Wire>(items: &[T], out: &mut Vec<u8>) {
    (items.len() as u64).encode(out);
    for item in items {
        item.encode(out);
    }
}

/// Encodes an ordered set of keys (length-prefixed, ascending order — the
/// `BTreeSet` iteration order makes this canonical).
pub fn encode_key_set(set: &BTreeSet<Key>, out: &mut Vec<u8>) {
    (set.len() as u64).encode(out);
    for key in set {
        key.0.encode(out);
    }
}

/// A cursor for decoding [`Wire`]-encoded bytes.
///
/// Every read returns `None` on truncated input rather than panicking, so
/// malformed network payloads surface as decode failures.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader over `bytes`.
    #[must_use]
    pub fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    /// Bytes remaining to read.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Returns `true` when all input has been consumed.
    #[must_use]
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let slice = self.bytes.get(self.pos..self.pos + n)?;
        self.pos += n;
        Some(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Option<u32> {
        self.take(4).map(|s| u32::from_le_bytes(s.try_into().expect("4")))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Option<u64> {
        self.take(8).map(|s| u64::from_le_bytes(s.try_into().expect("8")))
    }

    /// Reads a little-endian `i64`.
    pub fn i64(&mut self) -> Option<i64> {
        self.take(8).map(|s| i64::from_le_bytes(s.try_into().expect("8")))
    }

    /// Reads a length-prefixed byte string (as written by `[u8]::encode`).
    pub fn bytes(&mut self) -> Option<&'a [u8]> {
        let len = self.u64()?;
        let len = usize::try_from(len).ok()?;
        if len > self.remaining() {
            return None;
        }
        self.take(len)
    }

    /// Reads a key set written by [`encode_key_set`].
    pub fn key_set(&mut self) -> Option<BTreeSet<Key>> {
        let len = self.u64()?;
        let len = usize::try_from(len).ok()?;
        if len > self.remaining() / 8 {
            return None; // each key is 8 bytes; cheap bound check
        }
        let mut set = BTreeSet::new();
        for _ in 0..len {
            set.insert(Key(self.u64()?));
        }
        Some(set)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip_shape() {
        let mut out = Vec::new();
        1u8.encode(&mut out);
        2u32.encode(&mut out);
        3u64.encode(&mut out);
        (-4i64).encode(&mut out);
        assert_eq!(out.len(), 1 + 4 + 8 + 8);
    }

    #[test]
    fn byte_strings_are_length_prefixed() {
        let bytes = vec![9u8, 8, 7];
        let enc = bytes.wire_bytes();
        assert_eq!(&enc[..8], &3u64.to_le_bytes());
        assert_eq!(&enc[8..], &[9, 8, 7]);
    }

    #[test]
    fn length_prefix_prevents_concat_ambiguity() {
        // ("a", "bc") must encode differently from ("ab", "c").
        let mut one = Vec::new();
        "a".encode(&mut one);
        "bc".encode(&mut one);
        let mut two = Vec::new();
        "ab".encode(&mut two);
        "c".encode(&mut two);
        assert_ne!(one, two);
    }

    #[test]
    fn key_sets_are_canonical() {
        let a: BTreeSet<Key> = [Key(3), Key(1), Key(2)].into_iter().collect();
        let b: BTreeSet<Key> = [Key(1), Key(2), Key(3)].into_iter().collect();
        let mut ea = Vec::new();
        let mut eb = Vec::new();
        encode_key_set(&a, &mut ea);
        encode_key_set(&b, &mut eb);
        assert_eq!(ea, eb);
    }

    #[test]
    fn slices_of_wire_types_encode() {
        let xs: Vec<u64> = vec![1, 2, 3];
        let mut enc = Vec::new();
        encode_slice(&xs, &mut enc);
        assert_eq!(enc.len(), 8 + 3 * 8);
    }
}
