//! Blocks: batches of ordered transactions linked into a hash chain.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::wire::Wire;
use crate::{AppId, BlockNumber, SeqNo, Transaction};

/// A 256-bit digest (output of the crypto crate's SHA-256).
///
/// Defined here so that block headers can carry the previous-block hash
/// without depending on the crypto crate.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default)]
pub struct Hash32(pub [u8; 32]);

impl Hash32 {
    /// The all-zero hash, used as the previous-hash of the genesis block.
    pub const ZERO: Hash32 = Hash32([0; 32]);

    /// Hex representation of the digest.
    #[must_use]
    pub fn to_hex(&self) -> String {
        self.0.iter().map(|b| format!("{b:02x}")).collect()
    }
}

impl fmt::Debug for Hash32 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Hash32({}…)", &self.to_hex()[..8])
    }
}

impl fmt::Display for Hash32 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl Wire for Hash32 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.0);
    }
}

/// Header of a block: sequence number and the hash link `h = H(B′)` to the
/// previous block (§IV-B, NEWBLOCK message).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockHeader {
    /// Sequence number `n` of the block.
    pub number: BlockNumber,
    /// `H(B′)` where `B′` is block `n − 1`; zero for genesis.
    pub prev_hash: Hash32,
}

impl Wire for BlockHeader {
    fn encode(&self, out: &mut Vec<u8>) {
        self.number.0.encode(out);
        self.prev_hash.encode(out);
    }
}

/// A block: an ordered batch of transactions.
///
/// The position of a transaction within the block is its timestamp `ts(T)`
/// for dependency purposes: if `Ti` appears before `Tj` then
/// `ts(Ti) < ts(Tj)` (§III-A).
///
/// # Examples
///
/// ```
/// use parblock_types::{AppId, Block, BlockNumber, ClientId, Hash32, RwSet, Transaction};
///
/// let tx = Transaction::new(AppId(0), ClientId(1), 0, RwSet::default(), vec![]);
/// let block = Block::new(BlockNumber(1), Hash32::ZERO, vec![tx]);
/// assert_eq!(block.len(), 1);
/// assert_eq!(block.apps(), vec![AppId(0)]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Block {
    header: BlockHeader,
    txs: Vec<Transaction>,
}

impl Block {
    /// Creates a block from ordered transactions.
    #[must_use]
    pub fn new(number: BlockNumber, prev_hash: Hash32, txs: Vec<Transaction>) -> Self {
        Block {
            header: BlockHeader { number, prev_hash },
            txs,
        }
    }

    /// The block header.
    #[must_use]
    pub fn header(&self) -> &BlockHeader {
        &self.header
    }

    /// The block sequence number.
    #[must_use]
    pub fn number(&self) -> BlockNumber {
        self.header.number
    }

    /// The transactions in block order.
    #[must_use]
    pub fn transactions(&self) -> &[Transaction] {
        &self.txs
    }

    /// The transaction at in-block position `seq`.
    #[must_use]
    pub fn tx(&self, seq: SeqNo) -> Option<&Transaction> {
        self.txs.get(seq.0 as usize)
    }

    /// Number of transactions in the block.
    #[must_use]
    pub fn len(&self) -> usize {
        self.txs.len()
    }

    /// Returns `true` when the block has no transactions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.txs.is_empty()
    }

    /// Iterates transactions paired with their in-block sequence number
    /// (the timestamp `ts(T)` of §III-A).
    pub fn iter_seq(&self) -> impl Iterator<Item = (SeqNo, &Transaction)> {
        self.txs
            .iter()
            .enumerate()
            .map(|(i, tx)| (SeqNo(i as u32), tx))
    }

    /// The set `A` of applications that have transactions in the block,
    /// deduplicated, in first-appearance order (carried in NEWBLOCK).
    #[must_use]
    pub fn apps(&self) -> Vec<AppId> {
        let mut seen = Vec::new();
        for tx in &self.txs {
            if !seen.contains(&tx.app()) {
                seen.push(tx.app());
            }
        }
        seen
    }

    /// Decodes a block from a [`Reader`](crate::wire::Reader) positioned
    /// at a `Block::encode` boundary. Returns `None` on malformed input.
    /// Durable block stores round-trip sealed blocks through this.
    #[must_use]
    pub fn decode(reader: &mut crate::wire::Reader<'_>) -> Option<Self> {
        let number = BlockNumber(reader.u64()?);
        let mut prev_hash = [0u8; 32];
        for byte in &mut prev_hash {
            *byte = reader.u8()?;
        }
        let count = usize::try_from(reader.u64()?).ok()?;
        // Each transaction occupies ≥ 4 bytes; cheap bound against
        // hostile length prefixes.
        if count > reader.remaining() / 4 {
            return None;
        }
        let mut txs = Vec::with_capacity(count);
        for _ in 0..count {
            txs.push(Transaction::decode(reader)?);
        }
        Some(Block::new(number, Hash32(prev_hash), txs))
    }

    /// Decodes a block from exactly these bytes.
    #[must_use]
    pub fn from_wire(bytes: &[u8]) -> Option<Self> {
        let mut reader = crate::wire::Reader::new(bytes);
        let block = Self::decode(&mut reader)?;
        reader.is_exhausted().then_some(block)
    }
}

impl Wire for Block {
    fn encode(&self, out: &mut Vec<u8>) {
        self.header.encode(out);
        (self.txs.len() as u64).encode(out);
        for tx in &self.txs {
            tx.encode(out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClientId, RwSet};

    fn tx(app: u16, ts: u64) -> Transaction {
        Transaction::new(AppId(app), ClientId(1), ts, RwSet::default(), vec![])
    }

    fn sample() -> Block {
        Block::new(BlockNumber(3), Hash32::ZERO, vec![tx(1, 0), tx(2, 1), tx(1, 2)])
    }

    #[test]
    fn accessors_and_seq_iteration() {
        let b = sample();
        assert_eq!(b.number(), BlockNumber(3));
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        assert_eq!(b.tx(SeqNo(1)).unwrap().app(), AppId(2));
        assert!(b.tx(SeqNo(9)).is_none());
        let seqs: Vec<u32> = b.iter_seq().map(|(s, _)| s.0).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
    }

    #[test]
    fn apps_deduplicated_in_order() {
        assert_eq!(sample().apps(), vec![AppId(1), AppId(2)]);
    }

    #[test]
    fn hash32_display_and_debug() {
        let h = Hash32([0xab; 32]);
        assert_eq!(h.to_hex().len(), 64);
        assert!(format!("{h:?}").contains("abababab"));
        assert_eq!(Hash32::ZERO.to_hex(), "0".repeat(64));
    }

    #[test]
    fn wire_round_trip() {
        let b = sample();
        assert_eq!(Block::from_wire(&b.wire_bytes()), Some(b));
        let empty = Block::new(BlockNumber(1), Hash32([7; 32]), vec![]);
        assert_eq!(Block::from_wire(&empty.wire_bytes()), Some(empty));
    }

    #[test]
    fn from_wire_rejects_truncation_and_trailing_garbage() {
        let bytes = sample().wire_bytes();
        for cut in [0, 1, 8, bytes.len() / 2, bytes.len() - 1] {
            assert_eq!(Block::from_wire(&bytes[..cut]), None, "cut {cut}");
        }
        let mut extended = bytes;
        extended.push(0);
        assert_eq!(Block::from_wire(&extended), None);
    }

    #[test]
    fn wire_encoding_changes_with_contents() {
        let a = sample().wire_bytes();
        let b = Block::new(BlockNumber(3), Hash32::ZERO, vec![tx(1, 0)]).wire_bytes();
        assert_ne!(a, b);
        let c = Block::new(BlockNumber(4), Hash32::ZERO, sample().transactions().to_vec())
            .wire_bytes();
        assert_ne!(a, c);
    }
}
