//! Shared configuration types.

use std::collections::BTreeMap;
use std::time::Duration;

use crate::AppId;

/// Block-cutting conditions (§IV-B): "Blocks have a pre-defined maximal
/// size, maximal number of transactions, and maximal time the block
/// production takes since the first transaction of a new block was
/// received. When any of these three conditions is satisfied, a block is
/// full."
///
/// # Examples
///
/// ```
/// use parblock_types::BlockCutConfig;
///
/// let cut = BlockCutConfig::with_max_txns(200);
/// assert_eq!(cut.max_txns, 200);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockCutConfig {
    /// Maximal number of transactions per block.
    pub max_txns: usize,
    /// Maximal serialized block size in bytes.
    pub max_bytes: usize,
    /// Maximal time since the first transaction of the block arrived.
    pub max_wait: Duration,
}

impl BlockCutConfig {
    /// A configuration bounded only by transaction count (the knob swept in
    /// Fig 5), with generous byte/time limits.
    #[must_use]
    pub fn with_max_txns(max_txns: usize) -> Self {
        BlockCutConfig {
            max_txns,
            max_bytes: usize::MAX,
            max_wait: Duration::from_millis(50),
        }
    }
}

impl Default for BlockCutConfig {
    /// The paper's sweet spot: ~200 transactions per block.
    fn default() -> Self {
        BlockCutConfig::with_max_txns(200)
    }
}

/// How an OXII executor schedules the transactions of a block.
///
/// The paper's scheduler is **pessimistic**: the orderers read declared
/// read/write sets and ship a dependency graph, and a transaction only
/// runs once every predecessor is locally executed or committed
/// (§IV-C, Algorithm 1). The **optimistic** engine is the Block-STM
/// alternative ("A theory of transaction parallelism in blockchains"):
/// run everything speculatively against the multi-version store, record
/// what each execution read, and validate in log order — aborting and
/// re-executing any transaction whose reads were clobbered by a
/// lower-positioned writer. Both engines are serializable against the
/// same block order, so they commit byte-identical ledgers and states
/// (`tests/mode_equivalence.rs` pins this).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ExecutionMode {
    /// Dependency-graph scheduling (the paper's Algorithm 1).
    #[default]
    Pessimistic,
    /// Block-STM style speculate / validate / re-execute.
    Optimistic,
    /// Per-block choice: pessimistic for conflict-dense blocks (where
    /// speculation mostly aborts), optimistic for sparse ones.
    HybridByContention,
}

impl ExecutionMode {
    /// Parses the spelling used by `PARBLOCK_EXEC_MODE` and the CLI
    /// (`pessimistic` / `optimistic` / `hybrid`).
    #[must_use]
    pub fn parse(raw: &str) -> Option<Self> {
        match raw.trim().to_ascii_lowercase().as_str() {
            "pessimistic" => Some(ExecutionMode::Pessimistic),
            "optimistic" => Some(ExecutionMode::Optimistic),
            "hybrid" | "hybrid-by-contention" => Some(ExecutionMode::HybridByContention),
            _ => None,
        }
    }

    /// All three modes, in ablation order.
    pub const ALL: [ExecutionMode; 3] = [
        ExecutionMode::Pessimistic,
        ExecutionMode::Optimistic,
        ExecutionMode::HybridByContention,
    ];
}

impl std::fmt::Display for ExecutionMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ExecutionMode::Pessimistic => "pessimistic",
            ExecutionMode::Optimistic => "optimistic",
            ExecutionMode::HybridByContention => "hybrid",
        };
        f.write_str(s)
    }
}

/// The arrival process an open-loop load driver uses to place intended
/// transaction arrival times (DESIGN.md §13).
///
/// The process shapes *when* transactions are meant to arrive at a given
/// average rate; it says nothing about what the transactions do (that is
/// the workload generator's job). All three processes are deterministic
/// functions of `(rate, seed)`, so the saturation harness produces the
/// same intended-arrival schedule under the threaded runner and the
/// virtual-clock simulator.
///
/// # Examples
///
/// ```
/// use parblock_types::ArrivalProcess;
///
/// assert_eq!(ArrivalProcess::parse("poisson"), Some(ArrivalProcess::Poisson));
/// assert_eq!(ArrivalProcess::Uniform.to_string(), "uniform");
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Evenly spaced arrivals: arrival `i` lands at `i / rate`. The
    /// schedule the closed-form sim driver has always used.
    Uniform,
    /// Memoryless arrivals: exponentially distributed inter-arrival
    /// gaps with mean `1 / rate`, sampled from the run seed.
    Poisson,
    /// On/off arrivals: within every `period`, all of the period's
    /// arrivals are packed uniformly into the leading `duty` fraction,
    /// followed by silence — the same average rate delivered in bursts
    /// `1/duty` times the target rate.
    Burst {
        /// Length of one on+off cycle.
        period: Duration,
        /// Fraction of the period that carries traffic, in `(0, 1]`.
        duty: f64,
    },
}

impl ArrivalProcess {
    /// The default burst shape: 100 ms periods with a 20 % duty cycle
    /// (5× the average rate while on).
    #[must_use]
    pub fn default_burst() -> Self {
        ArrivalProcess::Burst {
            period: Duration::from_millis(100),
            duty: 0.2,
        }
    }

    /// Parses the CLI spelling: `uniform`, `poisson`, or `burst` (the
    /// default burst shape).
    #[must_use]
    pub fn parse(raw: &str) -> Option<Self> {
        match raw.trim().to_ascii_lowercase().as_str() {
            "uniform" => Some(ArrivalProcess::Uniform),
            "poisson" => Some(ArrivalProcess::Poisson),
            "burst" => Some(ArrivalProcess::default_burst()),
            _ => None,
        }
    }
}

impl Default for ArrivalProcess {
    /// Uniform spacing — the legacy driver behaviour.
    fn default() -> Self {
        ArrivalProcess::Uniform
    }
}

impl std::fmt::Display for ArrivalProcess {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArrivalProcess::Uniform => f.write_str("uniform"),
            ArrivalProcess::Poisson => f.write_str("poisson"),
            ArrivalProcess::Burst { .. } => f.write_str("burst"),
        }
    }
}

/// The commit policy τ : A → usize of §III-B: how many matching execution
/// results an executor must collect before committing a transaction of
/// application `A` (the analogue of Fabric's endorsement policies).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CommitPolicy {
    per_app: BTreeMap<AppId, usize>,
    default_quorum: usize,
}

impl CommitPolicy {
    /// A policy requiring `quorum` matching results for every application.
    #[must_use]
    pub fn uniform(quorum: usize) -> Self {
        CommitPolicy {
            per_app: BTreeMap::new(),
            default_quorum: quorum.max(1),
        }
    }

    /// Overrides the quorum for one application.
    #[must_use]
    pub fn with_app(mut self, app: AppId, quorum: usize) -> Self {
        self.per_app.insert(app, quorum.max(1));
        self
    }

    /// τ(app): the required number of matching results.
    #[must_use]
    pub fn required(&self, app: AppId) -> usize {
        self.per_app
            .get(&app)
            .copied()
            .unwrap_or(self.default_quorum.max(1))
    }
}

/// Synthetic cost model for contract execution.
///
/// The paper ran on 8-vCPU EC2 instances where contract execution consumed
/// real CPU. This reproduction host has a single vCPU, so execution cost is
/// modelled as a timed wait (I/O-bound-like), which preserves the
/// parallel-vs-sequential shape of the results (see DESIGN.md §3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecutionCosts {
    /// Time to execute one transaction on an executor.
    pub per_tx: Duration,
    /// Fixed overhead per block for validation/bookkeeping on each node.
    pub per_block: Duration,
}

impl ExecutionCosts {
    /// A cost model with the given per-transaction execution time and no
    /// per-block overhead.
    #[must_use]
    pub fn per_tx(cost: Duration) -> Self {
        ExecutionCosts {
            per_tx: cost,
            per_block: Duration::ZERO,
        }
    }

    /// Zero-cost execution (useful for logic-only tests).
    #[must_use]
    pub fn zero() -> Self {
        ExecutionCosts {
            per_tx: Duration::ZERO,
            per_block: Duration::ZERO,
        }
    }
}

impl Default for ExecutionCosts {
    /// 1 ms per transaction. With the default 16-worker executor pools
    /// this yields the paper's relative ceilings: OX ≈ 1/per_tx,
    /// XOV ≈ apps/per_tx, OXII ≈ pool·executors/per_tx (contention
    /// permitting) — the OXII > XOV > OX ordering of §V.
    fn default() -> Self {
        ExecutionCosts {
            per_tx: Duration::from_millis(1),
            per_block: Duration::ZERO,
        }
    }
}

/// Tuning knobs for the durable store (`parblock_store`): how often the
/// write-ahead log is fsynced and how often the blockchain state is
/// checkpointed.
///
/// Lives in the types crate so the ledger's `Durability` trait, the
/// store, and the cluster spec can share it without a dependency cycle.
///
/// # Examples
///
/// ```
/// use parblock_types::DurabilityConfig;
///
/// let cfg = DurabilityConfig::default();
/// assert!(cfg.flush_interval >= 1);
/// assert!(cfg.checkpoint_interval >= 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurabilityConfig {
    /// Group commit: the WAL is fsynced once at least this many records
    /// have been appended since the last sync (and always on block seal,
    /// regardless of the count). `1` is fsync-per-record.
    pub flush_interval: usize,
    /// A state checkpoint is written every this many sealed blocks; WAL
    /// segments entirely below the checkpoint watermark are deleted.
    pub checkpoint_interval: u64,
}

impl Default for DurabilityConfig {
    /// Sync every 64 records (or at block seal), checkpoint every 8
    /// blocks.
    fn default() -> Self {
        DurabilityConfig {
            flush_interval: 64,
            checkpoint_interval: 8,
        }
    }
}

impl DurabilityConfig {
    /// Clamps both intervals to at least 1 (a zero interval would stall
    /// the group-commit / checkpoint cadence forever).
    #[must_use]
    pub fn sanitized(self) -> Self {
        DurabilityConfig {
            flush_interval: self.flush_interval.max(1),
            checkpoint_interval: self.checkpoint_interval.max(1),
        }
    }
}

/// Top-level knobs shared by all three systems (OX, XOV, OXII).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SystemConfig {
    /// Block-cutting conditions.
    pub block_cut: BlockCutConfig,
    /// Commit / endorsement policy τ.
    pub commit_policy: CommitPolicy,
    /// Synthetic execution cost model.
    pub costs: ExecutionCosts,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_block_cut_matches_paper_sweet_spot() {
        assert_eq!(BlockCutConfig::default().max_txns, 200);
    }

    #[test]
    fn commit_policy_lookup() {
        let policy = CommitPolicy::uniform(2).with_app(AppId(1), 3);
        assert_eq!(policy.required(AppId(0)), 2);
        assert_eq!(policy.required(AppId(1)), 3);
    }

    #[test]
    fn commit_policy_never_returns_zero() {
        let policy = CommitPolicy::uniform(0).with_app(AppId(1), 0);
        assert_eq!(policy.required(AppId(0)), 1);
        assert_eq!(policy.required(AppId(1)), 1);
        assert_eq!(CommitPolicy::default().required(AppId(9)), 1);
    }

    #[test]
    fn durability_config_sanitizes_zero_intervals() {
        let cfg = DurabilityConfig {
            flush_interval: 0,
            checkpoint_interval: 0,
        }
        .sanitized();
        assert_eq!(cfg.flush_interval, 1);
        assert_eq!(cfg.checkpoint_interval, 1);
        let default = DurabilityConfig::default();
        assert_eq!(default.sanitized(), default);
    }

    #[test]
    fn arrival_process_parse_and_display_round_trip() {
        assert_eq!(ArrivalProcess::parse("uniform"), Some(ArrivalProcess::Uniform));
        assert_eq!(ArrivalProcess::parse(" Poisson "), Some(ArrivalProcess::Poisson));
        assert_eq!(
            ArrivalProcess::parse("burst"),
            Some(ArrivalProcess::default_burst())
        );
        assert_eq!(ArrivalProcess::parse("lognormal"), None);
        assert_eq!(ArrivalProcess::default(), ArrivalProcess::Uniform);
        assert_eq!(ArrivalProcess::default_burst().to_string(), "burst");
    }

    #[test]
    fn execution_mode_parse_and_display_round_trip() {
        for mode in ExecutionMode::ALL {
            assert_eq!(ExecutionMode::parse(&mode.to_string()), Some(mode));
        }
        assert_eq!(
            ExecutionMode::parse(" Hybrid-By-Contention "),
            Some(ExecutionMode::HybridByContention)
        );
        assert_eq!(ExecutionMode::parse("blockstm"), None);
        assert_eq!(ExecutionMode::default(), ExecutionMode::Pessimistic);
    }

    #[test]
    fn execution_costs_constructors() {
        assert_eq!(ExecutionCosts::zero().per_tx, Duration::ZERO);
        let c = ExecutionCosts::per_tx(Duration::from_micros(50));
        assert_eq!(c.per_tx, Duration::from_micros(50));
        assert_eq!(c.per_block, Duration::ZERO);
    }
}
