//! Record keys and read/write sets.
//!
//! The paper assumes "the read-set and write-set are pre-declared or can be
//! obtained from the transactions via a static analysis" (§III-A). A
//! [`RwSet`] carries both sets and answers the conflict predicates used to
//! build ordering dependencies.

use std::collections::BTreeSet;
use std::fmt;

use serde::{Deserialize, Serialize};

/// Primary key of a record in the blockchain state (datastore).
///
/// The paper's example application keys accounts by number (e.g. account
/// `1001`), so a `u64` key space suffices and keeps set operations cheap.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Key(pub u64);

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "k{}", self.0)
    }
}

impl From<u64> for Key {
    fn from(raw: u64) -> Self {
        Key(raw)
    }
}

/// The declared read set ρ(T) and write set ω(T) of a transaction.
///
/// # Examples
///
/// ```
/// use parblock_types::{Key, RwSet};
///
/// let transfer = RwSet::new([Key(1001)], [Key(1001), Key(1002)]);
/// let audit = RwSet::read_only([Key(1002)]);
/// assert!(transfer.conflicts_with(&audit)); // ω ∩ ρ ≠ ∅
/// assert!(!audit.conflicts_with(&audit)); // reads never conflict
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub struct RwSet {
    reads: BTreeSet<Key>,
    writes: BTreeSet<Key>,
}

impl RwSet {
    /// Creates a read/write set from iterators of keys.
    pub fn new<R, W>(reads: R, writes: W) -> Self
    where
        R: IntoIterator<Item = Key>,
        W: IntoIterator<Item = Key>,
    {
        RwSet {
            reads: reads.into_iter().collect(),
            writes: writes.into_iter().collect(),
        }
    }

    /// A read-only set (ω = ∅).
    pub fn read_only<R: IntoIterator<Item = Key>>(reads: R) -> Self {
        Self::new(reads, [])
    }

    /// A write-only set (ρ = ∅).
    pub fn write_only<W: IntoIterator<Item = Key>>(writes: W) -> Self {
        Self::new([], writes)
    }

    /// The read set ρ(T).
    pub fn reads(&self) -> &BTreeSet<Key> {
        &self.reads
    }

    /// The write set ω(T).
    pub fn writes(&self) -> &BTreeSet<Key> {
        &self.writes
    }

    /// Adds a key to the read set.
    pub fn add_read(&mut self, key: Key) {
        self.reads.insert(key);
    }

    /// Adds a key to the write set.
    pub fn add_write(&mut self, key: Key) {
        self.writes.insert(key);
    }

    /// Returns `true` when both sets are empty.
    pub fn is_empty(&self) -> bool {
        self.reads.is_empty() && self.writes.is_empty()
    }

    /// Every key touched by the transaction (ρ ∪ ω), deduplicated.
    pub fn touched(&self) -> BTreeSet<Key> {
        self.reads.union(&self.writes).copied().collect()
    }

    /// §III-A conflict test: two transactions conflict if they access the
    /// same data and at least one access is a write. This is the symmetric
    /// predicate; direction comes from block order.
    #[must_use]
    pub fn conflicts_with(&self, other: &RwSet) -> bool {
        self.rw_conflict(other) || other.rw_conflict(self) || self.ww_conflict(other)
    }

    /// ρ(self) ∩ ω(other) ≠ ∅ — `other` overwrites something `self` reads.
    #[must_use]
    pub fn rw_conflict(&self, other: &RwSet) -> bool {
        intersects(&self.reads, &other.writes)
    }

    /// ω(self) ∩ ω(other) ≠ ∅ — both write a common record.
    #[must_use]
    pub fn ww_conflict(&self, other: &RwSet) -> bool {
        intersects(&self.writes, &other.writes)
    }

    /// ω(self) ∩ ρ(other) ≠ ∅ — `other` reads something `self` writes.
    ///
    /// In the multi-version adaptation of §III-A this is the *only* pair
    /// that forces an ordering dependency: a later read must observe the
    /// earlier write's version.
    #[must_use]
    pub fn wr_conflict(&self, other: &RwSet) -> bool {
        intersects(&self.writes, &other.reads)
    }
}

fn intersects(a: &BTreeSet<Key>, b: &BTreeSet<Key>) -> bool {
    // Iterate the smaller set and probe the larger: O(min·log max).
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    small.iter().any(|k| large.contains(k))
}

impl FromIterator<Key> for RwSet {
    /// Collecting plain keys produces a read-only set; writes must be added
    /// explicitly.
    fn from_iter<I: IntoIterator<Item = Key>>(iter: I) -> Self {
        RwSet::read_only(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(raw: &[u64]) -> Vec<Key> {
        raw.iter().copied().map(Key).collect()
    }

    #[test]
    fn conflict_rules_match_paper_definition() {
        // T1 reads {a}, writes {b}; T4 reads {b}: ω(T1) ∩ ρ(T4) ≠ ∅.
        let t1 = RwSet::new(keys(&[1]), keys(&[2]));
        let t4 = RwSet::read_only(keys(&[2]));
        assert!(t1.wr_conflict(&t4));
        assert!(t1.conflicts_with(&t4));
        assert!(t4.conflicts_with(&t1)); // symmetric predicate

        // Write-write conflict on d.
        let t5 = RwSet::write_only(keys(&[4]));
        let t2 = RwSet::write_only(keys(&[4]));
        assert!(t5.ww_conflict(&t2));
        assert!(t5.conflicts_with(&t2));

        // Read-read never conflicts.
        let r1 = RwSet::read_only(keys(&[9]));
        let r2 = RwSet::read_only(keys(&[9]));
        assert!(!r1.conflicts_with(&r2));
    }

    #[test]
    fn disjoint_sets_do_not_conflict() {
        let a = RwSet::new(keys(&[1, 2]), keys(&[3]));
        let b = RwSet::new(keys(&[4]), keys(&[5, 6]));
        assert!(!a.conflicts_with(&b));
    }

    #[test]
    fn touched_is_union() {
        let s = RwSet::new(keys(&[1, 2]), keys(&[2, 3]));
        assert_eq!(s.touched(), keys(&[1, 2, 3]).into_iter().collect());
    }

    #[test]
    fn builders_and_mutators() {
        let mut s = RwSet::default();
        assert!(s.is_empty());
        s.add_read(Key(7));
        s.add_write(Key(8));
        assert!(!s.is_empty());
        assert!(s.reads().contains(&Key(7)));
        assert!(s.writes().contains(&Key(8)));
    }

    #[test]
    fn from_iterator_is_read_only() {
        let s: RwSet = keys(&[1, 2, 3]).into_iter().collect();
        assert_eq!(s.reads().len(), 3);
        assert!(s.writes().is_empty());
    }
}
