//! Seed → (cluster shape, fault schedule) derivation.
//!
//! One `u64` seed fixes *everything* about a run: the workload stream
//! and network jitter (through `ClusterSpec::seed`), the cluster shape
//! (contention level, pipeline depth, durability backend), and the fault
//! schedule (which nodes fail, how, and at which virtual instants). The
//! explorer sweeps seeds; a failing seed is a complete repro.
//!
//! Fault plans are constrained to *survivable* schedules so the oracles
//! stay sharp (an unsurvivable plan fails liveness trivially and proves
//! nothing):
//!
//! * the entry orderer (the sequencer leader clients submit to) is never
//!   faulted — client REQUESTs are fire-and-forget, so losing it loses
//!   transactions by design;
//! * at most one of the two follower orderers is faulted, keeping the
//!   ordering majority intact;
//! * executor victims are always the *second* agent of an application
//!   (the observer is the first agent of app 0 and every app keeps
//!   τ(A) = 1 satisfiable through its first agent).

use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use parblock_store::testutil::TempDir;
use parblock_types::{AppId, ExecutionMode, NodeId};
use parblockchain::{
    ClusterSpec, DurabilityMode, FaultEvent, FaultKind, FaultPlan, SimConfig, SystemKind,
};

/// Explorer-wide knobs (per-seed variation happens inside
/// [`plan_for_seed`]).
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// Transactions per run.
    pub count: usize,
    /// Open-loop virtual submission rate.
    pub rate_tps: f64,
    /// Whether fault schedules are generated at all (`false` = pure
    /// schedule exploration over fault-free runs).
    pub faults: bool,
    /// Block size (count cuts only: recovery equivalence compares chains
    /// byte-for-byte, which needs schedule-independent boundaries).
    pub block_txns: usize,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            count: 150,
            rate_tps: 2_000.0,
            faults: true,
            block_txns: 25,
        }
    }
}

/// A fully derived per-seed run: the simulation config, a human-readable
/// description of what the seed explores, and (for on-disk seeds) the
/// guard keeping the store directory alive for the run's duration.
#[derive(Debug)]
pub struct SeedPlan {
    /// The run specification handed to `run_sim`.
    pub config: SimConfig,
    /// What this seed varies, for failure reports.
    pub description: String,
    /// Tempdir guard for on-disk durability (`None` = in-memory).
    pub data_dir: Option<TempDir>,
}

fn ms(rng: &mut StdRng, lo: u64, hi: u64) -> Duration {
    Duration::from_millis(rng.gen_range(lo..hi))
}

/// Derives the complete run plan for `seed`.
#[must_use]
pub fn plan_for_seed(seed: u64, explore: &ExploreConfig) -> SeedPlan {
    // Independent streams for shape and faults so toggling faults never
    // changes the cluster shape a seed explores.
    let mut shape_rng = StdRng::seed_from_u64(seed ^ 0x5157_4A5F_5348_4150);
    let mut fault_rng = StdRng::seed_from_u64(seed ^ 0x5157_4A5F_464C_5453);

    let mut spec = ClusterSpec::new(SystemKind::Oxii);
    spec.seed = seed;
    spec.block_cut = parblock_types::BlockCutConfig {
        max_txns: explore.block_txns,
        max_bytes: usize::MAX,
        max_wait: Duration::from_secs(5),
    };
    spec.costs = parblock_types::ExecutionCosts::per_tx(Duration::from_micros(50));
    spec.capture_state = true;
    spec.executors_per_app = 2;
    spec.commit_quorum = Some(1);
    let contention = [0.0, 0.5, 0.9][shape_rng.gen_range(0usize..3)];
    spec.workload.contention = contention;
    spec.workload.cross_app = shape_rng.gen_bool(0.3);
    let depth = [1usize, 2, 4][shape_rng.gen_range(0usize..3)];
    spec.exec_pipeline_depth = depth;

    let on_disk = shape_rng.gen_bool(1.0 / 3.0);
    let data_dir = if on_disk {
        let dir = TempDir::new(&format!("simexplore-{seed}"));
        spec.durability = DurabilityMode::OnDisk {
            data_dir: dir.path().to_path_buf(),
            fresh: true,
        };
        spec.durability_config = parblock_types::DurabilityConfig {
            flush_interval: [1usize, 8, 64][shape_rng.gen_range(0usize..3)],
            checkpoint_interval: 4,
        };
        Some(dir)
    } else {
        spec.durability = DurabilityMode::InMemory;
        None
    };

    // Sampled last so adding the execution-mode axis left every earlier
    // per-seed shape decision (and thus pinned regression seeds'
    // contention/depth/durability) untouched.
    let mode = ExecutionMode::ALL[shape_rng.gen_range(0usize..3)];
    spec.execution_mode = mode;

    // Fault window: while load is flowing plus a little drain margin.
    let window_ms = ((explore.count as f64 / explore.rate_tps) * 1_000.0) as u64 + 20;
    let mut events = Vec::new();
    let mut kinds = Vec::new();
    if explore.faults {
        let peer_ids = spec.peer_ids();
        let all_nodes: Vec<NodeId> = {
            let mut nodes = spec.orderer_ids();
            nodes.extend(spec.peer_ids());
            nodes.push(spec.client_node());
            nodes
        };

        // Per application: maybe fault its *second* agent (crash+restart
        // or a COMMIT-silence window).
        for app in 0..spec.apps as u16 {
            if !fault_rng.gen_bool(0.55) {
                continue;
            }
            let victim = spec.agents_of(AppId(app))[1];
            let start = ms(&mut fault_rng, 2, window_ms.max(3));
            let heal = start + ms(&mut fault_rng, 5, 45);
            if fault_rng.gen_bool(0.5) {
                let tear = if on_disk && fault_rng.gen_bool(0.5) {
                    fault_rng.gen_range(1u64..160)
                } else {
                    0
                };
                events.push(FaultEvent {
                    at: start,
                    kind: FaultKind::Crash { node: victim },
                });
                events.push(FaultEvent {
                    at: heal,
                    kind: FaultKind::Restart {
                        node: victim,
                        tear_wal_bytes: tear,
                    },
                });
                kinds.push(format!("crash(exec {victim})"));
            } else {
                for &to in &peer_ids {
                    if to == victim {
                        continue;
                    }
                    events.push(FaultEvent {
                        at: start,
                        kind: FaultKind::SilenceLink { from: victim, to },
                    });
                    events.push(FaultEvent {
                        at: heal,
                        kind: FaultKind::HealLink { from: victim, to },
                    });
                }
                kinds.push(format!("silence(exec {victim})"));
            }
        }

        // Maybe fault ONE follower orderer (crash+restart or partition).
        if fault_rng.gen_bool(0.6) {
            let follower = spec.orderer_ids()[fault_rng.gen_range(1usize..3)];
            let start = ms(&mut fault_rng, 2, window_ms.max(3));
            let heal = start + ms(&mut fault_rng, 5, 45);
            if fault_rng.gen_bool(0.5) {
                events.push(FaultEvent {
                    at: start,
                    kind: FaultKind::Crash { node: follower },
                });
                events.push(FaultEvent {
                    at: heal,
                    kind: FaultKind::Restart {
                        node: follower,
                        tear_wal_bytes: 0,
                    },
                });
                kinds.push(format!("crash(orderer {follower})"));
            } else {
                let others: Vec<NodeId> =
                    all_nodes.iter().copied().filter(|&n| n != follower).collect();
                events.push(FaultEvent {
                    at: start,
                    kind: FaultKind::Partition {
                        left: vec![follower],
                        right: others.clone(),
                    },
                });
                events.push(FaultEvent {
                    at: heal,
                    kind: FaultKind::HealPartition {
                        left: vec![follower],
                        right: others,
                    },
                });
                kinds.push(format!("partition(orderer {follower})"));
            }
        }

        // Maybe crash+restart the passive (non-executor) peer.
        if spec.non_executors > 0 && fault_rng.gen_bool(0.3) {
            let passive = spec.non_executor_ids()[0];
            let start = ms(&mut fault_rng, 2, window_ms.max(3));
            events.push(FaultEvent {
                at: start,
                kind: FaultKind::Crash { node: passive },
            });
            events.push(FaultEvent {
                at: start + ms(&mut fault_rng, 5, 45),
                kind: FaultKind::Restart {
                    node: passive,
                    tear_wal_bytes: 0,
                },
            });
            kinds.push(format!("crash(passive {passive})"));
        }
    }

    let mut config = SimConfig::new(spec, explore.count, explore.rate_tps);
    config.plan = FaultPlan::new(events);
    let description = format!(
        "contention={contention} depth={depth} mode={mode} durability={} faults=[{}]",
        if on_disk { "on-disk" } else { "in-memory" },
        kinds.join(", ")
    );
    SeedPlan {
        config,
        description,
        data_dir,
    }
}
