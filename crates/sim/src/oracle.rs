//! The four correctness oracles checked after every simulated run
//! (DESIGN.md §10).
//!
//! 1. **Conflict serializability** — the committed history (the
//!    observer's sealed chain) must be equivalent to a *sequential*
//!    replay in dependency order. In-block position order is a valid
//!    topological order of every OXII dependency graph (edges always
//!    point from earlier to later positions, following the paper's
//!    timestamp order), so the replay executes each block's transactions
//!    serially in position order and compares state digests height by
//!    height — the conflict-serializability equivalence Bartoletti et
//!    al. formalize for blockchain transaction parallelism.
//! 2. **Replica convergence** — every live replica's chain is a prefix
//!    of the observer's (byte-equal hash at its height), its state
//!    digest at the commit watermark matches the replay at that height,
//!    and replicas never touched by a fault reach the full chain.
//! 3. **Exactly-once** — no transaction id appears twice in the chain,
//!    and for drained runs the committed+aborted set equals the
//!    submitted set: nothing lost across crash/recovery, nothing
//!    duplicated by quorum re-delivery.
//! 4. **Recovery equivalence** — a run with crash/partition faults must
//!    end with the same chain and state as the *uninterrupted* run of
//!    the same seed.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};

use parblock_contracts::{AppRegistry, ExecOutcome, StateReader};
use parblock_crypto::hash_wire;
use parblock_ledger::{Ledger, MvccState, Version};
use parblock_types::{Block, BlockNumber, Hash32, Key, SeqNo, TxId, Value};
use parblockchain::{ClusterSpec, SimOutcome};

/// A snapshot of a transaction's declared read set, mirroring the
/// executor's snapshot semantics: declared-but-absent keys read as
/// `None`, undeclared reads are flagged and abort the transaction.
struct ReplayReader {
    entries: HashMap<Key, Option<Value>>,
    undeclared: AtomicBool,
}

impl StateReader for ReplayReader {
    fn read(&self, key: Key) -> Value {
        self.try_read(key).unwrap_or_default()
    }

    fn try_read(&self, key: Key) -> Option<Value> {
        match self.entries.get(&key) {
            Some(present) => present.clone(),
            None => {
                self.undeclared.store(true, Ordering::Relaxed);
                None
            }
        }
    }
}

/// The sequential dependency-order replay of a chain.
#[derive(Debug, Clone)]
pub struct Replay {
    /// `digests[h]` = state digest after sealing block `h`
    /// (`digests[0]` = the genesis digest).
    pub digests: Vec<Hash32>,
    /// `heads[h]` = chain head hash at height `h` (`heads[0]` = the
    /// genesis hash).
    pub heads: Vec<Hash32>,
    /// Committed transaction count.
    pub committed: u64,
    /// Aborted transaction count.
    pub aborted: u64,
}

/// Executes `chain` sequentially — every block in order, every
/// transaction in position order (a topological order of its dependency
/// graph), each against the fully-applied prefix state — recording the
/// state digest and head hash at every height.
///
/// This is the serializability reference: a parallel OXII execution is
/// conflict-serializable iff it converges to these digests.
#[must_use]
pub fn serial_replay(
    chain: &[Block],
    genesis: &[(Key, Value)],
    registry: &AppRegistry,
) -> Replay {
    let mut state = MvccState::with_genesis(genesis.iter().cloned());
    let mut digests = vec![state.digest()];
    let mut heads = vec![Ledger::genesis_hash()];
    let mut committed = 0u64;
    let mut aborted = 0u64;
    for block in chain {
        for (seq, tx) in block.iter_seq() {
            let position = Version::new(block.number(), seq);
            let entries: HashMap<Key, Option<Value>> = tx
                .rw_set()
                .reads()
                .iter()
                .map(|key| (*key, state.get_at(*key, position)))
                .collect();
            let reader = ReplayReader {
                entries,
                undeclared: AtomicBool::new(false),
            };
            let Ok(contract) = registry.contract(tx.app()) else {
                aborted += 1;
                continue;
            };
            let outcome = contract.execute(tx, &reader);
            match outcome {
                ExecOutcome::Commit(writes) if !reader.undeclared.load(Ordering::Relaxed) => {
                    state.apply(writes, position);
                    committed += 1;
                }
                _ => aborted += 1,
            }
        }
        // Mirror the executor's seal-time GC horizon for the digest.
        digests.push(state.digest_at(Version::new(block.number(), SeqNo(u32::MAX))));
        heads.push(hash_wire(block));
    }
    Replay {
        digests,
        heads,
        committed,
        aborted,
    }
}

fn height_of(replay: &Replay) -> u64 {
    (replay.heads.len() - 1) as u64
}

/// Oracle 1: conflict serializability of the committed history.
///
/// # Errors
///
/// A description of the violation: the observer's state diverged from
/// the sequential dependency-order replay, or its chain does not link.
pub fn check_serializability(
    spec: &ClusterSpec,
    outcome: &SimOutcome,
    replay: &Replay,
) -> Result<(), String> {
    // The chain itself must link (heads are recomputed from the bytes).
    let mut prev = Ledger::genesis_hash();
    for block in &outcome.observer_chain {
        if block.header().prev_hash != prev {
            return Err(format!(
                "observer chain breaks at block {}: prev_hash does not link",
                block.number()
            ));
        }
        prev = hash_wire(block);
    }
    let observer = spec.observer();
    let replica = outcome
        .replicas
        .iter()
        .find(|r| r.node == observer)
        .ok_or_else(|| "observer replica missing from outcome".to_string())?;
    let h = replica.height as usize;
    if h >= replay.digests.len() {
        return Err(format!(
            "observer height {h} exceeds replayed chain length {}",
            replay.digests.len() - 1
        ));
    }
    if replica.state_digest != replay.digests[h] {
        return Err(format!(
            "NOT conflict-serializable: observer state digest at height {h} \
             ({}) != sequential dependency-order replay ({})",
            replica.state_digest.to_hex(),
            replay.digests[h].to_hex()
        ));
    }
    Ok(())
}

/// Oracle 2: replica convergence / prefix consistency.
///
/// # Errors
///
/// A description of the violation: a replica holds a chain that is not
/// a byte-equal prefix of the observer's, a state digest inconsistent
/// with its own watermark, or an unfaulted replica/orderer failed to
/// reach the full chain.
pub fn check_convergence(outcome: &SimOutcome, replay: &Replay) -> Result<(), String> {
    let full = height_of(replay);
    for replica in &outcome.replicas {
        let h = replica.height;
        let expected_head = replay
            .heads
            .get(h as usize)
            .ok_or_else(|| format!("replica {:?} is ahead of the observer chain", replica.node))?;
        if replica.head != *expected_head {
            return Err(format!(
                "replica {:?} diverged: head at height {h} is {} but the \
                 observer chain has {}",
                replica.node,
                replica.head.to_hex(),
                expected_head.to_hex()
            ));
        }
        if replica.state_digest != replay.digests[h as usize] {
            return Err(format!(
                "replica {:?} state diverged at its watermark {h}: {} != replay {}",
                replica.node,
                replica.state_digest.to_hex(),
                replay.digests[h as usize].to_hex()
            ));
        }
        if !replica.faulted && outcome.completed && h != full {
            return Err(format!(
                "unfaulted replica {:?} stalled at height {h} of {full}",
                replica.node
            ));
        }
    }
    for orderer in &outcome.orderers {
        let h = orderer.next_number.0 - 1;
        let expected_head = replay.heads.get(h as usize).ok_or_else(|| {
            format!("orderer {:?} emitted beyond the observer chain", orderer.node)
        })?;
        if orderer.head != *expected_head {
            return Err(format!(
                "orderer {:?} chain diverged at height {h}: {} != {}",
                orderer.node,
                orderer.head.to_hex(),
                expected_head.to_hex()
            ));
        }
        if !orderer.faulted && outcome.completed && h != full {
            return Err(format!(
                "unfaulted orderer {:?} stalled at height {h} of {full}",
                orderer.node
            ));
        }
    }
    Ok(())
}

/// Oracle 3: exactly-once — nothing committed twice, nothing lost.
///
/// # Errors
///
/// A description of the violation: a duplicated transaction id in the
/// chain, a chain transaction that was never submitted, or (for drained
/// runs) a submitted transaction missing from the chain.
pub fn check_exactly_once(outcome: &SimOutcome) -> Result<(), String> {
    let mut in_chain: HashSet<TxId> = HashSet::new();
    for block in &outcome.observer_chain {
        for tx in block.transactions() {
            if !in_chain.insert(tx.id()) {
                return Err(format!(
                    "transaction {:?} appears twice in the chain (block {})",
                    tx.id(),
                    block.number()
                ));
            }
        }
    }
    let submitted: HashSet<TxId> = outcome.submitted.iter().copied().collect();
    for id in &in_chain {
        if !submitted.contains(id) {
            return Err(format!("chain contains never-submitted transaction {id:?}"));
        }
    }
    if outcome.completed {
        for id in &outcome.submitted {
            if !in_chain.contains(id) {
                return Err(format!(
                    "transaction {id:?} was submitted and acknowledged processed \
                     but is missing from the chain (lost across recovery?)"
                ));
            }
        }
        let processed = outcome.report.committed + outcome.report.aborted;
        if processed != outcome.submitted.len() as u64 {
            return Err(format!(
                "observer processed {processed} transactions for {} submissions",
                outcome.submitted.len()
            ));
        }
    }
    Ok(())
}

/// Oracle 4: recovery equivalence — the faulted run must be
/// indistinguishable (chain + state) from the uninterrupted run of the
/// same seed.
///
/// # Errors
///
/// A description of the violation: either run failed to drain, or the
/// final ledger heads / state digests / block counts differ.
pub fn check_recovery_equivalence(
    faulted: &SimOutcome,
    reference: &SimOutcome,
) -> Result<(), String> {
    if !reference.completed {
        return Err("reference run did not drain (infrastructure problem)".to_string());
    }
    if !faulted.completed {
        return Err(format!(
            "faulted run did not drain: {} of {} processed after {:?} virtual",
            faulted.report.committed + faulted.report.aborted,
            faulted.submitted.len(),
            faulted.virtual_elapsed
        ));
    }
    if faulted.report.ledger_head != reference.report.ledger_head {
        return Err(format!(
            "faulted chain diverged from the uninterrupted reference: {:?} != {:?}",
            faulted.report.ledger_head, reference.report.ledger_head
        ));
    }
    if faulted.report.state_digest != reference.report.state_digest {
        return Err(format!(
            "faulted state diverged from the uninterrupted reference: {:?} != {:?}",
            faulted.report.state_digest, reference.report.state_digest
        ));
    }
    if faulted.observer_chain.len() != reference.observer_chain.len() {
        return Err(format!(
            "faulted run sealed {} blocks, reference {}",
            faulted.observer_chain.len(),
            reference.observer_chain.len()
        ));
    }
    Ok(())
}

/// Helper for oracle construction/tests: the chain's head hash at every
/// height without a full replay.
#[must_use]
pub fn chain_heads(chain: &[Block]) -> Vec<Hash32> {
    let mut heads = vec![Ledger::genesis_hash()];
    heads.extend(chain.iter().map(hash_wire));
    heads
}

/// Helper for the oracle property tests: the genesis-relative position
/// version of `(block, seq)`.
#[must_use]
pub fn position(block: u64, seq: u32) -> Version {
    Version::new(BlockNumber(block), SeqNo(seq))
}
