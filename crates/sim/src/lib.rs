//! `parblock_sim` — seeded schedule exploration for the ParBlockchain
//! reproduction (DESIGN.md §10).
//!
//! The deterministic scheduler itself lives in `parblockchain::sim`
//! (it needs the node internals); this crate is the *testing machine*
//! built on top of it, in the FoundationDB simulation tradition:
//!
//! * [`faultgen`] — one `u64` seed → cluster shape + survivable fault
//!   schedule (crashes with WAL tearing, restarts with recovery,
//!   partitions, COMMIT-silence windows);
//! * [`oracle`] — the four correctness oracles checked after every run:
//!   conflict serializability against a sequential dependency-order
//!   replay, replica convergence/prefix consistency, exactly-once
//!   commitment, and equivalence of faulted runs to an uninterrupted
//!   reference;
//! * [`mod@explore`] — the sweep driver behind `repro explore` and the CI
//!   `explore-seeds` job, printing failing seeds as one-line repro
//!   commands.
//!
//! # Examples
//!
//! ```
//! use parblock_sim::{explore, ExploreConfig};
//!
//! let mut config = ExploreConfig::default();
//! config.count = 50; // keep the doctest fast
//! let summary = explore(0..2u64, &config);
//! assert!(summary.all_passed(), "{:?}", summary.failed());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod explore;
pub mod faultgen;
pub mod oracle;

pub use explore::{explore, run_seed, run_seed_twice, ExploreSummary, SeedReport};
pub use faultgen::{plan_for_seed, ExploreConfig, SeedPlan};
pub use oracle::{
    chain_heads, check_convergence, check_exactly_once, check_recovery_equivalence,
    check_serializability, serial_replay, Replay,
};
