//! The seed explorer: sweep seeds, run faulted + reference simulations,
//! check all four oracles, and print failing seeds as one-line repro
//! commands.

use parblock_types::{ExecutionMode, Hash32};
use parblock_workload::WorkloadGen;
use parblockchain::{run_sim, SimOutcome};

use crate::faultgen::{plan_for_seed, ExploreConfig};
use crate::oracle;

/// The verdict of one seed.
#[derive(Debug)]
pub struct SeedReport {
    /// The seed.
    pub seed: u64,
    /// What the seed explored (shape + fault schedule).
    pub description: String,
    /// Oracle violations (empty = all four passed).
    pub failures: Vec<String>,
    /// Digest of the faulted run's `RunReport` (bit-reproducibility
    /// witness: running the seed again must yield the same digest).
    pub report_digest: Hash32,
    /// Scheduler events handled by the faulted run.
    pub events: u64,
    /// Blocks sealed by the faulted run.
    pub blocks: u64,
    /// The execution mode the seed sampled (sweeps assert all three
    /// modes get coverage).
    pub mode: ExecutionMode,
}

impl SeedReport {
    /// Whether every oracle passed.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    /// The one-line command reproducing this seed bit-for-bit.
    #[must_use]
    pub fn repro_command(&self) -> String {
        format!("cargo run --release --bin repro -- explore --seed {}", self.seed)
    }
}

/// Runs one seed end to end: derive the plan, run the faulted schedule,
/// run the uninterrupted reference, check all four oracles.
#[must_use]
pub fn run_seed(seed: u64, explore: &ExploreConfig) -> SeedReport {
    let plan = plan_for_seed(seed, explore);
    let faulted = run_sim(&plan.config);
    evaluate(&plan, seed, &faulted)
}

/// Checks all four oracles against an already-computed faulted run
/// (running the uninterrupted reference here — second, so that for
/// on-disk seeds its startup wipe never races the faulted run; both use
/// the same per-seed tempdir, strictly sequentially).
fn evaluate(
    plan: &crate::faultgen::SeedPlan,
    seed: u64,
    faulted: &SimOutcome,
) -> SeedReport {
    let mut reference_config = plan.config.clone();
    reference_config.plan = parblockchain::FaultPlan::none();
    let reference = run_sim(&reference_config);

    let spec = &plan.config.spec;
    let genesis = WorkloadGen::new(spec.workload_config()).genesis();
    let registry = spec.registry();
    let replay = oracle::serial_replay(&faulted.observer_chain, &genesis, &registry);

    let mut failures = Vec::new();
    let mut record = |name: &str, result: Result<(), String>| {
        if let Err(why) = result {
            failures.push(format!("[{name}] {why}"));
        }
    };
    record(
        "serializability",
        oracle::check_serializability(spec, faulted, &replay),
    );
    record("convergence", oracle::check_convergence(faulted, &replay));
    record("exactly-once", oracle::check_exactly_once(faulted));
    record(
        "recovery",
        oracle::check_recovery_equivalence(faulted, &reference),
    );

    SeedReport {
        seed,
        description: plan.description.clone(),
        failures,
        report_digest: faulted.report.digest(),
        events: faulted.events,
        blocks: faulted.report.blocks,
        mode: spec.execution_mode,
    }
}

/// Runs one seed's faulted schedule twice (for the caller's
/// bit-reproducibility assertion) and checks the oracles against the
/// first run — three simulations in total (faulted ×2 + reference),
/// nothing executed redundantly. Used by `repro explore --seed N`.
#[must_use]
pub fn run_seed_twice(seed: u64, explore: &ExploreConfig) -> (SeedReport, SimOutcome, SimOutcome) {
    let plan = plan_for_seed(seed, explore);
    let first = run_sim(&plan.config);
    let second = run_sim(&plan.config);
    let report = evaluate(&plan, seed, &first);
    (report, first, second)
}

/// Sweep summary.
#[derive(Debug, Default)]
pub struct ExploreSummary {
    /// Per-seed verdicts, in sweep order.
    pub reports: Vec<SeedReport>,
}

impl ExploreSummary {
    /// Seeds that violated an oracle.
    #[must_use]
    pub fn failed(&self) -> Vec<&SeedReport> {
        self.reports.iter().filter(|r| !r.passed()).collect()
    }

    /// Whether the whole sweep passed.
    #[must_use]
    pub fn all_passed(&self) -> bool {
        self.reports.iter().all(SeedReport::passed)
    }

    /// Total scheduler events across the sweep.
    #[must_use]
    pub fn total_events(&self) -> u64 {
        self.reports.iter().map(|r| r.events).sum()
    }

    /// Execution modes never sampled by the sweep. Large sweeps assert
    /// this is empty — a silently unexercised engine would hollow out
    /// the oracle coverage the sweep claims.
    #[must_use]
    pub fn unsampled_modes(&self) -> Vec<ExecutionMode> {
        ExecutionMode::ALL
            .into_iter()
            .filter(|mode| self.reports.iter().all(|r| r.mode != *mode))
            .collect()
    }
}

/// Sweeps `seeds`, checking every oracle on every seed.
#[must_use]
pub fn explore<I: IntoIterator<Item = u64>>(seeds: I, config: &ExploreConfig) -> ExploreSummary {
    ExploreSummary {
        reports: seeds
            .into_iter()
            .map(|seed| run_seed(seed, config))
            .collect(),
    }
}
