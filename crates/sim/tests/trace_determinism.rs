//! Virtual-time leg of the lifecycle tracer (DESIGN.md §14): with
//! tracing enabled, the entire trace — every stage-gap histogram
//! bucket, every sampled timeline, the digest-gated trace group of the
//! report digest — must be a pure function of the cluster seed, so two
//! same-seed simulations encode byte-identical traces (separate
//! processes are pinned by the CI trace-smoke job via `repro trace`).

use std::time::Duration;

use parblock_types::{BlockCutConfig, ExecutionCosts};
use parblockchain::sim::{run_sim, SimConfig};
use parblockchain::{ClusterSpec, RunReport, Stage, SystemKind, TraceConfig};

fn traced_spec(seed: u64) -> ClusterSpec {
    let mut spec = ClusterSpec::new(SystemKind::Oxii);
    spec.seed = seed;
    spec.block_cut = BlockCutConfig {
        max_txns: 25,
        max_bytes: usize::MAX,
        max_wait: Duration::from_millis(10),
    };
    spec.costs = ExecutionCosts::per_tx(Duration::from_micros(500));
    spec.workload.contention = 1.0;
    spec.trace = TraceConfig::on();
    spec
}

fn traced_run(seed: u64) -> RunReport {
    let mut sim = SimConfig::new(traced_spec(seed), 400, 1_000.0);
    sim.virtual_deadline = Duration::from_secs(2);
    run_sim(&sim).report
}

fn trace_bytes(report: &RunReport) -> Vec<u8> {
    let mut bytes = Vec::new();
    report.trace.encode_into(&mut bytes);
    bytes
}

#[test]
fn same_seed_traces_encode_byte_identically() {
    let a = traced_run(11);
    let b = traced_run(11);
    assert!(a.trace.finished > 0, "trace must complete transactions");
    assert_eq!(
        trace_bytes(&a),
        trace_bytes(&b),
        "same seed must reproduce the trace byte-for-byte"
    );
    assert_eq!(a.digest(), b.digest(), "digests must agree too");
}

#[test]
fn different_seeds_change_the_trace_digest() {
    let a = traced_run(11);
    let b = traced_run(12);
    assert_ne!(
        trace_bytes(&a),
        trace_bytes(&b),
        "the seed steers the workload, so the trace must move"
    );
}

#[test]
fn virtual_trace_walks_the_full_stage_ladder() {
    let report = traced_run(11);
    // Every pipeline gap of the pessimistic in-memory leg must be
    // populated: submitted→sequenced→cut→graph-ready→dispatched→
    // executed→committed→durable (validated only exists under the
    // optimistic engine and folds into its neighbours here).
    for (from, to) in [
        (Stage::Submitted, Stage::Sequenced),
        (Stage::Sequenced, Stage::Cut),
        (Stage::Cut, Stage::GraphReady),
        (Stage::GraphReady, Stage::Dispatched),
        (Stage::Dispatched, Stage::Executed),
        (Stage::Executed, Stage::Committed),
        (Stage::Committed, Stage::Durable),
    ] {
        let hist = report
            .trace
            .pair(from, to)
            .unwrap_or_else(|| panic!("missing stage gap {from}->{to}"));
        assert!(hist.count() > 0, "{from}->{to} recorded no samples");
    }
    // Virtual-time sanity: the inline executor completes exactly at
    // dispatch + the configured 500 µs cost, and the histogram clamps
    // a single-valued population to its exact value — so the
    // dispatched→executed gap must read 500 µs on the nose.
    let exec = report
        .trace
        .pair(Stage::Dispatched, Stage::Executed)
        .expect("checked above");
    assert_eq!(
        exec.percentile(0.5),
        500_000,
        "virtual execution gap must equal the cost model exactly"
    );
}

#[test]
fn disabled_tracing_keeps_the_report_inactive() {
    let mut spec = traced_spec(11);
    spec.trace = TraceConfig::default();
    let mut sim = SimConfig::new(spec, 200, 1_000.0);
    sim.virtual_deadline = Duration::from_secs(2);
    let report = run_sim(&sim).report;
    assert!(
        !report.trace.is_active(),
        "default-off tracing must leave no trace group in the digest"
    );
}
