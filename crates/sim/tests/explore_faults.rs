//! End-to-end checks of the deterministic simulator and its oracles
//! under targeted fault schedules.

use std::time::Duration;

use parblock_store::testutil::TempDir;
use parblock_sim::{explore, plan_for_seed, run_seed, ExploreConfig};
use parblock_types::{BlockCutConfig, ExecutionCosts, NodeId};
use parblockchain::{
    run_sim, ClusterSpec, DurabilityMode, FaultEvent, FaultKind, FaultPlan, SimConfig,
    SystemKind,
};

fn base_spec(seed: u64) -> ClusterSpec {
    let mut spec = ClusterSpec::new(SystemKind::Oxii);
    spec.seed = seed;
    spec.block_cut = BlockCutConfig {
        max_txns: 25,
        max_bytes: usize::MAX,
        max_wait: Duration::from_secs(5),
    };
    spec.costs = ExecutionCosts::per_tx(Duration::from_micros(50));
    spec.capture_state = true;
    spec.durability = DurabilityMode::InMemory;
    spec
}

fn all_nodes_except(spec: &ClusterSpec, node: NodeId) -> Vec<NodeId> {
    let mut nodes = spec.orderer_ids();
    nodes.extend(spec.peer_ids());
    nodes.push(spec.client_node());
    nodes.retain(|&n| n != node);
    nodes
}

/// Satellite: a partitioned minority orderer must catch up to the
/// byte-equal chain after the partition heals (the sequencer's gap-fetch
/// path, driven through the whole cluster).
#[test]
fn partitioned_minority_orderer_catches_up_after_heal() {
    let spec = base_spec(21);
    let victim = spec.orderer_ids()[2];
    let others = all_nodes_except(&spec, victim);
    let mut config = SimConfig::new(spec, 150, 2_000.0);
    config.plan = FaultPlan::new(vec![
        FaultEvent {
            at: Duration::from_millis(10),
            kind: FaultKind::Partition {
                left: vec![victim],
                right: others.clone(),
            },
        },
        FaultEvent {
            at: Duration::from_millis(45),
            kind: FaultKind::HealPartition {
                left: vec![victim],
                right: others,
            },
        },
    ]);
    let outcome = run_sim(&config);
    assert!(outcome.completed, "{:?}", outcome.report);
    assert_eq!(outcome.report.committed, 150);
    let full_height = outcome.observer_chain.len() as u64;
    assert!(full_height >= 6);
    assert_eq!(outcome.orderers.len(), 3, "all orderers alive at the end");
    let reference = outcome
        .orderers
        .iter()
        .find(|o| !o.faulted)
        .expect("an unfaulted orderer");
    for orderer in &outcome.orderers {
        assert_eq!(
            (orderer.next_number, orderer.head),
            (reference.next_number, reference.head),
            "orderer {:?} (faulted={}) did not catch up to the byte-equal chain",
            orderer.node,
            orderer.faulted
        );
    }
    assert_eq!(reference.next_number.0, full_height + 1);
}

/// True crash + recovery of a durable executor mid-run, with a torn WAL
/// tail: the survivors stay byte-equal to the uninterrupted reference,
/// and the recovered node holds a verified prefix.
#[test]
fn durable_executor_crash_with_torn_wal_recovers_a_prefix() {
    let dir = TempDir::new("sim-torn");
    let mut spec = base_spec(33);
    spec.executors_per_app = 2;
    spec.commit_quorum = Some(1);
    spec.durability = DurabilityMode::OnDisk {
        data_dir: dir.path().to_path_buf(),
        fresh: true,
    };
    spec.durability_config = parblock_types::DurabilityConfig {
        flush_interval: 8,
        checkpoint_interval: 2,
    };
    let victim = spec.agents_of(parblock_types::AppId(1))[1];
    let mut config = SimConfig::new(spec, 150, 2_000.0);
    config.plan = FaultPlan::new(vec![
        FaultEvent {
            at: Duration::from_millis(30),
            kind: FaultKind::Crash { node: victim },
        },
        FaultEvent {
            at: Duration::from_millis(55),
            kind: FaultKind::Restart {
                node: victim,
                tear_wal_bytes: 64,
            },
        },
    ]);
    let outcome = run_sim(&config);
    assert!(outcome.completed, "{:?}", outcome.report);

    let mut reference_config = config.clone();
    reference_config.plan = FaultPlan::none();
    let reference = run_sim(&reference_config);
    assert_eq!(outcome.report.ledger_head, reference.report.ledger_head);
    assert_eq!(outcome.report.state_digest, reference.report.state_digest);

    // The victim survived with a verified prefix of the chain.
    let victim_outcome = outcome
        .replicas
        .iter()
        .find(|r| r.node == victim)
        .expect("victim restarted");
    assert!(victim_outcome.faulted);
    let heads = parblock_sim::chain_heads(&outcome.observer_chain);
    assert_eq!(
        victim_outcome.head,
        heads[victim_outcome.height as usize],
        "recovered chain is not a byte-equal prefix"
    );
}

/// A small always-on sweep: every oracle passes across a band of seeds
/// with generated crash + partition + silence schedules. (CI runs the
/// full 200-seed corpus via `repro explore`.)
#[test]
fn seed_band_passes_all_oracles() {
    let config = ExploreConfig::default();
    let summary = explore(100..116u64, &config);
    assert!(
        summary.all_passed(),
        "failing seeds: {:#?}",
        summary
            .failed()
            .iter()
            .map(|r| (r.seed, &r.failures))
            .collect::<Vec<_>>()
    );
}

/// Re-running a seed reproduces the run bit-for-bit (the repro-command
/// contract), and the derived plan itself is a pure function of the
/// seed.
#[test]
fn seeds_replay_bit_for_bit() {
    let config = ExploreConfig::default();
    for seed in [3u64, 4, 9] {
        let plan_a = plan_for_seed(seed, &config);
        let plan_b = plan_for_seed(seed, &config);
        assert_eq!(plan_a.config.plan, plan_b.config.plan, "plan drift at {seed}");
        let a = run_seed(seed, &config);
        let b = run_seed(seed, &config);
        assert_eq!(a.report_digest, b.report_digest, "seed {seed} diverged");
        assert_eq!(a.events, b.events);
        assert!(a.passed(), "seed {seed}: {:?}", a.failures);
        assert!(
            b.repro_command().contains(&format!("--seed {seed}")),
            "repro line must pin the seed"
        );
    }
}

/// The oracles are not vacuous at the system level: a run whose fault
/// plan loses client requests (entry-orderer partition — deliberately
/// outside the generator's survivable menu) is flagged by the
/// exactly-once/recovery oracles rather than silently passing.
#[test]
fn unsurvivable_plans_are_flagged_not_masked() {
    let spec = base_spec(55);
    let entry = spec.entry_orderer();
    let others = all_nodes_except(&spec, entry);
    let mut config = SimConfig::new(spec, 100, 2_000.0);
    // Short deadline: the run cannot drain (lost REQUESTs are gone).
    config.virtual_deadline = Duration::from_secs(2);
    config.plan = FaultPlan::new(vec![FaultEvent {
        at: Duration::from_millis(10),
        kind: FaultKind::Partition {
            left: vec![entry],
            right: others,
        },
    }]);
    let outcome = run_sim(&config);
    assert!(
        !outcome.completed,
        "partitioning the entry orderer must lose transactions"
    );
    let mut reference_config = config.clone();
    reference_config.plan = FaultPlan::none();
    reference_config.virtual_deadline = Duration::from_secs(30);
    let reference = run_sim(&reference_config);
    assert!(
        parblock_sim::check_recovery_equivalence(&outcome, &reference).is_err(),
        "the recovery oracle must flag the incomplete run"
    );
}
