//! Virtual-time leg of the saturation harness: the whole rate-vs-latency
//! curve — achieved rates, every percentile, the knee — must be a pure
//! function of the cluster seed, and the virtual driver must be *exactly*
//! on schedule (zero overruns), which is what makes the threaded leg's
//! overrun counter meaningful: any lateness there is host noise, not
//! harness logic.

use std::time::Duration;

use parblock_types::{ArrivalProcess, BlockCutConfig, ExecutionCosts};
use parblockchain::{saturate_sim, ClusterSpec, SaturateConfig, SystemKind};

fn sweep_spec(seed: u64) -> ClusterSpec {
    let mut spec = ClusterSpec::new(SystemKind::Oxii);
    spec.seed = seed;
    spec.block_cut = BlockCutConfig {
        max_txns: 25,
        max_bytes: usize::MAX,
        max_wait: Duration::from_millis(10),
    };
    // Full contention chains each block, so virtual execution is
    // serialized at 500 µs/tx — a hard 2 000 tps capacity for the knee
    // to find.
    spec.costs = ExecutionCosts::per_tx(Duration::from_micros(500));
    spec.workload.contention = 1.0;
    spec
}

fn sweep_config(seed: u64, arrival: ArrivalProcess, rates: Vec<f64>) -> SaturateConfig {
    let mut config = SaturateConfig::new(sweep_spec(seed), rates);
    config.arrival = arrival;
    config.duration = Duration::from_millis(800);
    config.warmup = Duration::from_millis(200);
    config.cooldown = Duration::from_millis(100);
    config.drain = Duration::from_millis(400);
    config
}

/// A cheap two-point schedule for the determinism legs (reproducibility
/// does not need a knee).
fn light_rates() -> Vec<f64> {
    vec![400.0, 1_600.0]
}

#[test]
fn same_seed_sweeps_are_bit_identical_across_arrival_processes() {
    for arrival in [
        ArrivalProcess::Uniform,
        ArrivalProcess::Poisson,
        ArrivalProcess::default_burst(),
    ] {
        let config = sweep_config(9, arrival, light_rates());
        let a = saturate_sim(&config);
        let b = saturate_sim(&config);
        assert_eq!(
            a, b,
            "{arrival}: same seed must reproduce the full curve bit-for-bit"
        );
        assert!(!a.points.is_empty());
    }
}

#[test]
fn different_seeds_change_poisson_curves_but_not_the_knee_region() {
    let a = saturate_sim(&sweep_config(1, ArrivalProcess::Poisson, light_rates()));
    let b = saturate_sim(&sweep_config(2, ArrivalProcess::Poisson, light_rates()));
    // Different seeds draw different exponential gaps: some measured
    // quantity must differ…
    assert_ne!(a.points, b.points, "seed must steer the Poisson schedule");
    // …but capacity is a property of the cluster, not the seed.
    assert_eq!(a.knee_tps.is_some(), b.knee_tps.is_some());
    if let (Some(ka), Some(kb)) = (a.knee_tps, b.knee_tps) {
        assert_eq!(ka, kb, "knee rate is set by the cost model");
    }
}

#[test]
fn virtual_driver_is_exactly_on_schedule() {
    // In virtual time submissions happen *at* their intended instants:
    // zero overruns, zero lag — deterministically. (The threaded leg
    // can't promise this on a busy host; this is the leg that proves
    // the harness itself adds no lateness.)
    let outcome = saturate_sim(&sweep_config(5, ArrivalProcess::Uniform, light_rates()));
    for point in &outcome.points {
        assert_eq!(
            point.driver_overruns, 0,
            "virtual driver overran at {} tps",
            point.offered_tps
        );
        assert_eq!(point.driver_max_lag, Duration::ZERO);
    }
}

#[test]
fn sweep_detects_the_cost_model_knee_and_inflates_the_tail() {
    // Block-pipelining overlaps the per-block chains, so the cluster's
    // capacity sits a few multiples above the single-chain 2 000 tps;
    // 8 000 tps overloads it, 24 000 collapses it outright.
    let config = sweep_config(
        7,
        ArrivalProcess::Uniform,
        vec![400.0, 1_000.0, 1_600.0, 8_000.0, 24_000.0],
    );
    let outcome = saturate_sim(&config);
    let knee = outcome.knee_tps.expect("sub-capacity rates must keep up");
    assert!(
        (1_000.0..8_000.0).contains(&knee),
        "knee must sit below the overloaded step, got {knee}"
    );
    let below = &outcome.points[0];
    assert!(below.keeps_up(0.99), "{below:?}");
    // The first overloaded step that still commits measured traffic must
    // show the queueing in its tail.
    let past = outcome
        .points
        .iter()
        .find(|p| !p.keeps_up(config.knee_tolerance) && p.measured_committed > 0)
        .expect("an overloaded step with surviving samples");
    assert!(
        past.p99 > below.p99,
        "queueing past the knee must inflate the tail: {:?} vs {:?}",
        past.p99,
        below.p99
    );
    // Survivor-bias guard: overloaded steps must disclose their
    // unresolved population next to the percentiles — the final,
    // fully-collapsed step may have *no* samples at all (p99 of nothing
    // is zero) and `outstanding` is what tells the reader why.
    let last = outcome.points.last().unwrap();
    assert!(
        last.outstanding > 0,
        "a collapsed step with no outstanding txs is implausible: {last:?}"
    );
}
