//! Workload generation for the ParBlockchain evaluation (§V).
//!
//! The paper's experiments run an accounting application under workloads
//! with a controlled *degree of contention*: no-contention (0 %),
//! low-contention (20 %), high-contention (80 %) and full-contention
//! (100 %), where the degree is the fraction of transactions in a block
//! that conflict with another transaction of the same block. At 100 % the
//! dependency graph of each block is a chain.
//!
//! Contention may be placed *within* one application or *across*
//! applications (the `OXII*` dashed lines of Fig 6): in the cross-app
//! variant, consecutive conflicting transactions belong to different
//! applications, forcing the agents to exchange commit messages mid-block.
//!
//! # Examples
//!
//! ```
//! use parblock_workload::{WorkloadConfig, WorkloadGen};
//! use parblock_types::AppId;
//!
//! let mut gen = WorkloadGen::new(WorkloadConfig {
//!     apps: vec![AppId(0), AppId(1), AppId(2)],
//!     contention: 0.2,
//!     block_size: 10,
//!     ..WorkloadConfig::default()
//! });
//! let window = gen.window();
//! assert_eq!(window.len(), 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arrival;
mod generator;
mod zipf;

pub use arrival::ArrivalGen;
pub use generator::{HotspotConfig, WorkloadConfig, WorkloadGen};
pub use zipf::Zipf;
