//! A Zipfian sampler for skewed hot-key workloads.
//!
//! The paper's contention dial selects an exact fraction of conflicting
//! transactions; real deployments more often see skewed popularity. The
//! hotspot extension workload uses this sampler.

use rand::Rng;

/// Zipf distribution over ranks `0..n` with exponent `s`, sampled by
/// inversion over the precomputed CDF (O(log n) per sample).
///
/// # Examples
///
/// ```
/// use parblock_workload::Zipf;
/// use rand::SeedableRng;
///
/// let zipf = Zipf::new(100, 1.0);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let rank = zipf.sample(&mut rng);
/// assert!(rank < 100);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the distribution over `n` ranks with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is negative/non-finite.
    #[must_use]
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "zipf needs at least one rank");
        assert!(s.is_finite() && s >= 0.0, "exponent must be finite and ≥ 0");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for p in &mut cdf {
            *p /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Returns `true` when there is exactly one rank (degenerate).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false // constructor guarantees n > 0
    }

    /// Samples a rank in `0..n`; rank 0 is the most popular.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&p| p < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use super::*;

    #[test]
    fn rank_zero_is_most_popular_for_positive_s() {
        let zipf = Zipf::new(50, 1.2);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0usize; 50];
        for _ in 0..20_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[1]);
        assert!(counts[1] > counts[10]);
        assert!(counts[0] > 20_000 / 10, "head should be heavy");
    }

    #[test]
    fn s_zero_is_uniformish() {
        let zipf = Zipf::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0usize; 10];
        for _ in 0..50_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            let expected = 5_000.0;
            assert!((c as f64 - expected).abs() < expected * 0.15, "{counts:?}");
        }
    }

    #[test]
    fn samples_always_in_range() {
        let zipf = Zipf::new(3, 2.0);
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            assert!(zipf.sample(&mut rng) < 3);
        }
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_panics() {
        let _ = Zipf::new(0, 1.0);
    }

    #[test]
    fn len_reports_ranks() {
        assert_eq!(Zipf::new(5, 1.0).len(), 5);
        assert!(!Zipf::new(5, 1.0).is_empty());
    }
}
