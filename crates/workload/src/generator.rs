//! The contention-controlled accounting workload generator.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use parblock_contracts::AccountingOp;
use parblock_types::{AppId, ClientId, Key, Transaction, Value};

/// Key-space layout: each application owns a disjoint range; a shared
/// range hosts the hot keys used for cross-application contention.
const APP_SPACE: u64 = 1_000_000_000;
const SHARED_BASE: u64 = 0;
const HOT_POOL: u64 = 16;
const INDEP_BASE: u64 = 1_000;
/// Independent account pairs rotate over this many windows before any
/// account is reused, so a "no-contention" workload has no conflicts
/// *across* in-flight blocks either (XOV endorsements stay fresh).
const WINDOW_ROTATION: u64 = 16;

/// A skewed-popularity ("hotspot") workload extension: instead of the
/// paper's exact contention dial, a fraction of transactions touch a
/// small Zipf-distributed hot key set — the access pattern real
/// deployments see ("several transactions simultaneously perform
/// conflicting operations on a few popular records", §I).
#[derive(Debug, Clone, PartialEq)]
pub struct HotspotConfig {
    /// Number of hot records.
    pub keys: u64,
    /// Zipf exponent (0 = uniform over the hot set; 1 ≈ classic skew).
    pub exponent: f64,
    /// Fraction of transactions that hit the hot set.
    pub fraction: f64,
}

impl Default for HotspotConfig {
    fn default() -> Self {
        HotspotConfig {
            keys: 32,
            exponent: 1.0,
            fraction: 0.2,
        }
    }
}

/// Configuration of the workload generator.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadConfig {
    /// Applications issuing transactions (the paper uses three).
    pub apps: Vec<AppId>,
    /// Degree of contention: the fraction of transactions per block that
    /// conflict (0.0, 0.2, 0.8, 1.0 in the paper).
    pub contention: f64,
    /// Whether conflicting transactions span applications (the `OXII*`
    /// dashed-line variant) or stay within one application.
    pub cross_app: bool,
    /// The conflict-shaping window: should equal the block size so each
    /// block carries the requested contention.
    pub block_size: usize,
    /// Number of distinct clients issuing requests.
    pub clients: u32,
    /// RNG seed (transaction order shuffling).
    pub seed: u64,
    /// Opening balance of the independent account pool.
    pub initial_balance: i64,
    /// When set, replaces the exact contention dial with Zipf-skewed
    /// hot-key accesses (the `contention` field is then ignored).
    pub hotspot: Option<HotspotConfig>,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            apps: vec![AppId(0), AppId(1), AppId(2)],
            contention: 0.0,
            cross_app: false,
            block_size: 200,
            clients: 16,
            seed: 42,
            initial_balance: 1_000_000_000,
            hotspot: None,
        }
    }
}

/// Streaming generator of accounting transactions with exact per-window
/// contention (see the crate docs).
#[derive(Debug)]
pub struct WorkloadGen {
    cfg: WorkloadConfig,
    rng: StdRng,
    window_idx: u64,
    client_ts: Vec<u64>,
    next_client: u32,
}

impl WorkloadGen {
    /// Creates a generator.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (no apps, zero clients,
    /// zero block size, or contention outside `[0, 1]`).
    #[must_use]
    pub fn new(cfg: WorkloadConfig) -> Self {
        assert!(!cfg.apps.is_empty(), "need at least one application");
        assert!(cfg.clients > 0, "need at least one client");
        assert!(cfg.block_size > 0, "block size must be positive");
        assert!(
            (0.0..=1.0).contains(&cfg.contention),
            "contention must be in [0, 1]"
        );
        let rng = StdRng::seed_from_u64(cfg.seed);
        let clients = cfg.clients as usize;
        WorkloadGen {
            cfg,
            rng,
            window_idx: 0,
            client_ts: vec![0; clients],
            next_client: 0,
        }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &WorkloadConfig {
        &self.cfg
    }

    fn app_base(app: AppId) -> u64 {
        (u64::from(app.0) + 1) * APP_SPACE
    }

    /// The hot key targeted by window `w` (shared space for cross-app
    /// contention, the chain app's space otherwise).
    fn hot_key(&self, w: u64, chain_app: AppId) -> Key {
        let base = if self.cfg.cross_app {
            SHARED_BASE
        } else {
            Self::app_base(chain_app)
        };
        Key(base + w % HOT_POOL)
    }

    /// Pool slots `[0, 2·block_size·WINDOW_ROTATION)` serve independent
    /// transactions (each window uses its own stripe); the next
    /// `block_size` slots serve chain destinations, so the groups never
    /// share accounts within a window and independent accounts are not
    /// reused for `WINDOW_ROTATION` consecutive windows.
    fn pool_size(&self) -> u64 {
        let bs = self.cfg.block_size as u64;
        2 * bs * WINDOW_ROTATION + bs + 2
    }

    fn indep_key(&self, app: AppId, window: u64, slot: u64) -> Key {
        let bs = self.cfg.block_size as u64;
        let stripe = (window % WINDOW_ROTATION) * 2 * bs;
        Key(Self::app_base(app) + INDEP_BASE + (stripe + slot) % (2 * bs * WINDOW_ROTATION))
    }

    fn chain_dest_key(&self, app: AppId, slot: u64) -> Key {
        let bs = self.cfg.block_size as u64;
        Key(Self::app_base(app) + INDEP_BASE + 2 * bs * WINDOW_ROTATION + slot % (bs + 2))
    }

    /// The key of hotspot rank `rank` (shared space: all apps may touch
    /// it, like a popular record in a shared datastore).
    fn hotspot_key(rank: u64) -> Key {
        Key(SHARED_BASE + 100 + rank)
    }

    /// The genesis state covering every account any window can touch.
    #[must_use]
    pub fn genesis(&self) -> Vec<(Key, Value)> {
        let mut out = Vec::new();
        // Hot accounts: shared space and every app space, huge balance so
        // chains never drain them.
        for h in 0..HOT_POOL {
            out.push((Key(SHARED_BASE + h), Value::Int(i64::MAX / 2)));
        }
        if let Some(hotspot) = &self.cfg.hotspot {
            for rank in 0..hotspot.keys {
                out.push((Self::hotspot_key(rank), Value::Int(i64::MAX / 2)));
            }
        }
        for &app in &self.cfg.apps {
            for h in 0..HOT_POOL {
                out.push((Key(Self::app_base(app) + h), Value::Int(i64::MAX / 2)));
            }
            for slot in 0..self.pool_size() {
                out.push((
                    Key(Self::app_base(app) + INDEP_BASE + slot),
                    Value::Int(self.cfg.initial_balance),
                ));
            }
        }
        out
    }

    fn next_client_tx(&mut self, app: AppId, op: &AccountingOp) -> Transaction {
        let client = ClientId(self.next_client);
        self.next_client = (self.next_client + 1) % self.cfg.clients;
        let ts = &mut self.client_ts[client.0 as usize];
        *ts += 1;
        Transaction::new(app, client, *ts, op.rw_set(), op.encode())
    }

    /// Generates one window of `block_size` transactions with the exact
    /// configured contention (or Zipf-skewed hot accesses when the
    /// hotspot extension is enabled).
    pub fn window(&mut self) -> Vec<Transaction> {
        if self.cfg.hotspot.is_some() {
            return self.hotspot_window();
        }
        let w = self.window_idx;
        self.window_idx += 1;
        let n = self.cfg.block_size;
        let mut n_conflict = (self.cfg.contention * n as f64).round() as usize;
        // One transaction cannot conflict alone.
        if self.cfg.contention > 0.0 {
            n_conflict = n_conflict.clamp(2, n);
        }

        let apps = self.cfg.apps.clone();
        let chain_app = apps[(w % apps.len() as u64) as usize];
        let mut txs = Vec::with_capacity(n);

        // The conflict chain: every member reads+writes the window's hot
        // key, so members pairwise conflict (WW on the hot key).
        for c in 0..n_conflict {
            let app = if self.cfg.cross_app {
                apps[c % apps.len()]
            } else {
                chain_app
            };
            let hot = self.hot_key(w, chain_app);
            let dest = self.chain_dest_key(app, c as u64);
            let op = AccountingOp::Transfer {
                from: hot,
                to: dest,
                amount: 1,
            };
            txs.push(self.next_client_tx(app, &op));
        }

        // Independent transactions: unique account pairs per window slot.
        for i in 0..n - n_conflict {
            let app = apps[i % apps.len()];
            let from = self.indep_key(app, w, (2 * i) as u64);
            let to = self.indep_key(app, w, (2 * i + 1) as u64);
            let op = AccountingOp::Transfer { from, to, amount: 1 };
            txs.push(self.next_client_tx(app, &op));
        }

        // Shuffle so conflicting transactions are spread through the
        // block, as they would arrive from independent clients.
        txs.shuffle(&mut self.rng);
        txs
    }

    /// One window under the hotspot extension: each transaction is a
    /// transfer whose source is, with probability `fraction`, a
    /// Zipf-sampled hot record, and otherwise a fresh independent pair.
    fn hotspot_window(&mut self) -> Vec<Transaction> {
        use rand::Rng;

        let hotspot = self.cfg.hotspot.clone().expect("checked by window()");
        let zipf = crate::zipf::Zipf::new(hotspot.keys.max(1) as usize, hotspot.exponent);
        let w = self.window_idx;
        self.window_idx += 1;
        let n = self.cfg.block_size;
        let apps = self.cfg.apps.clone();
        let mut txs = Vec::with_capacity(n);
        for i in 0..n {
            let app = apps[i % apps.len()];
            let hot = self.rng.gen::<f64>() < hotspot.fraction;
            let op = if hot {
                let rank = zipf.sample(&mut self.rng) as u64;
                AccountingOp::Transfer {
                    from: Self::hotspot_key(rank),
                    to: self.chain_dest_key(app, i as u64),
                    amount: 1,
                }
            } else {
                AccountingOp::Transfer {
                    from: self.indep_key(app, w, (2 * i) as u64),
                    to: self.indep_key(app, w, (2 * i + 1) as u64),
                    amount: 1,
                }
            };
            txs.push(self.next_client_tx(app, &op));
        }
        txs
    }

    /// Generates `count` transactions by concatenating windows (the tail
    /// window is truncated).
    pub fn take_txs(&mut self, count: usize) -> Vec<Transaction> {
        let mut out = Vec::with_capacity(count);
        while out.len() < count {
            let mut window = self.window();
            let need = count - out.len();
            window.truncate(need);
            out.append(&mut window);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use parblock_depgraph::{ConflictStats, DependencyGraph, DependencyMode, ExecutionLayers};
    use parblock_types::{Block, BlockNumber, Hash32};

    use super::*;

    fn stats_for(contention: f64, cross_app: bool, block_size: usize) -> (ConflictStats, usize) {
        let mut gen = WorkloadGen::new(WorkloadConfig {
            contention,
            cross_app,
            block_size,
            ..WorkloadConfig::default()
        });
        let txs = gen.window();
        let n = txs.len();
        let block = Block::new(BlockNumber(1), Hash32::ZERO, txs);
        let g = DependencyGraph::build(&block, DependencyMode::Full);
        (ConflictStats::compute(&g), n)
    }

    #[test]
    fn zero_contention_has_no_edges() {
        let (stats, n) = stats_for(0.0, false, 60);
        assert_eq!(n, 60);
        assert_eq!(stats.edges, 0);
        assert_eq!(stats.conflicting_fraction, 0.0);
        assert_eq!(stats.critical_path, 1);
    }

    #[test]
    fn contention_dial_is_respected() {
        for (dial, expect) in [(0.2, 0.2), (0.8, 0.8)] {
            let (stats, _) = stats_for(dial, false, 100);
            assert!(
                (stats.conflicting_fraction - expect).abs() < 0.05,
                "dial {dial}: got {}",
                stats.conflicting_fraction
            );
        }
    }

    #[test]
    fn full_contention_builds_a_chain() {
        let (stats, n) = stats_for(1.0, false, 50);
        assert_eq!(stats.critical_path, n, "dependency graph must be a chain");
        assert!((stats.conflicting_fraction - 1.0).abs() < 1e-9);
    }

    #[test]
    fn intra_app_contention_has_no_cross_app_edges() {
        let (stats, _) = stats_for(0.8, false, 90);
        assert_eq!(stats.cross_app_edge_fraction, 0.0);
    }

    #[test]
    fn cross_app_contention_produces_cross_app_edges() {
        let (stats, _) = stats_for(0.8, true, 90);
        assert!(stats.cross_app_edge_fraction > 0.5);
    }

    #[test]
    fn transactions_are_valid_against_genesis() {
        use parblock_contracts::{AccountingContract, SmartContract};
        use parblock_ledger::KvState;

        let mut gen = WorkloadGen::new(WorkloadConfig {
            contention: 0.5,
            block_size: 40,
            ..WorkloadConfig::default()
        });
        let state = KvState::with_genesis(gen.genesis());
        let contract = AccountingContract::new(AppId(0));
        for tx in gen.window() {
            let outcome = contract.execute(&tx, &state);
            assert!(outcome.is_commit(), "{tx:?}: {outcome:?}");
        }
    }

    #[test]
    fn client_timestamps_are_unique_per_client() {
        // The in-stream order is shuffled, but each client's timestamps
        // must be distinct (exactly-once semantics rest on them).
        let mut gen = WorkloadGen::new(WorkloadConfig {
            clients: 4,
            block_size: 30,
            ..WorkloadConfig::default()
        });
        let mut seen = std::collections::HashSet::new();
        for tx in gen.take_txs(120) {
            assert!(seen.insert(tx.id()), "duplicate {:?}", tx.id());
        }
    }

    #[test]
    fn take_txs_returns_exact_count() {
        let mut gen = WorkloadGen::new(WorkloadConfig {
            block_size: 7,
            ..WorkloadConfig::default()
        });
        assert_eq!(gen.take_txs(20).len(), 20);
    }

    #[test]
    fn windows_use_rotating_hot_keys() {
        let mut gen = WorkloadGen::new(WorkloadConfig {
            contention: 1.0,
            block_size: 10,
            ..WorkloadConfig::default()
        });
        let w1 = gen.window();
        let w2 = gen.window();
        let hot = |txs: &[Transaction]| {
            txs.iter()
                .flat_map(|t| t.rw_set().writes().iter().copied())
                .min()
                .unwrap()
        };
        // Different windows rotate within the hot pool (apps also rotate).
        assert_ne!(hot(&w1), hot(&w2));
    }

    #[test]
    fn layers_match_contention_shape() {
        let mut gen = WorkloadGen::new(WorkloadConfig {
            contention: 0.5,
            block_size: 40,
            ..WorkloadConfig::default()
        });
        let block = Block::new(BlockNumber(1), Hash32::ZERO, gen.window());
        let g = DependencyGraph::build(&block, DependencyMode::Reduced);
        let layers = ExecutionLayers::compute(&g);
        // 20 chained + 20 independent: critical path = chain length.
        assert_eq!(layers.critical_path(), 20);
    }

    #[test]
    fn hotspot_mode_produces_skewed_conflicts() {
        let mut gen = WorkloadGen::new(WorkloadConfig {
            hotspot: Some(HotspotConfig {
                keys: 8,
                exponent: 1.2,
                fraction: 0.5,
            }),
            block_size: 200,
            ..WorkloadConfig::default()
        });
        let txs = gen.window();
        assert_eq!(txs.len(), 200);
        let block = Block::new(BlockNumber(1), Hash32::ZERO, txs);
        let g = DependencyGraph::build(&block, DependencyMode::Full);
        let stats = ConflictStats::compute(&g);
        // Roughly half the transactions hit the hot set and conflict.
        assert!(
            (0.3..0.7).contains(&stats.conflicting_fraction),
            "{stats:?}"
        );
        // Rank 0 must be the most-touched hot key.
        let hot_counts: std::collections::HashMap<u64, usize> = block
            .transactions()
            .iter()
            .flat_map(|t| t.rw_set().reads().iter().copied())
            .filter(|k| (100..108).contains(&k.0))
            .fold(std::collections::HashMap::new(), |mut acc, k| {
                *acc.entry(k.0).or_default() += 1;
                acc
            });
        let rank0 = hot_counts.get(&100).copied().unwrap_or(0);
        let rank7 = hot_counts.get(&107).copied().unwrap_or(0);
        assert!(rank0 > rank7, "zipf head {rank0} vs tail {rank7}");
    }

    #[test]
    fn hotspot_transactions_are_valid_against_genesis() {
        use parblock_contracts::{AccountingContract, SmartContract};
        use parblock_ledger::KvState;

        let mut gen = WorkloadGen::new(WorkloadConfig {
            hotspot: Some(HotspotConfig::default()),
            block_size: 50,
            ..WorkloadConfig::default()
        });
        let state = KvState::with_genesis(gen.genesis());
        let contract = AccountingContract::new(AppId(0));
        for tx in gen.window() {
            assert!(contract.execute(&tx, &state).is_commit());
        }
    }

    #[test]
    #[should_panic(expected = "contention must be in [0, 1]")]
    fn invalid_contention_panics() {
        let _ = WorkloadGen::new(WorkloadConfig {
            contention: 1.5,
            ..WorkloadConfig::default()
        });
    }
}
