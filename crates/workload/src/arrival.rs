//! Deterministic arrival-process generators for open-loop load
//! (DESIGN.md §13).
//!
//! An [`ArrivalGen`] turns an [`ArrivalProcess`] + target rate + seed
//! into the *intended* arrival schedule of an open-loop driver: a
//! monotone stream of offsets from run start. The schedule is a pure
//! function of its inputs — the threaded saturation harness and the
//! virtual-clock simulator derive bit-identical schedules from the same
//! seed, which is what makes sweep results reproducible.
//!
//! # Examples
//!
//! ```
//! use std::time::Duration;
//! use parblock_types::ArrivalProcess;
//! use parblock_workload::ArrivalGen;
//!
//! let mut gen = ArrivalGen::new(ArrivalProcess::Uniform, 1_000.0, 42);
//! assert_eq!(gen.next_offset(), Duration::ZERO);
//! assert_eq!(gen.next_offset(), Duration::from_millis(1));
//! ```

use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use parblock_types::ArrivalProcess;

/// Streaming generator of intended arrival offsets (from run start) for
/// one target rate. See the module docs.
#[derive(Debug)]
pub struct ArrivalGen {
    process: ArrivalProcess,
    /// Uniform spacing in whole nanoseconds — `(1e9 / rate) as u64`,
    /// kept in this exact truncated form because the deterministic
    /// simulator's historical schedules used it and pinned seeds replay
    /// against it.
    interval_ns: u64,
    rate_tps: f64,
    rng: StdRng,
    idx: u64,
    /// Poisson accumulator: intended offset of the *next* arrival, in
    /// fractional nanoseconds.
    next_ns: f64,
}

impl ArrivalGen {
    /// Creates a generator.
    ///
    /// # Panics
    ///
    /// Panics when `rate_tps` is not finite and positive, or when a
    /// burst process has a zero period or a duty cycle outside `(0, 1]`.
    #[must_use]
    pub fn new(process: ArrivalProcess, rate_tps: f64, seed: u64) -> Self {
        assert!(
            rate_tps.is_finite() && rate_tps > 0.0,
            "arrival rate must be positive"
        );
        if let ArrivalProcess::Burst { period, duty } = process {
            assert!(!period.is_zero(), "burst period must be positive");
            assert!(
                duty > 0.0 && duty <= 1.0,
                "burst duty cycle must be in (0, 1]"
            );
        }
        ArrivalGen {
            process,
            interval_ns: (1e9 / rate_tps) as u64,
            rate_tps,
            rng: StdRng::seed_from_u64(seed),
            idx: 0,
            next_ns: 0.0,
        }
    }

    /// The process this generator samples.
    #[must_use]
    pub fn process(&self) -> ArrivalProcess {
        self.process
    }

    /// The intended offset of the next arrival (monotone non-decreasing).
    pub fn next_offset(&mut self) -> Duration {
        let i = self.idx;
        self.idx += 1;
        match self.process {
            ArrivalProcess::Uniform => {
                Duration::from_nanos(self.interval_ns.saturating_mul(i))
            }
            ArrivalProcess::Poisson => {
                let offset = Duration::from_nanos(self.next_ns as u64);
                // Inverse-CDF exponential gap with mean 1/rate; `1 - u`
                // keeps ln's argument in (0, 1].
                let u: f64 = self.rng.gen();
                self.next_ns += -(1.0 - u).ln() * 1e9 / self.rate_tps;
                offset
            }
            ArrivalProcess::Burst { period, duty } => {
                let period_ns = period.as_nanos() as u64;
                let per_period = ((self.rate_tps * period.as_secs_f64()).round() as u64).max(1);
                let cycle = i / per_period;
                let slot = i % per_period;
                let on_ns = (period_ns as f64 * duty) as u64;
                Duration::from_nanos(
                    cycle.saturating_mul(period_ns) + slot * (on_ns / per_period),
                )
            }
        }
    }

    /// Every arrival with an intended offset strictly below `horizon`,
    /// in order. The schedule of a fixed-duration run.
    pub fn take_until(&mut self, horizon: Duration) -> Vec<Duration> {
        let mut out = Vec::new();
        loop {
            let before = self.clone_state();
            let offset = self.next_offset();
            if offset >= horizon {
                self.restore_state(before);
                return out;
            }
            out.push(offset);
        }
    }

    fn clone_state(&self) -> (u64, f64, StdRng) {
        (self.idx, self.next_ns, self.rng.clone())
    }

    fn restore_state(&mut self, state: (u64, f64, StdRng)) {
        self.idx = state.0;
        self.next_ns = state.1;
        self.rng = state.2;
    }
}

impl Iterator for ArrivalGen {
    type Item = Duration;

    fn next(&mut self) -> Option<Duration> {
        Some(self.next_offset())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_matches_the_simulators_closed_form() {
        // The deterministic simulator has always scheduled arrival `i`
        // at `(1e9 / rate) as u64 * i` nanoseconds; pinned exploration
        // seeds replay against that schedule, so Uniform must reproduce
        // it bit-for-bit.
        for rate in [333.0, 1_500.0, 20_000.0] {
            let mut gen = ArrivalGen::new(ArrivalProcess::Uniform, rate, 7);
            let interval_ns = (1e9 / rate) as u64;
            for i in 0..50u64 {
                assert_eq!(
                    gen.next_offset(),
                    Duration::from_nanos(interval_ns * i),
                    "rate {rate}, arrival {i}"
                );
            }
        }
    }

    #[test]
    fn poisson_is_seeded_monotone_and_hits_the_mean_rate() {
        let offsets: Vec<Duration> =
            ArrivalGen::new(ArrivalProcess::Poisson, 10_000.0, 11).take(20_000).collect();
        let again: Vec<Duration> =
            ArrivalGen::new(ArrivalProcess::Poisson, 10_000.0, 11).take(20_000).collect();
        assert_eq!(offsets, again, "same seed, same schedule");
        let other: Vec<Duration> =
            ArrivalGen::new(ArrivalProcess::Poisson, 10_000.0, 12).take(20_000).collect();
        assert_ne!(offsets, other, "different seed explores different gaps");
        assert!(offsets.windows(2).all(|w| w[0] <= w[1]), "monotone");
        assert_eq!(offsets[0], Duration::ZERO, "first arrival at run start");
        // 20k samples at 10k tps ≈ 2 s of schedule; the sample mean of
        // the exponential gaps concentrates within a few percent.
        let span = offsets.last().unwrap().as_secs_f64();
        let achieved = (offsets.len() - 1) as f64 / span;
        assert!(
            (achieved - 10_000.0).abs() / 10_000.0 < 0.05,
            "mean rate {achieved}"
        );
    }

    #[test]
    fn burst_packs_arrivals_into_the_duty_window() {
        let period = Duration::from_millis(10);
        let duty = 0.25;
        let mut gen = ArrivalGen::new(
            ArrivalProcess::Burst { period, duty },
            5_000.0,
            3,
        );
        let offsets = gen.take_until(Duration::from_millis(100));
        // 5k tps over 100 ms ≈ 500 arrivals, 50 per 10 ms period.
        assert!((450..=550).contains(&offsets.len()), "{}", offsets.len());
        for offset in &offsets {
            let in_period = offset.as_nanos() % period.as_nanos();
            assert!(
                in_period < (period.as_nanos() as f64 * duty) as u128,
                "arrival at {offset:?} lands outside the on-window"
            );
        }
        assert!(offsets.windows(2).all(|w| w[0] <= w[1]), "monotone");
    }

    #[test]
    fn take_until_is_exclusive_and_resumable() {
        let mut gen = ArrivalGen::new(ArrivalProcess::Uniform, 1_000.0, 0);
        let first = gen.take_until(Duration::from_millis(10));
        assert_eq!(first.len(), 10, "arrivals 0..10 ms at 1 ms spacing");
        assert_eq!(*first.last().unwrap(), Duration::from_millis(9));
        // The horizon arrival was peeked, not consumed.
        assert_eq!(gen.next_offset(), Duration::from_millis(10));
    }

    #[test]
    fn take_until_counts_track_the_offered_rate() {
        for process in [
            ArrivalProcess::Uniform,
            ArrivalProcess::Poisson,
            ArrivalProcess::default_burst(),
        ] {
            let mut gen = ArrivalGen::new(process, 2_000.0, 5);
            let n = gen.take_until(Duration::from_secs(2)).len() as f64;
            let offered = 2_000.0 * 2.0;
            assert!(
                (n - offered).abs() / offered < 0.05,
                "{process}: {n} arrivals for {offered} offered"
            );
        }
    }

    #[test]
    #[should_panic(expected = "arrival rate must be positive")]
    fn zero_rate_panics() {
        let _ = ArrivalGen::new(ArrivalProcess::Uniform, 0.0, 0);
    }

    #[test]
    #[should_panic(expected = "burst duty cycle must be in (0, 1]")]
    fn invalid_duty_panics() {
        let _ = ArrivalGen::new(
            ArrivalProcess::Burst {
                period: Duration::from_millis(10),
                duty: 0.0,
            },
            100.0,
            0,
        );
    }
}
