//! Property-based tests for the dependency-graph invariants listed in
//! DESIGN.md §6.

use proptest::prelude::*;

use parblock_depgraph::{
    DependencyGraph, DependencyMode, ExecutionLayers, OpGraph, ReadyTracker, StreamingBuilder,
};
use parblock_types::{AppId, Block, BlockNumber, ClientId, Hash32, Key, RwSet, SeqNo, Transaction};

/// Strategy: a block of up to `max_txns` transactions over a small key
/// space (small keys force conflicts) across up to 3 applications.
fn arb_block(max_txns: usize, key_space: u64) -> impl Strategy<Value = Block> {
    let tx = (
        0u16..3,
        proptest::collection::btree_set(0..key_space, 0..4),
        proptest::collection::btree_set(0..key_space, 0..4),
    );
    proptest::collection::vec(tx, 0..=max_txns).prop_map(|specs| {
        let txs = specs
            .into_iter()
            .enumerate()
            .map(|(i, (app, reads, writes))| {
                let rw = RwSet::new(
                    reads.into_iter().map(Key),
                    writes.into_iter().map(Key),
                );
                Transaction::new(AppId(app), ClientId(1), i as u64, rw, vec![])
            })
            .collect();
        Block::new(BlockNumber(1), Hash32::ZERO, txs)
    })
}

/// Feeds a block through a [`StreamingBuilder`] the way the streaming
/// block cutter does, returning the emitted graph.
fn stream_build(block: &Block, mode: DependencyMode) -> DependencyGraph {
    let mut builder = StreamingBuilder::new(mode);
    for tx in block.transactions() {
        builder.observe(tx);
    }
    builder.finish()
}

/// Transitive closure as a boolean matrix (positions are topologically
/// ordered, so one forward pass suffices).
fn closure(graph: &DependencyGraph) -> Vec<Vec<bool>> {
    let n = graph.len();
    let mut reach = vec![vec![false; n]; n];
    for j in 0..n {
        for &p in graph.predecessors(SeqNo(j as u32)) {
            let p = p.0 as usize;
            reach[p][j] = true;
            for row in &mut reach {
                if row[p] {
                    row[j] = true;
                }
            }
        }
    }
    reach
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every edge goes from an earlier to a later timestamp (DAG by
    /// construction), in every mode.
    #[test]
    fn edges_point_forward(block in arb_block(24, 8)) {
        for mode in [DependencyMode::Full, DependencyMode::Reduced, DependencyMode::MultiVersion] {
            let g = DependencyGraph::build(&block, mode);
            for (i, j) in g.edges() {
                prop_assert!(i < j, "{mode:?}: edge ({i:?},{j:?}) not forward");
            }
        }
    }

    /// The reduced graph has the same transitive closure as the full
    /// graph: executors get identical ordering constraints.
    #[test]
    fn reduced_closure_equals_full_closure(block in arb_block(16, 5)) {
        let full = DependencyGraph::build(&block, DependencyMode::Full);
        let reduced = DependencyGraph::build(&block, DependencyMode::Reduced);
        prop_assert_eq!(closure(&full), closure(&reduced));
    }

    /// Reduced is a subgraph of full, and multi-version is a subgraph of
    /// full.
    #[test]
    fn subgraph_relations(block in arb_block(20, 6)) {
        let full = DependencyGraph::build(&block, DependencyMode::Full);
        for mode in [DependencyMode::Reduced, DependencyMode::MultiVersion] {
            let g = DependencyGraph::build(&block, mode);
            for (i, j) in g.edges() {
                prop_assert!(full.has_edge(i, j), "{mode:?} edge ({i:?},{j:?}) not in full");
            }
        }
    }

    /// The full graph contains an edge for a pair iff their rw-sets
    /// conflict — the literal §III-A definition.
    #[test]
    fn full_matches_pairwise_definition(block in arb_block(16, 5)) {
        let g = DependencyGraph::build(&block, DependencyMode::Full);
        let txs = block.transactions();
        for j in 0..txs.len() {
            for i in 0..j {
                let conflict = txs[i].rw_set().conflicts_with(txs[j].rw_set());
                prop_assert_eq!(
                    g.has_edge(SeqNo(i as u32), SeqNo(j as u32)),
                    conflict,
                    "pair ({}, {})", i, j
                );
            }
        }
    }

    /// Draining the ReadyTracker yields every transaction exactly once,
    /// and never yields a transaction before all its predecessors.
    #[test]
    fn tracker_respects_partial_order(block in arb_block(24, 6)) {
        let g = DependencyGraph::build(&block, DependencyMode::Reduced);
        let mut tracker = ReadyTracker::new(&g);
        let mut done: Vec<bool> = vec![false; g.len()];
        let mut order = Vec::new();
        loop {
            let ready = tracker.take_ready();
            if ready.is_empty() {
                break;
            }
            for x in ready {
                for &p in g.predecessors(x) {
                    prop_assert!(done[p.0 as usize], "{x:?} ready before pred {p:?}");
                }
                done[x.0 as usize] = true;
                order.push(x);
                tracker.complete(x);
            }
        }
        prop_assert!(tracker.is_done());
        prop_assert_eq!(order.len(), g.len());
    }

    /// Layer decomposition: layers partition the block; every transaction
    /// sits strictly below its successors; critical path matches the
    /// number of layers.
    #[test]
    fn layers_are_a_valid_schedule(block in arb_block(24, 6)) {
        let g = DependencyGraph::build(&block, DependencyMode::Full);
        let layers = ExecutionLayers::compute(&g);
        let mut level = vec![usize::MAX; g.len()];
        let mut count = 0;
        for (k, layer) in layers.layers().iter().enumerate() {
            for &x in layer {
                level[x.0 as usize] = k;
                count += 1;
            }
        }
        prop_assert_eq!(count, g.len());
        for (i, j) in g.edges() {
            prop_assert!(level[i.0 as usize] < level[j.0 as usize]);
        }
    }

    /// The operation-level graph is consistent, acyclic (forward edges by
    /// construction) and never has a *longer* transaction critical path
    /// than the transaction-level graph — the DGCC-style refinement can
    /// only expose more parallelism.
    #[test]
    fn op_graph_refines_tx_graph(block in arb_block(20, 6)) {
        let op_graph = OpGraph::build(&block);
        prop_assert!(op_graph.is_consistent());
        let tx_graph = DependencyGraph::build(&block, DependencyMode::Full);
        let tx_cp = ExecutionLayers::compute(&tx_graph).critical_path();
        prop_assert!(
            op_graph.tx_critical_path() <= tx_cp.max(1),
            "op-level {} > tx-level {}",
            op_graph.tx_critical_path(),
            tx_cp
        );
    }

    /// Incremental ≡ batch, edge sets: for `Reduced` and `MultiVersion`
    /// the streaming builder emits exactly the batch builder's graph
    /// (apps, edges, and mode all equal).
    #[test]
    fn streaming_equals_batch_edge_sets(block in arb_block(20, 6)) {
        for mode in [DependencyMode::Reduced, DependencyMode::MultiVersion] {
            let streamed = stream_build(&block, mode);
            let batch = DependencyGraph::build(&block, mode);
            prop_assert_eq!(streamed, batch, "{:?}", mode);
        }
    }

    /// Incremental ≡ batch, transitive closure: in every mode —
    /// including `Full`, where the streaming builder emits the
    /// closure-equivalent subset instead of all Ω(n²) pairwise edges —
    /// executors see the same partial order.
    #[test]
    fn streaming_closure_equals_batch_closure(block in arb_block(16, 5)) {
        for mode in [DependencyMode::Full, DependencyMode::Reduced, DependencyMode::MultiVersion] {
            let streamed = stream_build(&block, mode);
            let batch = DependencyGraph::build(&block, mode);
            prop_assert_eq!(closure(&streamed), closure(&batch), "{:?}", mode);
        }
    }

    /// The streaming `Full` graph is a subgraph of the batch `Full`
    /// graph: it never invents an ordering constraint.
    #[test]
    fn streaming_full_is_subgraph_of_batch_full(block in arb_block(20, 6)) {
        let streamed = stream_build(&block, DependencyMode::Full);
        let full = DependencyGraph::build(&block, DependencyMode::Full);
        for (i, j) in streamed.edges() {
            prop_assert!(full.has_edge(i, j), "streamed edge ({i:?},{j:?}) not in full");
        }
    }

    /// Reusing one builder across consecutive blocks is equivalent to a
    /// fresh builder per block: `finish` fully resets the conflict index.
    #[test]
    fn streaming_builder_reuse_is_reset(first in arb_block(12, 4), second in arb_block(12, 4)) {
        for mode in [DependencyMode::Full, DependencyMode::Reduced, DependencyMode::MultiVersion] {
            let mut builder = StreamingBuilder::new(mode);
            for tx in first.transactions() {
                builder.observe(tx);
            }
            let _ = builder.finish();
            for tx in second.transactions() {
                builder.observe(tx);
            }
            let reused = builder.finish();
            prop_assert_eq!(reused, stream_build(&second, mode), "{:?}", mode);
        }
    }

    /// Conflict stats fraction is within [0, 1] and zero edges implies
    /// zero conflicting fraction.
    #[test]
    fn stats_sanity(block in arb_block(24, 8)) {
        use parblock_depgraph::ConflictStats;
        let g = DependencyGraph::build(&block, DependencyMode::Full);
        let s = ConflictStats::compute(&g);
        prop_assert!((0.0..=1.0).contains(&s.conflicting_fraction));
        prop_assert!((0.0..=1.0).contains(&s.cross_app_edge_fraction));
        if s.edges == 0 {
            prop_assert_eq!(s.conflicting_fraction, 0.0);
        }
        prop_assert!(s.critical_path <= s.txns);
    }
}
