//! Incremental dependency-graph construction over the transaction stream.
//!
//! The batch builders in [`crate::builder`] pay their whole cost at cut
//! time — in [`DependencyMode::Full`] that is an O(n²) pairwise sweep
//! executed *between* cutting a block and multicasting `NEWBLOCK`, which
//! is exactly the orderer-side load the paper blames for the Fig 5
//! throughput rolloff ("generating the dependency graph … increases the
//! load on the orderers", §IV-B).
//!
//! [`StreamingBuilder`] moves that work onto the ordered transaction
//! stream instead: each [`StreamingBuilder::observe`] updates a per-key
//! conflict index (last writer, readers since that write, and — for
//! multi-version rules — all writers) and appends the new transaction's
//! dependency edges. [`StreamingBuilder::finish`] then materialises the
//! [`DependencyGraph`] in time proportional to the pending block (its
//! vertices and accumulated edges), not the square of its size.
//!
//! Equivalence with the batch builders (property-tested, DESIGN.md §6):
//!
//! * [`DependencyMode::Reduced`] and [`DependencyMode::MultiVersion`] —
//!   the streaming edge set is **identical** to the batch edge set.
//! * [`DependencyMode::Full`] — emitting every conflicting pair is
//!   inherently Ω(n²) (all-writers-of-one-key blocks have that many
//!   edges), so the streaming builder emits the *closure-equivalent*
//!   last-writer/reader edge set instead: the transitive closure — and
//!   hence the partial order executors obey — is exactly the batch
//!   `Full` closure, with at most O(accesses) edges.

use std::collections::HashMap;

use parblock_types::{AppId, Key, SeqNo, Transaction};

use crate::builder::DependencyMode;
use crate::graph::DependencyGraph;

/// Per-key conflict index entry.
#[derive(Debug, Default)]
struct KeyIndex {
    /// The last transaction that wrote this key (single-version rules).
    last_writer: Option<SeqNo>,
    /// Readers since that write (single-version rules).
    readers_since_write: Vec<SeqNo>,
    /// Every writer of this key so far (multi-version rules: writes make
    /// versions, so *all* of them constrain a later reader).
    writers: Vec<SeqNo>,
}

/// Incrementally builds a block's dependency graph as transactions are
/// delivered, so cut time pays O(pending) instead of an O(n²) rebuild.
///
/// # Examples
///
/// ```
/// use parblock_depgraph::{DependencyGraph, DependencyMode, StreamingBuilder};
/// use parblock_types::{AppId, ClientId, Key, RwSet, SeqNo, Transaction};
///
/// let tx = |ts, rw| Transaction::new(AppId(0), ClientId(1), ts, rw, vec![]);
/// let mut builder = StreamingBuilder::new(DependencyMode::Reduced);
/// builder.observe(&tx(1, RwSet::write_only([Key(7)])));
/// builder.observe(&tx(2, RwSet::read_only([Key(7)])));
/// let graph = builder.finish();
/// assert!(graph.has_edge(SeqNo(0), SeqNo(1)));
/// // `finish` resets the index: the builder is ready for the next block.
/// assert!(builder.is_empty());
/// ```
#[derive(Debug)]
pub struct StreamingBuilder {
    mode: DependencyMode,
    apps: Vec<AppId>,
    edges: Vec<(SeqNo, SeqNo)>,
    keys: HashMap<Key, KeyIndex>,
}

impl StreamingBuilder {
    /// Creates an empty builder for `mode`.
    #[must_use]
    pub fn new(mode: DependencyMode) -> Self {
        StreamingBuilder {
            mode,
            apps: Vec::new(),
            edges: Vec::new(),
            keys: HashMap::new(),
        }
    }

    /// The dependency rules this builder applies.
    #[must_use]
    pub fn mode(&self) -> DependencyMode {
        self.mode
    }

    /// Number of transactions observed since the last [`Self::finish`].
    #[must_use]
    pub fn len(&self) -> usize {
        self.apps.len()
    }

    /// Whether no transaction has been observed since the last
    /// [`Self::finish`].
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.apps.is_empty()
    }

    /// Number of dependency edges accumulated so far (before adjacency
    /// deduplication; an upper bound on the finished graph's edge count).
    #[must_use]
    pub fn edge_upper_bound(&self) -> usize {
        self.edges.len()
    }

    /// Feeds the next transaction of the pending block, updating the
    /// conflict index and appending its dependency edges. Amortised cost
    /// is proportional to the transaction's accesses plus the edges it
    /// creates.
    pub fn observe(&mut self, tx: &Transaction) {
        let j = SeqNo(u32::try_from(self.apps.len()).expect("block exceeds u32 positions"));
        self.apps.push(tx.app());
        match self.mode {
            // `Full` and `Reduced` share the last-writer/reader rules;
            // `Full` differs from the batch builder only in emitting the
            // closure-equivalent subset (see the module docs).
            DependencyMode::Full | DependencyMode::Reduced => self.observe_single_version(tx, j),
            DependencyMode::MultiVersion => self.observe_multi_version(tx, j),
        }
    }

    /// Single-version rules, mirroring `builder::build_reduced` step for
    /// step so the streaming `Reduced` edge set matches the batch one
    /// exactly.
    fn observe_single_version(&mut self, tx: &Transaction, j: SeqNo) {
        // W→R: the last writer of each read key precedes us.
        for key in tx.rw_set().reads() {
            if let Some(index) = self.keys.get(key) {
                if let Some(w) = index.last_writer {
                    self.edges.push((w, j));
                }
            }
        }
        for key in tx.rw_set().writes() {
            let index = self.keys.entry(*key).or_default();
            // R→W: all readers since the last write precede us.
            for &r in &index.readers_since_write {
                if r != j {
                    self.edges.push((r, j));
                }
            }
            // W→W: the previous writer precedes us.
            if let Some(w) = index.last_writer {
                if w != j {
                    self.edges.push((w, j));
                }
            }
            index.last_writer = Some(j);
            index.readers_since_write.clear();
        }
        // Register reads after handling writes so a transaction that both
        // reads and writes a key does not self-depend.
        for key in tx.rw_set().reads() {
            let index = self.keys.entry(*key).or_default();
            if index.last_writer != Some(j) {
                index.readers_since_write.push(j);
            }
        }
    }

    /// Multi-version rules: only ω(Ti) ∩ ρ(Tj) forces `Ti ⤳ Tj`, and every
    /// earlier writer of a read key constrains the reader.
    fn observe_multi_version(&mut self, tx: &Transaction, j: SeqNo) {
        for key in tx.rw_set().reads() {
            if let Some(index) = self.keys.get(key) {
                for &w in &index.writers {
                    self.edges.push((w, j));
                }
            }
        }
        // Writes are registered after reads, so a read-modify-write
        // transaction never self-depends.
        for key in tx.rw_set().writes() {
            self.keys.entry(*key).or_default().writers.push(j);
        }
    }

    /// Emits the dependency graph of the observed transactions and resets
    /// the builder for the next block.
    ///
    /// Cost is O(vertices + accumulated edges) — the cut-time emission
    /// the orderer pays on its critical path; all pairwise work already
    /// happened inside [`Self::observe`].
    pub fn finish(&mut self) -> DependencyGraph {
        let apps = std::mem::take(&mut self.apps);
        let edges = std::mem::take(&mut self.edges);
        self.keys.clear();
        DependencyGraph::from_edges(apps, &edges, self.mode)
    }
}

#[cfg(test)]
mod tests {
    use parblock_types::{Block, BlockNumber, ClientId, Hash32, RwSet};

    use super::*;

    fn tx(i: u64, rw: RwSet) -> Transaction {
        Transaction::new(AppId(0), ClientId(1), i, rw, vec![])
    }

    fn stream(mode: DependencyMode, rw_sets: &[RwSet]) -> DependencyGraph {
        let mut builder = StreamingBuilder::new(mode);
        for (i, rw) in rw_sets.iter().enumerate() {
            builder.observe(&tx(i as u64, rw.clone()));
        }
        builder.finish()
    }

    fn batch(mode: DependencyMode, rw_sets: &[RwSet]) -> DependencyGraph {
        let txs = rw_sets
            .iter()
            .enumerate()
            .map(|(i, rw)| tx(i as u64, rw.clone()))
            .collect();
        DependencyGraph::build(&Block::new(BlockNumber(1), Hash32::ZERO, txs), mode)
    }

    fn k(raw: u64) -> Key {
        Key(raw)
    }

    #[test]
    fn reduced_streaming_equals_batch_on_write_chain() {
        let sets = vec![RwSet::write_only([k(1)]); 4];
        assert_eq!(
            stream(DependencyMode::Reduced, &sets),
            batch(DependencyMode::Reduced, &sets)
        );
    }

    #[test]
    fn multi_version_streaming_keeps_all_writer_edges() {
        // W(a), W(a), R(a): both writers constrain the reader.
        let sets = vec![
            RwSet::write_only([k(1)]),
            RwSet::write_only([k(1)]),
            RwSet::read_only([k(1)]),
        ];
        let g = stream(DependencyMode::MultiVersion, &sets);
        assert_eq!(g, batch(DependencyMode::MultiVersion, &sets));
        assert!(g.has_edge(SeqNo(0), SeqNo(2)));
        assert!(g.has_edge(SeqNo(1), SeqNo(2)));
        assert!(!g.has_edge(SeqNo(0), SeqNo(1)), "WW dropped under MV");
    }

    #[test]
    fn full_streaming_emits_closure_equivalent_subset() {
        // Three writers of one key: batch Full has 3 edges, streaming
        // Full emits the 2-edge chain with the same transitive closure.
        let sets = vec![RwSet::write_only([k(1)]); 3];
        let g = stream(DependencyMode::Full, &sets);
        assert_eq!(g.mode(), DependencyMode::Full);
        assert_eq!(g.edge_count(), 2);
        assert!(g.has_edge(SeqNo(0), SeqNo(1)));
        assert!(g.has_edge(SeqNo(1), SeqNo(2)));
        assert_eq!(batch(DependencyMode::Full, &sets).edge_count(), 3);
    }

    #[test]
    fn rmw_transaction_does_not_self_depend() {
        let sets = vec![RwSet::new([k(1)], [k(1)])];
        for mode in [
            DependencyMode::Full,
            DependencyMode::Reduced,
            DependencyMode::MultiVersion,
        ] {
            assert_eq!(stream(mode, &sets).edge_count(), 0, "{mode:?}");
        }
    }

    #[test]
    fn finish_resets_the_index_between_blocks() {
        let mut builder = StreamingBuilder::new(DependencyMode::Reduced);
        builder.observe(&tx(1, RwSet::write_only([k(9)])));
        builder.observe(&tx(2, RwSet::write_only([k(9)])));
        let first = builder.finish();
        assert_eq!(first.edge_count(), 1);
        assert!(builder.is_empty());
        assert_eq!(builder.edge_upper_bound(), 0);

        // Same key again: must not see block 1's writer.
        builder.observe(&tx(3, RwSet::read_only([k(9)])));
        let second = builder.finish();
        assert_eq!(second.len(), 1);
        assert_eq!(second.edge_count(), 0, "stale last-writer leaked across blocks");
    }

    #[test]
    fn empty_finish_yields_empty_graph() {
        let mut builder = StreamingBuilder::new(DependencyMode::Full);
        let g = builder.finish();
        assert!(g.is_empty());
        assert_eq!(g.edge_count(), 0);
    }
}
