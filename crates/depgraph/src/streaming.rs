//! Incremental dependency-graph construction over the transaction stream.
//!
//! The batch builders in [`crate::builder`] pay their whole cost at cut
//! time — in [`DependencyMode::Full`] that is an O(n²) pairwise sweep
//! executed *between* cutting a block and multicasting `NEWBLOCK`, which
//! is exactly the orderer-side load the paper blames for the Fig 5
//! throughput rolloff ("generating the dependency graph … increases the
//! load on the orderers", §IV-B).
//!
//! [`StreamingBuilder`] moves that work onto the ordered transaction
//! stream instead: each [`StreamingBuilder::observe`] updates a per-key
//! conflict index (last writer, readers since that write, and — for
//! multi-version rules — all writers) and appends the new transaction's
//! dependency edges. [`StreamingBuilder::finish`] then materialises the
//! [`DependencyGraph`] in time proportional to the pending block (its
//! vertices and accumulated edges), not the square of its size.
//!
//! Equivalence with the batch builders (property-tested, DESIGN.md §6):
//!
//! * [`DependencyMode::Reduced`] and [`DependencyMode::MultiVersion`] —
//!   the streaming edge set is **identical** to the batch edge set.
//! * [`DependencyMode::Full`] — emitting every conflicting pair is
//!   inherently Ω(n²) (all-writers-of-one-key blocks have that many
//!   edges), so the streaming builder emits the *closure-equivalent*
//!   last-writer/reader edge set instead: the transitive closure — and
//!   hence the partial order executors obey — is exactly the batch
//!   `Full` closure, with at most O(accesses) edges.

use std::collections::HashMap;

use parblock_types::{AppId, Key, SeqNo, Transaction};

use crate::builder::DependencyMode;
use crate::graph::DependencyGraph;

/// Per-key conflict index entry.
#[derive(Debug, Default)]
struct KeyIndex {
    /// The last transaction that wrote this key (single-version rules).
    last_writer: Option<SeqNo>,
    /// Readers since that write (single-version rules).
    readers_since_write: Vec<SeqNo>,
    /// Every writer of this key so far (multi-version rules: writes make
    /// versions, so *all* of them constrain a later reader).
    writers: Vec<SeqNo>,
}

/// Incrementally builds a block's dependency graph as transactions are
/// delivered, so cut time pays O(pending) instead of an O(n²) rebuild.
///
/// # Examples
///
/// ```
/// use parblock_depgraph::{DependencyGraph, DependencyMode, StreamingBuilder};
/// use parblock_types::{AppId, ClientId, Key, RwSet, SeqNo, Transaction};
///
/// let tx = |ts, rw| Transaction::new(AppId(0), ClientId(1), ts, rw, vec![]);
/// let mut builder = StreamingBuilder::new(DependencyMode::Reduced);
/// builder.observe(&tx(1, RwSet::write_only([Key(7)])));
/// builder.observe(&tx(2, RwSet::read_only([Key(7)])));
/// let graph = builder.finish();
/// assert!(graph.has_edge(SeqNo(0), SeqNo(1)));
/// // `finish` resets the index: the builder is ready for the next block.
/// assert!(builder.is_empty());
/// ```
#[derive(Debug)]
pub struct StreamingBuilder {
    mode: DependencyMode,
    apps: Vec<AppId>,
    edges: Vec<(SeqNo, SeqNo)>,
    keys: HashMap<Key, KeyIndex>,
}

impl StreamingBuilder {
    /// Creates an empty builder for `mode`.
    #[must_use]
    pub fn new(mode: DependencyMode) -> Self {
        StreamingBuilder {
            mode,
            apps: Vec::new(),
            edges: Vec::new(),
            keys: HashMap::new(),
        }
    }

    /// The dependency rules this builder applies.
    #[must_use]
    pub fn mode(&self) -> DependencyMode {
        self.mode
    }

    /// Number of transactions observed since the last [`Self::finish`].
    #[must_use]
    pub fn len(&self) -> usize {
        self.apps.len()
    }

    /// Whether no transaction has been observed since the last
    /// [`Self::finish`].
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.apps.is_empty()
    }

    /// Number of dependency edges accumulated so far (before adjacency
    /// deduplication; an upper bound on the finished graph's edge count).
    #[must_use]
    pub fn edge_upper_bound(&self) -> usize {
        self.edges.len()
    }

    /// Feeds the next transaction of the pending block, updating the
    /// conflict index and appending its dependency edges. Amortised cost
    /// is proportional to the transaction's accesses plus the edges it
    /// creates.
    pub fn observe(&mut self, tx: &Transaction) {
        let j = SeqNo(u32::try_from(self.apps.len()).expect("block exceeds u32 positions"));
        self.apps.push(tx.app());
        match self.mode {
            // `Full` and `Reduced` share the last-writer/reader rules;
            // `Full` differs from the batch builder only in emitting the
            // closure-equivalent subset (see the module docs).
            DependencyMode::Full | DependencyMode::Reduced => self.observe_single_version(tx, j),
            DependencyMode::MultiVersion => self.observe_multi_version(tx, j),
        }
    }

    /// Single-version rules, mirroring `builder::build_reduced` step for
    /// step so the streaming `Reduced` edge set matches the batch one
    /// exactly.
    fn observe_single_version(&mut self, tx: &Transaction, j: SeqNo) {
        // W→R: the last writer of each read key precedes us.
        for key in tx.rw_set().reads() {
            if let Some(index) = self.keys.get(key) {
                if let Some(w) = index.last_writer {
                    self.edges.push((w, j));
                }
            }
        }
        for key in tx.rw_set().writes() {
            let index = self.keys.entry(*key).or_default();
            // R→W: all readers since the last write precede us.
            for &r in &index.readers_since_write {
                if r != j {
                    self.edges.push((r, j));
                }
            }
            // W→W: the previous writer precedes us.
            if let Some(w) = index.last_writer {
                if w != j {
                    self.edges.push((w, j));
                }
            }
            index.last_writer = Some(j);
            index.readers_since_write.clear();
        }
        // Register reads after handling writes so a transaction that both
        // reads and writes a key does not self-depend.
        for key in tx.rw_set().reads() {
            let index = self.keys.entry(*key).or_default();
            if index.last_writer != Some(j) {
                index.readers_since_write.push(j);
            }
        }
    }

    /// Multi-version rules: only ω(Ti) ∩ ρ(Tj) forces `Ti ⤳ Tj`, and every
    /// earlier writer of a read key constrains the reader.
    fn observe_multi_version(&mut self, tx: &Transaction, j: SeqNo) {
        for key in tx.rw_set().reads() {
            if let Some(index) = self.keys.get(key) {
                // lint:allow(unordered-iter) — `index.writers` is a Vec in
                // observation order, not the `writers` map of PendingWriters
                for &w in &index.writers {
                    self.edges.push((w, j));
                }
            }
        }
        // Writes are registered after reads, so a read-modify-write
        // transaction never self-depends.
        for key in tx.rw_set().writes() {
            self.keys.entry(*key).or_default().writers.push(j);
        }
    }

    /// Emits the dependency graph of the observed transactions and resets
    /// the builder for the next block.
    ///
    /// Cost is O(vertices + accumulated edges) — the cut-time emission
    /// the orderer pays on its critical path; all pairwise work already
    /// happened inside [`Self::observe`].
    pub fn finish(&mut self) -> DependencyGraph {
        let apps = std::mem::take(&mut self.apps);
        let edges = std::mem::take(&mut self.edges);
        self.keys.clear();
        DependencyGraph::from_edges(apps, &edges, self.mode)
    }
}

/// A conflict index **retained across blocks**: the cross-block companion
/// of [`StreamingBuilder`] that executors use to pipeline block `n + 1`
/// over the still-running tail of block `n` (§III-A's multi-version
/// adaptation: reads are directed to the correct version by log position,
/// so only *writer → later-transaction* orderings cross block boundaries).
///
/// The index tracks, per key, the **pending writers** — transactions of
/// admitted blocks whose writes have not yet been applied to the
/// executor's (multi-version) state. Admitting a block returns, per
/// position, the pending writers of earlier blocks that touch the
/// position's read or write keys:
///
/// * a *read* key dependency positions the reader after the writer whose
///   version it must observe (W→R);
/// * a *write* key dependency keeps the per-key writer chain transitive
///   across blocks (W→W), so a reader released by an **aborted** last
///   writer still finds the previous version applied.
///
/// Read-before-write orderings (R→W) are deliberately **not** emitted:
/// under multi-version state a later writer creates a new version instead
/// of clobbering the one an in-flight reader is positioned at — that is
/// the concurrency the pipeline exists to harvest.
///
/// In-block conflicts are the [`DependencyGraph`]'s job; admission
/// computes dependencies against the index state *before* registering the
/// new block's writers, so no in-block edge is ever duplicated.
///
/// # Examples
///
/// ```
/// use parblock_depgraph::CrossBlockIndex;
/// use parblock_types::{AppId, ClientId, Key, RwSet, SeqNo, Transaction};
///
/// let tx = |ts, rw| Transaction::new(AppId(0), ClientId(1), ts, rw, vec![]);
/// let mut index = CrossBlockIndex::new();
/// let deps = index.admit_block(1, &[tx(1, RwSet::write_only([Key(7)]))]);
/// assert!(deps[0].is_empty(), "block 1 has no earlier blocks");
/// // Block 2 reads the key block 1 still holds pending.
/// let deps = index.admit_block(2, &[tx(2, RwSet::read_only([Key(7)]))]);
/// assert_eq!(deps[0], vec![(1, SeqNo(0))]);
/// // Once the writer's result is applied, nothing is pending.
/// index.complete(1, SeqNo(0));
/// assert_eq!(index.pending_writers(), 0);
/// ```
#[derive(Debug, Default)]
pub struct CrossBlockIndex {
    /// Pending writers per key, ascending by `(block, seq)`.
    writers: HashMap<Key, Vec<(u64, SeqNo)>>,
    /// Reverse map: pending writer → keys it writes (for O(writes)
    /// removal on completion).
    by_writer: HashMap<(u64, SeqNo), Vec<Key>>,
}

impl CrossBlockIndex {
    /// Creates an empty index.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of writers whose completion the index is still awaiting.
    #[must_use]
    pub fn pending_writers(&self) -> usize {
        self.by_writer.len()
    }

    /// Admits the transactions of block `block` (positions follow slice
    /// order) and returns, per position, its cross-block dependencies:
    /// the pending writers of **earlier** blocks touching the position's
    /// read or write keys, ascending and deduplicated.
    ///
    /// Blocks must be admitted in ascending order; every returned
    /// dependency must eventually be retired via
    /// [`CrossBlockIndex::complete`].
    pub fn admit_block(&mut self, block: u64, txs: &[Transaction]) -> Vec<Vec<(u64, SeqNo)>> {
        // Pass 1: dependencies against the pre-existing (earlier-block)
        // index state only.
        let mut deps = Vec::with_capacity(txs.len());
        for tx in txs {
            let mut mine: Vec<(u64, SeqNo)> = Vec::new();
            for key in tx.rw_set().reads().iter().chain(tx.rw_set().writes()) {
                if let Some(pending) = self.writers.get(key) {
                    mine.extend(pending.iter().copied());
                }
            }
            mine.sort_unstable();
            mine.dedup();
            debug_assert!(mine.iter().all(|&(b, _)| b < block));
            deps.push(mine);
        }
        // Pass 2: register this block's writers as pending.
        for (i, tx) in txs.iter().enumerate() {
            let seq = SeqNo(u32::try_from(i).expect("block exceeds u32 positions"));
            let write_keys: Vec<Key> = tx.rw_set().writes().iter().copied().collect();
            if write_keys.is_empty() {
                continue;
            }
            for key in &write_keys {
                self.writers.entry(*key).or_default().push((block, seq));
            }
            self.by_writer.insert((block, seq), write_keys);
        }
        deps
    }

    /// Retires a pending writer: its writes are now applied to the state
    /// (or it aborted and never will write). Idempotent; transactions
    /// that write nothing were never pending and retire as a no-op.
    pub fn complete(&mut self, block: u64, seq: SeqNo) {
        let Some(keys) = self.by_writer.remove(&(block, seq)) else {
            return;
        };
        // lint:allow(unordered-iter) — `keys` is this writer's Vec<Key> in
        // declaration order, not the StreamingBuilder conflict-index map
        for key in keys {
            if let Some(pending) = self.writers.get_mut(&key) {
                pending.retain(|&w| w != (block, seq));
                if pending.is_empty() {
                    self.writers.remove(&key);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use parblock_types::{Block, BlockNumber, ClientId, Hash32, RwSet};

    use super::*;

    fn tx(i: u64, rw: RwSet) -> Transaction {
        Transaction::new(AppId(0), ClientId(1), i, rw, vec![])
    }

    fn stream(mode: DependencyMode, rw_sets: &[RwSet]) -> DependencyGraph {
        let mut builder = StreamingBuilder::new(mode);
        for (i, rw) in rw_sets.iter().enumerate() {
            builder.observe(&tx(i as u64, rw.clone()));
        }
        builder.finish()
    }

    fn batch(mode: DependencyMode, rw_sets: &[RwSet]) -> DependencyGraph {
        let txs = rw_sets
            .iter()
            .enumerate()
            .map(|(i, rw)| tx(i as u64, rw.clone()))
            .collect();
        DependencyGraph::build(&Block::new(BlockNumber(1), Hash32::ZERO, txs), mode)
    }

    fn k(raw: u64) -> Key {
        Key(raw)
    }

    #[test]
    fn reduced_streaming_equals_batch_on_write_chain() {
        let sets = vec![RwSet::write_only([k(1)]); 4];
        assert_eq!(
            stream(DependencyMode::Reduced, &sets),
            batch(DependencyMode::Reduced, &sets)
        );
    }

    #[test]
    fn multi_version_streaming_keeps_all_writer_edges() {
        // W(a), W(a), R(a): both writers constrain the reader.
        let sets = vec![
            RwSet::write_only([k(1)]),
            RwSet::write_only([k(1)]),
            RwSet::read_only([k(1)]),
        ];
        let g = stream(DependencyMode::MultiVersion, &sets);
        assert_eq!(g, batch(DependencyMode::MultiVersion, &sets));
        assert!(g.has_edge(SeqNo(0), SeqNo(2)));
        assert!(g.has_edge(SeqNo(1), SeqNo(2)));
        assert!(!g.has_edge(SeqNo(0), SeqNo(1)), "WW dropped under MV");
    }

    #[test]
    fn full_streaming_emits_closure_equivalent_subset() {
        // Three writers of one key: batch Full has 3 edges, streaming
        // Full emits the 2-edge chain with the same transitive closure.
        let sets = vec![RwSet::write_only([k(1)]); 3];
        let g = stream(DependencyMode::Full, &sets);
        assert_eq!(g.mode(), DependencyMode::Full);
        assert_eq!(g.edge_count(), 2);
        assert!(g.has_edge(SeqNo(0), SeqNo(1)));
        assert!(g.has_edge(SeqNo(1), SeqNo(2)));
        assert_eq!(batch(DependencyMode::Full, &sets).edge_count(), 3);
    }

    #[test]
    fn rmw_transaction_does_not_self_depend() {
        let sets = vec![RwSet::new([k(1)], [k(1)])];
        for mode in [
            DependencyMode::Full,
            DependencyMode::Reduced,
            DependencyMode::MultiVersion,
        ] {
            assert_eq!(stream(mode, &sets).edge_count(), 0, "{mode:?}");
        }
    }

    #[test]
    fn finish_resets_the_index_between_blocks() {
        let mut builder = StreamingBuilder::new(DependencyMode::Reduced);
        builder.observe(&tx(1, RwSet::write_only([k(9)])));
        builder.observe(&tx(2, RwSet::write_only([k(9)])));
        let first = builder.finish();
        assert_eq!(first.edge_count(), 1);
        assert!(builder.is_empty());
        assert_eq!(builder.edge_upper_bound(), 0);

        // Same key again: must not see block 1's writer.
        builder.observe(&tx(3, RwSet::read_only([k(9)])));
        let second = builder.finish();
        assert_eq!(second.len(), 1);
        assert_eq!(second.edge_count(), 0, "stale last-writer leaked across blocks");
    }

    #[test]
    fn empty_finish_yields_empty_graph() {
        let mut builder = StreamingBuilder::new(DependencyMode::Full);
        let g = builder.finish();
        assert!(g.is_empty());
        assert_eq!(g.edge_count(), 0);
    }

    // ---- CrossBlockIndex ----------------------------------------------

    #[test]
    fn cross_block_reader_waits_on_pending_writer_only() {
        let mut index = CrossBlockIndex::new();
        let b1 = [
            tx(1, RwSet::write_only([k(1)])),
            tx(2, RwSet::write_only([k(2)])),
        ];
        assert!(index.admit_block(1, &b1).iter().all(Vec::is_empty));
        // Key 2's writer retires before block 2 is admitted.
        index.complete(1, SeqNo(1));
        let b2 = [
            tx(3, RwSet::read_only([k(1)])),
            tx(4, RwSet::read_only([k(2)])),
            tx(5, RwSet::read_only([k(9)])),
        ];
        let deps = index.admit_block(2, &b2);
        assert_eq!(deps[0], vec![(1, SeqNo(0))], "pending writer blocks");
        assert!(deps[1].is_empty(), "retired writer does not block");
        assert!(deps[2].is_empty(), "untouched key does not block");
    }

    #[test]
    fn cross_block_writer_chain_spans_blocks() {
        // W(k) in block 1, W(k) in block 2: the W→W edge keeps the chain
        // transitive so a reader in block 3 survives a block-2 abort.
        let mut index = CrossBlockIndex::new();
        index.admit_block(1, &[tx(1, RwSet::write_only([k(7)]))]);
        let deps = index.admit_block(2, &[tx(2, RwSet::write_only([k(7)]))]);
        assert_eq!(deps[0], vec![(1, SeqNo(0))]);
        let deps = index.admit_block(3, &[tx(3, RwSet::read_only([k(7)]))]);
        assert_eq!(deps[0], vec![(1, SeqNo(0)), (2, SeqNo(0))]);
    }

    #[test]
    fn cross_block_no_read_to_write_edges() {
        // A pure reader in block 1 never blocks a writer in block 2:
        // multi-version state gives the reader its own version.
        let mut index = CrossBlockIndex::new();
        index.admit_block(1, &[tx(1, RwSet::read_only([k(5)]))]);
        let deps = index.admit_block(2, &[tx(2, RwSet::write_only([k(5)]))]);
        assert!(deps[0].is_empty());
        assert_eq!(index.pending_writers(), 1, "only the block-2 writer");
    }

    #[test]
    fn cross_block_no_in_block_duplicates_and_dedup() {
        let mut index = CrossBlockIndex::new();
        index.admit_block(1, &[tx(1, RwSet::write_only([k(1), k(2)]))]);
        // Same-block conflict (positions 0, 1) must not appear; a tx
        // touching two keys of one pending writer depends on it once.
        let b2 = [
            tx(2, RwSet::write_only([k(1)])),
            tx(3, RwSet::new([k(1)], [k(1)])),
            tx(4, RwSet::new([k(1), k(2)], [])),
        ];
        let deps = index.admit_block(2, &b2);
        assert_eq!(deps[1], vec![(1, SeqNo(0))], "no same-block edges");
        assert_eq!(deps[2], vec![(1, SeqNo(0))], "two keys, one dependency");
    }

    #[test]
    fn cross_block_complete_is_idempotent_and_skips_non_writers() {
        let mut index = CrossBlockIndex::new();
        index.admit_block(1, &[tx(1, RwSet::read_only([k(1)]))]);
        assert_eq!(index.pending_writers(), 0, "readers are never pending");
        index.complete(1, SeqNo(0));
        index.complete(9, SeqNo(9)); // unknown writer: no-op
        index.admit_block(2, &[tx(2, RwSet::write_only([k(1)]))]);
        index.complete(2, SeqNo(0));
        index.complete(2, SeqNo(0));
        assert_eq!(index.pending_writers(), 0);
    }
}
