//! The dependency-graph data structure.

use std::fmt::Write as _;

use parblock_types::{AppId, Block, SeqNo};

use crate::builder::{self, DependencyMode};

/// A per-block dependency graph `G = (T, E)` (§III-A).
///
/// Vertices are in-block positions ([`SeqNo`]); every edge `(i, j)` has
/// `i < j`, so the graph is a DAG by construction. The graph also records
/// each transaction's application so executors can find cross-application
/// dependencies (Algorithm 2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DependencyGraph {
    /// `preds[j]` = Pre(Tj): positions with an edge into `j`, ascending.
    preds: Vec<Vec<SeqNo>>,
    /// `succs[i]` = Suc(Ti): positions with an edge out of `i`, ascending.
    succs: Vec<Vec<SeqNo>>,
    /// Application of each transaction, indexed by position.
    apps: Vec<AppId>,
    edge_count: usize,
    mode: DependencyMode,
}

impl DependencyGraph {
    /// Builds the dependency graph of `block` under the given mode.
    ///
    /// This is the orderer-side "dependency graph generator" module. Its
    /// cost grows with the block size — the effect behind the throughput
    /// rolloff in Fig 5.
    #[must_use]
    pub fn build(block: &Block, mode: DependencyMode) -> Self {
        builder::build(block, mode)
    }

    /// Builds the dependency graph of a transaction sequence that has not
    /// been wrapped in a [`Block`] yet (positions follow slice order).
    /// Used by the block cutter's batch-construction ablation path, where
    /// the graph is needed before the block header exists.
    #[must_use]
    pub fn build_txs(txs: &[parblock_types::Transaction], mode: DependencyMode) -> Self {
        builder::build_txs(txs, mode)
    }

    /// Constructs a graph from raw adjacency data. Used by the builder;
    /// exposed for tests that need hand-crafted graphs.
    ///
    /// # Panics
    ///
    /// Panics if an edge does not satisfy `i < j` or indexes out of range.
    #[must_use]
    pub fn from_edges(apps: Vec<AppId>, edges: &[(SeqNo, SeqNo)], mode: DependencyMode) -> Self {
        let n = apps.len();
        let mut preds = vec![Vec::new(); n];
        let mut succs = vec![Vec::new(); n];
        for &(i, j) in edges {
            assert!(i < j, "dependency edges must point forward: {i:?} -> {j:?}");
            assert!((j.0 as usize) < n, "edge endpoint {j:?} out of range");
            succs[i.0 as usize].push(j);
            preds[j.0 as usize].push(i);
        }
        for list in preds.iter_mut().chain(succs.iter_mut()) {
            list.sort_unstable();
            list.dedup();
        }
        let edge_count = succs.iter().map(Vec::len).sum();
        DependencyGraph {
            preds,
            succs,
            apps,
            edge_count,
            mode,
        }
    }

    /// Number of transactions (vertices).
    #[must_use]
    pub fn len(&self) -> usize {
        self.apps.len()
    }

    /// Returns `true` for a graph over an empty block.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.apps.is_empty()
    }

    /// Number of ordering-dependency edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// The mode this graph was built under.
    #[must_use]
    pub fn mode(&self) -> DependencyMode {
        self.mode
    }

    /// Pre(x): the predecessors of `x` (§IV-C).
    #[must_use]
    pub fn predecessors(&self, x: SeqNo) -> &[SeqNo] {
        &self.preds[x.0 as usize]
    }

    /// Suc(x): the successors of `x` (§IV-C).
    #[must_use]
    pub fn successors(&self, x: SeqNo) -> &[SeqNo] {
        &self.succs[x.0 as usize]
    }

    /// Whether the edge `(i, j)` is present.
    #[must_use]
    pub fn has_edge(&self, i: SeqNo, j: SeqNo) -> bool {
        self.succs
            .get(i.0 as usize)
            .is_some_and(|s| s.binary_search(&j).is_ok())
    }

    /// The application of the transaction at position `x`.
    #[must_use]
    pub fn app_of(&self, x: SeqNo) -> AppId {
        self.apps[x.0 as usize]
    }

    /// All applications, indexed by position.
    #[must_use]
    pub fn apps(&self) -> &[AppId] {
        &self.apps
    }

    /// Iterates all edges `(i, j)` in lexicographic order.
    pub fn edges(&self) -> impl Iterator<Item = (SeqNo, SeqNo)> + '_ {
        self.succs.iter().enumerate().flat_map(|(i, succs)| {
            succs.iter().map(move |&j| (SeqNo(i as u32), j))
        })
    }

    /// Whether transaction `x` has a successor in a *different*
    /// application — the trigger for Algorithm 2's commit-message cut.
    #[must_use]
    pub fn has_foreign_successor(&self, x: SeqNo) -> bool {
        let app = self.app_of(x);
        self.successors(x).iter().any(|&s| self.app_of(s) != app)
    }

    /// Whether any edge connects two applications. When `false`, the
    /// agents of each application can execute independently and send a
    /// single commit message at the end of the block (§IV-C, Fig 4a/4b).
    #[must_use]
    pub fn has_cross_app_edges(&self) -> bool {
        self.edges().any(|(i, j)| self.app_of(i) != self.app_of(j))
    }

    /// Appends a canonical byte encoding of the graph (apps, edges, mode)
    /// to `out`, so durable block stores can persist `G(B)` next to its
    /// block. Round-trips through [`DependencyGraph::decode_wire`].
    pub fn encode_wire(&self, out: &mut Vec<u8>) {
        use parblock_types::wire::Wire;
        let mode_tag: u8 = match self.mode {
            DependencyMode::Full => 0,
            DependencyMode::Reduced => 1,
            DependencyMode::MultiVersion => 2,
        };
        mode_tag.encode(out);
        (self.apps.len() as u64).encode(out);
        for app in &self.apps {
            u64::from(app.0).encode(out);
        }
        (self.edge_count as u64).encode(out);
        for (i, j) in self.edges() {
            i.0.encode(out);
            j.0.encode(out);
        }
    }

    /// Convenience: [`DependencyGraph::encode_wire`] into a fresh buffer.
    #[must_use]
    pub fn wire_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_wire(&mut out);
        out
    }

    /// Decodes a graph from a [`Reader`](parblock_types::wire::Reader)
    /// positioned at an [`DependencyGraph::encode_wire`] boundary.
    /// Returns `None` on malformed input (unknown mode, out-of-range or
    /// backward edges, truncation).
    #[must_use]
    pub fn decode_wire(reader: &mut parblock_types::wire::Reader<'_>) -> Option<Self> {
        let mode = match reader.u8()? {
            0 => DependencyMode::Full,
            1 => DependencyMode::Reduced,
            2 => DependencyMode::MultiVersion,
            _ => return None,
        };
        let n = usize::try_from(reader.u64()?).ok()?;
        if n > reader.remaining() / 8 {
            return None;
        }
        let mut apps = Vec::with_capacity(n);
        for _ in 0..n {
            apps.push(AppId(u16::try_from(reader.u64()?).ok()?));
        }
        let edge_count = usize::try_from(reader.u64()?).ok()?;
        if edge_count > reader.remaining() / 8 {
            return None;
        }
        let mut edges = Vec::with_capacity(edge_count);
        for _ in 0..edge_count {
            let i = SeqNo(reader.u32()?);
            let j = SeqNo(reader.u32()?);
            if i >= j || j.0 as usize >= n {
                return None; // from_edges would panic; reject instead
            }
            edges.push((i, j));
        }
        Some(DependencyGraph::from_edges(apps, &edges, mode))
    }

    /// Renders the graph in Graphviz DOT format (vertices labelled with
    /// position and application), for debugging and documentation.
    #[must_use]
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph deps {\n  rankdir=LR;\n");
        for (i, app) in self.apps.iter().enumerate() {
            let _ = writeln!(out, "  t{i} [label=\"T@{i}\\n{app}\"];");
        }
        for (i, j) in self.edges() {
            let _ = writeln!(out, "  t{} -> t{};", i.0, j.0);
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> DependencyGraph {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3; apps: 0,0,1,1.
        DependencyGraph::from_edges(
            vec![AppId(0), AppId(0), AppId(1), AppId(1)],
            &[
                (SeqNo(0), SeqNo(1)),
                (SeqNo(0), SeqNo(2)),
                (SeqNo(1), SeqNo(3)),
                (SeqNo(2), SeqNo(3)),
            ],
            DependencyMode::Full,
        )
    }

    #[test]
    fn adjacency_accessors() {
        let g = diamond();
        assert_eq!(g.len(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.predecessors(SeqNo(3)), &[SeqNo(1), SeqNo(2)]);
        assert_eq!(g.successors(SeqNo(0)), &[SeqNo(1), SeqNo(2)]);
        assert!(g.has_edge(SeqNo(0), SeqNo(2)));
        assert!(!g.has_edge(SeqNo(1), SeqNo(2)));
    }

    #[test]
    fn duplicate_edges_are_deduplicated() {
        let g = DependencyGraph::from_edges(
            vec![AppId(0), AppId(0)],
            &[(SeqNo(0), SeqNo(1)), (SeqNo(0), SeqNo(1))],
            DependencyMode::Full,
        );
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    #[should_panic(expected = "must point forward")]
    fn backward_edge_panics() {
        let _ = DependencyGraph::from_edges(
            vec![AppId(0), AppId(0)],
            &[(SeqNo(1), SeqNo(0))],
            DependencyMode::Full,
        );
    }

    #[test]
    fn cross_app_detection() {
        let g = diamond();
        assert!(g.has_cross_app_edges());
        // Position 1 (app 0) has successor 3 (app 1).
        assert!(g.has_foreign_successor(SeqNo(1)));
        // Position 2 (app 1) has successor 3 (app 1): same app.
        assert!(!g.has_foreign_successor(SeqNo(2)));
    }

    #[test]
    fn edges_iterator_lists_all() {
        let g = diamond();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 4);
        assert_eq!(edges[0], (SeqNo(0), SeqNo(1)));
    }

    #[test]
    fn dot_export_contains_vertices_and_edges() {
        let dot = diamond().to_dot();
        assert!(dot.contains("t0 ->"));
        assert!(dot.contains("digraph"));
        assert!(dot.contains("A1"));
    }

    #[test]
    fn wire_round_trip_preserves_adjacency_and_mode() {
        for g in [
            diamond(),
            DependencyGraph::from_edges(vec![], &[], DependencyMode::Reduced),
            DependencyGraph::from_edges(vec![AppId(3)], &[], DependencyMode::MultiVersion),
        ] {
            let bytes = g.wire_bytes();
            let mut reader = parblock_types::wire::Reader::new(&bytes);
            let decoded = DependencyGraph::decode_wire(&mut reader).expect("decodes");
            assert!(reader.is_exhausted());
            assert_eq!(decoded, g);
        }
    }

    #[test]
    fn wire_decode_rejects_malformed_input() {
        let bytes = diamond().wire_bytes();
        for cut in 0..bytes.len() {
            let mut reader = parblock_types::wire::Reader::new(&bytes[..cut]);
            assert!(
                DependencyGraph::decode_wire(&mut reader).is_none(),
                "cut {cut}"
            );
        }
        // Unknown mode tag.
        let mut bad = bytes.clone();
        bad[0] = 9;
        let mut reader = parblock_types::wire::Reader::new(&bad);
        assert!(DependencyGraph::decode_wire(&mut reader).is_none());
    }

    #[test]
    fn empty_graph() {
        let g = DependencyGraph::from_edges(vec![], &[], DependencyMode::Full);
        assert!(g.is_empty());
        assert_eq!(g.edge_count(), 0);
        assert!(!g.has_cross_app_edges());
    }
}
