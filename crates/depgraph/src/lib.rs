//! Dependency graphs for OXII blocks — the core contribution of the
//! ParBlockchain paper (§III-A).
//!
//! Given a block of transactions with declared read/write sets, orderers
//! build a *dependency graph*: a DAG whose vertices are the block's
//! transactions and whose edges are the *ordering dependencies*
//! `Ti ⤳ Tj` (with `ts(Ti) < ts(Tj)`) induced by read-write, write-read and
//! write-write conflicts. The graph, on the one hand, gives a partial order
//! based on the conflicts between transactions; on the other hand, it
//! enables higher concurrency by allowing parallel execution of
//! non-conflicting transactions.
//!
//! # Examples
//!
//! Reconstructing the paper's Fig 2 example block
//! `[T1, T5, T4, T3, T2]`:
//!
//! ```
//! use parblock_depgraph::{DependencyGraph, DependencyMode};
//! use parblock_types::{AppId, Block, BlockNumber, ClientId, Hash32, Key, RwSet, SeqNo,
//!     Transaction};
//!
//! let tx = |client: u32, rw: RwSet| {
//!     Transaction::new(AppId(0), ClientId(client), 0, rw, vec![])
//! };
//! // Keys: a=1, b=2, d=4, e=5, f=6. T1 reads a, writes b; T5 reads e,
//! // writes d; T4 reads b, writes f; T3 writes e; T2 writes d.
//! let block = Block::new(BlockNumber(1), Hash32::ZERO, vec![
//!     tx(1, RwSet::new([Key(1)], [Key(2)])),          // T1 @0
//!     tx(5, RwSet::new([Key(5)], [Key(4)])),          // T5 @1
//!     tx(4, RwSet::new([Key(2)], [Key(6)])),          // T4 @2
//!     tx(3, RwSet::new([], [Key(5)])),                // T3 @3
//!     tx(2, RwSet::new([], [Key(4)])),                // T2 @4
//! ]);
//! let graph = DependencyGraph::build(&block, DependencyMode::Full);
//! // Edges of Fig 2: (T1,T4), (T5,T2), (T5,T3).
//! assert!(graph.has_edge(SeqNo(0), SeqNo(2)));
//! assert!(graph.has_edge(SeqNo(1), SeqNo(4)));
//! assert!(graph.has_edge(SeqNo(1), SeqNo(3)));
//! assert_eq!(graph.edge_count(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
mod builder;
mod graph;
mod opgraph;
mod schedule;
mod streaming;

pub use analysis::{ComponentKind, ConflictStats, GraphComponents};
pub use builder::DependencyMode;
pub use graph::DependencyGraph;
pub use opgraph::{OpGraph, OpKind, OpRef};
pub use schedule::{ExecutionLayers, ReadyTracker};
pub use streaming::{CrossBlockIndex, StreamingBuilder};
