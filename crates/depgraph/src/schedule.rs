//! Scheduling views over a dependency graph.
//!
//! [`ReadyTracker`] is the executor-side data structure behind Algorithm 1:
//! it tracks, per transaction, how many predecessors are still outstanding
//! and surfaces transactions the moment they become executable.
//! [`ExecutionLayers`] is an analytic view (level sets / critical path)
//! used by the benchmarks to explain *why* a block parallelizes well or
//! badly.

use std::collections::VecDeque;

use parblock_trace::{Stage, TraceRecorder};
use parblock_types::{SeqNo, TxId};

use crate::graph::DependencyGraph;

/// Incremental ready-set tracker (Algorithm 1's condition
/// "all Pre(x) are in Ce ∪ Xe").
///
/// The tracker is created over the whole block; transactions the local
/// executor is *not* an agent for still flow through it, because their
/// commits (Algorithm 3) release the successors this executor must run.
///
/// # Examples
///
/// ```
/// use parblock_depgraph::{DependencyGraph, DependencyMode, ReadyTracker};
/// use parblock_types::{AppId, SeqNo};
///
/// // 0 -> 1 -> 2 chain.
/// let g = DependencyGraph::from_edges(
///     vec![AppId(0); 3],
///     &[(SeqNo(0), SeqNo(1)), (SeqNo(1), SeqNo(2))],
///     DependencyMode::Full,
/// );
/// let mut ready = ReadyTracker::new(&g);
/// assert_eq!(ready.take_ready(), vec![SeqNo(0)]);
/// assert_eq!(ready.complete(SeqNo(0)), vec![SeqNo(1)]);
/// assert_eq!(ready.complete(SeqNo(1)), vec![SeqNo(2)]);
/// assert!(!ready.is_done());
/// ready.complete(SeqNo(2));
/// assert!(ready.is_done());
/// ```
#[derive(Debug, Clone)]
pub struct ReadyTracker {
    graph: DependencyGraph,
    /// Outstanding predecessor count per position; `u32::MAX` = completed.
    pending_preds: Vec<u32>,
    /// Positions that became ready but have not been taken yet.
    ready: VecDeque<SeqNo>,
    completed: usize,
    /// Lifecycle sink (DESIGN.md §14): when attached, every readiness
    /// transition stamps `Stage::GraphReady` on the position's
    /// transaction. `None` (the default) costs nothing on the hot path.
    trace: Option<Box<(TraceRecorder, Vec<TxId>)>>,
}

impl ReadyTracker {
    /// Creates a tracker over `graph`; all roots are immediately ready.
    #[must_use]
    pub fn new(graph: &DependencyGraph) -> Self {
        Self::with_external(graph, &[])
    }

    /// Creates a tracker over `graph` whose position `i` additionally
    /// waits for `external[i]` out-of-graph predecessors (cross-block
    /// dependencies on still-pending writers of earlier blocks). A missing
    /// entry counts as zero. External predecessors are released through
    /// [`ReadyTracker::release_external`], not [`ReadyTracker::complete`].
    #[must_use]
    pub fn with_external(graph: &DependencyGraph, external: &[u32]) -> Self {
        let n = graph.len();
        let mut pending_preds = Vec::with_capacity(n);
        let mut ready = VecDeque::new();
        for i in 0..n {
            let seq = SeqNo(i as u32);
            let preds =
                graph.predecessors(seq).len() as u32 + external.get(i).copied().unwrap_or(0);
            pending_preds.push(preds);
            if preds == 0 {
                ready.push_back(seq);
            }
        }
        ReadyTracker {
            graph: graph.clone(),
            pending_preds,
            ready,
            completed: 0,
            trace: None,
        }
    }

    /// Attaches a lifecycle recorder: from now on every position that
    /// becomes ready is stamped [`Stage::GraphReady`] on `ids[position]`
    /// (the block's transaction ids, in sequence order). Positions already
    /// queued — roots readied during construction — are stamped
    /// retroactively here, so attaching right after construction loses
    /// nothing.
    pub fn set_trace(&mut self, recorder: TraceRecorder, ids: Vec<TxId>) {
        if !recorder.enabled() {
            return;
        }
        let queued: Vec<SeqNo> = self.ready.iter().copied().collect();
        self.trace = Some(Box::new((recorder, ids)));
        for seq in queued {
            self.note_ready(seq);
        }
    }

    /// Stamps `Stage::GraphReady` on a newly ready position, if a
    /// recorder is attached.
    fn note_ready(&self, x: SeqNo) {
        if let Some(sink) = &self.trace {
            let (recorder, ids) = sink.as_ref();
            if let Some(&tx) = ids.get(x.0 as usize) {
                recorder.record(tx, Stage::GraphReady);
            }
        }
    }

    /// Releases one external (cross-block) predecessor of `x`; returns
    /// `true` when that was the last outstanding predecessor and `x` is
    /// now ready (it is also queued for [`ReadyTracker::take_ready`]).
    ///
    /// # Panics
    ///
    /// Panics if `x` has no outstanding predecessors — an external release
    /// must match a count registered via [`ReadyTracker::with_external`].
    pub fn release_external(&mut self, x: SeqNo) -> bool {
        let idx = x.0 as usize;
        if self.pending_preds[idx] == u32::MAX {
            return false; // already complete (e.g. committed from votes)
        }
        assert!(
            self.pending_preds[idx] > 0,
            "external release for {x:?} without a registered dependency"
        );
        self.pending_preds[idx] -= 1;
        if self.pending_preds[idx] == 0 {
            self.ready.push_back(x);
            self.note_ready(x);
            true
        } else {
            false
        }
    }

    /// Releases one external predecessor of **each** position in
    /// `positions`, returning the positions that became ready, in input
    /// order. Semantics per position match
    /// [`ReadyTracker::release_external`]; batching lets a cross-block
    /// writer that unblocks many waiters of one block hand the whole
    /// newly-ready set to the execution backend in a single dispatch
    /// instead of one per waiter (DESIGN.md §15).
    pub fn release_external_batch(&mut self, positions: &[SeqNo]) -> Vec<SeqNo> {
        positions
            .iter()
            .copied()
            .filter(|&x| self.release_external(x))
            .collect()
    }

    /// Drains and returns every transaction that is currently ready.
    pub fn take_ready(&mut self) -> Vec<SeqNo> {
        self.ready.drain(..).collect()
    }

    /// Returns `true` when there are ready transactions waiting.
    #[must_use]
    pub fn has_ready(&self) -> bool {
        !self.ready.is_empty()
    }

    /// Marks `x` complete (executed locally or committed from remote
    /// results) and returns the successors that became ready.
    ///
    /// Completing a transaction twice is a no-op returning an empty list,
    /// which makes the tracker idempotent under duplicate commit messages.
    pub fn complete(&mut self, x: SeqNo) -> Vec<SeqNo> {
        let idx = x.0 as usize;
        if self.pending_preds[idx] == u32::MAX {
            return Vec::new(); // already complete
        }
        self.pending_preds[idx] = u32::MAX;
        self.completed += 1;
        let mut newly = Vec::new();
        for &succ in self.graph.successors(x) {
            let s = succ.0 as usize;
            if self.pending_preds[s] == u32::MAX {
                continue;
            }
            self.pending_preds[s] -= 1;
            if self.pending_preds[s] == 0 {
                self.ready.push_back(succ);
                newly.push(succ);
            }
        }
        for &succ in &newly {
            self.note_ready(succ);
        }
        newly
    }

    /// Whether `x` has completed.
    #[must_use]
    pub fn is_complete(&self, x: SeqNo) -> bool {
        self.pending_preds[x.0 as usize] == u32::MAX
    }

    /// Whether every transaction has completed.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.completed == self.pending_preds.len()
    }

    /// Number of completed transactions.
    #[must_use]
    pub fn completed_count(&self) -> usize {
        self.completed
    }
}

/// The level-set decomposition of a dependency graph: layer `k` holds the
/// transactions whose longest incoming path has length `k`.
///
/// All transactions in one layer can execute in parallel; the number of
/// layers is the critical-path length, the lower bound on parallel
/// execution time in units of one transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecutionLayers {
    layers: Vec<Vec<SeqNo>>,
}

impl ExecutionLayers {
    /// Computes the layers of `graph`.
    #[must_use]
    pub fn compute(graph: &DependencyGraph) -> Self {
        let n = graph.len();
        let mut depth = vec![0usize; n];
        // Positions are already topologically ordered (edges point
        // forward), so a single left-to-right pass suffices.
        for i in 0..n {
            let seq = SeqNo(i as u32);
            for &p in graph.predecessors(seq) {
                depth[i] = depth[i].max(depth[p.0 as usize] + 1);
            }
        }
        let max_depth = depth.iter().copied().max().map_or(0, |d| d + 1);
        let mut layers = vec![Vec::new(); max_depth];
        for (i, d) in depth.iter().enumerate() {
            layers[*d].push(SeqNo(i as u32));
        }
        ExecutionLayers { layers }
    }

    /// The layers, outermost first.
    #[must_use]
    pub fn layers(&self) -> &[Vec<SeqNo>] {
        &self.layers
    }

    /// Critical-path length in transactions (0 for an empty block).
    ///
    /// A no-contention block has 1; a full-contention chain has `n` —
    /// exactly the paper's "the dependency graph of each block in the last
    /// workload is a chain".
    #[must_use]
    pub fn critical_path(&self) -> usize {
        self.layers.len()
    }

    /// The widest layer: the maximum achievable parallelism.
    #[must_use]
    pub fn max_width(&self) -> usize {
        self.layers.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Average parallelism: transactions divided by critical path.
    #[must_use]
    pub fn avg_parallelism(&self) -> f64 {
        if self.layers.is_empty() {
            return 0.0;
        }
        let total: usize = self.layers.iter().map(Vec::len).sum();
        total as f64 / self.layers.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use parblock_types::AppId;

    use super::*;
    use crate::builder::DependencyMode;

    fn graph(n: usize, edges: &[(u32, u32)]) -> DependencyGraph {
        let edges: Vec<_> = edges
            .iter()
            .map(|&(i, j)| (SeqNo(i), SeqNo(j)))
            .collect();
        DependencyGraph::from_edges(vec![AppId(0); n], &edges, DependencyMode::Full)
    }

    #[test]
    fn tracker_runs_diamond_in_dependency_order() {
        let g = graph(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let mut t = ReadyTracker::new(&g);
        assert_eq!(t.take_ready(), vec![SeqNo(0)]);
        let newly = t.complete(SeqNo(0));
        assert_eq!(newly, vec![SeqNo(1), SeqNo(2)]);
        assert!(t.complete(SeqNo(1)).is_empty()); // 3 still waits on 2
        assert_eq!(t.complete(SeqNo(2)), vec![SeqNo(3)]);
        t.complete(SeqNo(3));
        assert!(t.is_done());
        assert_eq!(t.completed_count(), 4);
    }

    #[test]
    fn tracker_is_idempotent_under_duplicate_completion() {
        let g = graph(2, &[(0, 1)]);
        let mut t = ReadyTracker::new(&g);
        t.take_ready();
        assert_eq!(t.complete(SeqNo(0)), vec![SeqNo(1)]);
        assert!(t.complete(SeqNo(0)).is_empty());
        assert!(t.is_complete(SeqNo(0)));
        assert!(!t.is_done());
    }

    #[test]
    fn external_deps_hold_back_roots_until_released() {
        // 0 -> 1; position 0 additionally waits on two cross-block
        // writers, position 2 on one.
        let g = graph(3, &[(0, 1)]);
        let mut t = ReadyTracker::with_external(&g, &[2, 0, 1]);
        assert!(t.take_ready().is_empty(), "every root has external deps");
        assert!(!t.release_external(SeqNo(0)), "one of two released");
        assert!(t.release_external(SeqNo(0)), "second release readies it");
        assert_eq!(t.take_ready(), vec![SeqNo(0)]);
        assert!(t.release_external(SeqNo(2)));
        assert_eq!(t.complete(SeqNo(0)), vec![SeqNo(1)]);
        t.complete(SeqNo(1));
        t.complete(SeqNo(2));
        assert!(t.is_done());
    }

    #[test]
    fn external_release_after_completion_is_a_no_op() {
        // A transaction can commit from remote votes before its external
        // predecessor retires; the late release must not underflow.
        let g = graph(1, &[]);
        let mut t = ReadyTracker::with_external(&g, &[1]);
        assert!(t.complete(SeqNo(0)).is_empty());
        assert!(!t.release_external(SeqNo(0)));
        assert!(t.is_done());
    }

    #[test]
    fn missing_external_entries_default_to_zero() {
        let g = graph(3, &[]);
        let mut t = ReadyTracker::with_external(&g, &[1]);
        assert_eq!(t.take_ready(), vec![SeqNo(1), SeqNo(2)]);
        assert!(t.release_external(SeqNo(0)));
    }

    #[test]
    fn independent_block_is_fully_ready_at_once() {
        let g = graph(5, &[]);
        let mut t = ReadyTracker::new(&g);
        assert_eq!(t.take_ready().len(), 5);
        assert!(!t.has_ready());
    }

    #[test]
    fn layers_of_chain_and_empty_and_independent() {
        let chain = graph(4, &[(0, 1), (1, 2), (2, 3)]);
        let l = ExecutionLayers::compute(&chain);
        assert_eq!(l.critical_path(), 4);
        assert_eq!(l.max_width(), 1);

        let indep = graph(4, &[]);
        let l = ExecutionLayers::compute(&indep);
        assert_eq!(l.critical_path(), 1);
        assert_eq!(l.max_width(), 4);
        assert!((l.avg_parallelism() - 4.0).abs() < 1e-9);

        let empty = graph(0, &[]);
        let l = ExecutionLayers::compute(&empty);
        assert_eq!(l.critical_path(), 0);
        assert_eq!(l.max_width(), 0);
        assert_eq!(l.avg_parallelism(), 0.0);
    }

    #[test]
    fn layers_of_diamond() {
        let g = graph(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let l = ExecutionLayers::compute(&g);
        assert_eq!(l.layers().len(), 3);
        assert_eq!(l.layers()[0], vec![SeqNo(0)]);
        assert_eq!(l.layers()[1], vec![SeqNo(1), SeqNo(2)]);
        assert_eq!(l.layers()[2], vec![SeqNo(3)]);
    }
}
