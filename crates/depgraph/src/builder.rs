//! Dependency-graph construction.
//!
//! Three modes are provided:
//!
//! * [`DependencyMode::Full`] — the literal Definition of §III-A: an edge
//!   for *every* conflicting pair, found by pairwise comparison (O(n²)
//!   set intersections). This is the reference implementation.
//! * [`DependencyMode::Reduced`] — an index-based construction that tracks,
//!   per key, the last writer and the readers since that write. It emits a
//!   subgraph of `Full` whose transitive closure is the same partial
//!   order, in O(total accesses · log) time. Executors get identical
//!   scheduling freedom with fewer edges to ship and count down.
//! * [`DependencyMode::MultiVersion`] — the multi-version adaptation
//!   sketched in §III-A: writes create new versions, so write-write and
//!   read-then-write pairs no longer constrain each other; only
//!   write-then-read pairs (a later read must see the earlier version)
//!   force an ordering dependency.

use parblock_types::{Block, SeqNo, Transaction};

use crate::graph::DependencyGraph;

/// Which dependency rules the builder applies. See the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DependencyMode {
    /// Every conflicting pair (§III-A Definition), by pairwise comparison.
    #[default]
    Full,
    /// Last-writer/reader index construction; same transitive closure as
    /// `Full` with fewer explicit edges.
    Reduced,
    /// Multi-version rules: only write→read dependencies.
    MultiVersion,
}

/// Builds the dependency graph of `block` under `mode`.
pub(crate) fn build(block: &Block, mode: DependencyMode) -> DependencyGraph {
    build_txs(block.transactions(), mode)
}

/// Builds the dependency graph of a transaction sequence under `mode`.
/// Positions follow slice order, exactly as they would in a block.
pub(crate) fn build_txs(txs: &[Transaction], mode: DependencyMode) -> DependencyGraph {
    match mode {
        DependencyMode::Full => build_full(txs),
        DependencyMode::Reduced => build_reduced(txs),
        DependencyMode::MultiVersion => build_multi_version(txs),
    }
}

fn apps_of(txs: &[Transaction]) -> Vec<parblock_types::AppId> {
    txs.iter().map(Transaction::app).collect()
}

/// O(n²) pairwise construction, the paper's definition verbatim:
/// `Ti ⤳ Tj` iff `ts(i) < ts(j)` and ρ(Ti)∩ω(Tj) ≠ ∅ or ω(Ti)∩ρ(Tj) ≠ ∅
/// or ω(Ti)∩ω(Tj) ≠ ∅.
fn build_full(txs: &[Transaction]) -> DependencyGraph {
    let mut edges = Vec::new();
    for j in 1..txs.len() {
        for i in 0..j {
            let a = txs[i].rw_set();
            let b = txs[j].rw_set();
            if a.rw_conflict(b) || a.wr_conflict(b) || a.ww_conflict(b) {
                edges.push((SeqNo(i as u32), SeqNo(j as u32)));
            }
        }
    }
    DependencyGraph::from_edges(apps_of(txs), &edges, DependencyMode::Full)
}

/// Index-based construction: per key, remember the last writer and the
/// readers since that write.
fn build_reduced(txs: &[Transaction]) -> DependencyGraph {
    use std::collections::HashMap;
    use parblock_types::Key;

    #[derive(Default)]
    struct KeyState {
        last_writer: Option<SeqNo>,
        readers_since_write: Vec<SeqNo>,
    }

    let mut keys: HashMap<Key, KeyState> = HashMap::new();
    let mut edges = Vec::new();

    for (j, tx) in txs.iter().enumerate() {
        let j = SeqNo(j as u32);
        // W→R: the last writer of each read key precedes us.
        for key in tx.rw_set().reads() {
            if let Some(state) = keys.get(key) {
                if let Some(w) = state.last_writer {
                    edges.push((w, j));
                }
            }
        }
        for key in tx.rw_set().writes() {
            let state = keys.entry(*key).or_default();
            // R→W: all readers since the last write precede us.
            for &r in &state.readers_since_write {
                if r != j {
                    edges.push((r, j));
                }
            }
            // W→W: the previous writer precedes us.
            if let Some(w) = state.last_writer {
                if w != j {
                    edges.push((w, j));
                }
            }
            state.last_writer = Some(j);
            state.readers_since_write.clear();
        }
        // Register reads after handling writes so a transaction that both
        // reads and writes a key does not self-depend.
        for key in tx.rw_set().reads() {
            let state = keys.entry(*key).or_default();
            if state.last_writer != Some(j) {
                state.readers_since_write.push(j);
            }
        }
    }
    DependencyGraph::from_edges(apps_of(txs), &edges, DependencyMode::Reduced)
}

/// Multi-version rules: only ω(Ti) ∩ ρ(Tj) forces `Ti ⤳ Tj`.
fn build_multi_version(txs: &[Transaction]) -> DependencyGraph {
    let mut edges = Vec::new();
    for j in 1..txs.len() {
        for i in 0..j {
            if txs[i].rw_set().wr_conflict(txs[j].rw_set()) {
                edges.push((SeqNo(i as u32), SeqNo(j as u32)));
            }
        }
    }
    DependencyGraph::from_edges(apps_of(txs), &edges, DependencyMode::MultiVersion)
}

#[cfg(test)]
mod tests {
    use parblock_types::{AppId, Block, BlockNumber, ClientId, Hash32, Key, RwSet, Transaction};

    use super::*;

    fn block_of(rw_sets: Vec<RwSet>) -> Block {
        let txs = rw_sets
            .into_iter()
            .enumerate()
            .map(|(i, rw)| Transaction::new(AppId(0), ClientId(1), i as u64, rw, vec![]))
            .collect();
        Block::new(BlockNumber(1), Hash32::ZERO, txs)
    }

    fn k(raw: u64) -> Key {
        Key(raw)
    }

    #[test]
    fn full_includes_transitive_edges_reduced_does_not() {
        // Three writers of the same key: W(a), W(a), W(a).
        let block = block_of(vec![
            RwSet::write_only([k(1)]),
            RwSet::write_only([k(1)]),
            RwSet::write_only([k(1)]),
        ]);
        let full = build(&block, DependencyMode::Full);
        let reduced = build(&block, DependencyMode::Reduced);
        assert_eq!(full.edge_count(), 3); // (0,1), (0,2), (1,2)
        assert_eq!(reduced.edge_count(), 2); // (0,1), (1,2)
        assert!(full.has_edge(SeqNo(0), SeqNo(2)));
        assert!(!reduced.has_edge(SeqNo(0), SeqNo(2)));
    }

    #[test]
    fn read_only_transactions_are_independent() {
        let block = block_of(vec![
            RwSet::read_only([k(1)]),
            RwSet::read_only([k(1)]),
            RwSet::read_only([k(1)]),
        ]);
        for mode in [
            DependencyMode::Full,
            DependencyMode::Reduced,
            DependencyMode::MultiVersion,
        ] {
            assert_eq!(build(&block, mode).edge_count(), 0, "{mode:?}");
        }
    }

    #[test]
    fn multi_version_drops_ww_and_rw_keeps_wr() {
        // T0 writes a; T1 writes a (WW); T2 reads a (WR from both writers);
        // T3 reads b then T4 writes b (RW).
        let block = block_of(vec![
            RwSet::write_only([k(1)]),
            RwSet::write_only([k(1)]),
            RwSet::read_only([k(1)]),
            RwSet::read_only([k(2)]),
            RwSet::write_only([k(2)]),
        ]);
        let mv = build(&block, DependencyMode::MultiVersion);
        assert!(!mv.has_edge(SeqNo(0), SeqNo(1)), "WW dropped");
        assert!(!mv.has_edge(SeqNo(3), SeqNo(4)), "RW dropped");
        assert!(mv.has_edge(SeqNo(0), SeqNo(2)), "WR kept");
        assert!(mv.has_edge(SeqNo(1), SeqNo(2)), "WR kept");
        assert_eq!(mv.edge_count(), 2);
    }

    #[test]
    fn multi_version_is_subgraph_of_full() {
        let block = block_of(vec![
            RwSet::new([k(1)], [k(2)]),
            RwSet::new([k(2)], [k(1)]),
            RwSet::new([k(1), k(2)], [k(3)]),
            RwSet::write_only([k(3)]),
        ]);
        let full = build(&block, DependencyMode::Full);
        let mv = build(&block, DependencyMode::MultiVersion);
        for (i, j) in mv.edges() {
            assert!(full.has_edge(i, j), "mv edge ({i:?},{j:?}) missing in full");
        }
    }

    #[test]
    fn rmw_transaction_does_not_self_depend() {
        // A transaction reading and writing the same key (the paper's
        // transfer reads and writes account 1001).
        let block = block_of(vec![RwSet::new([k(1)], [k(1)])]);
        for mode in [
            DependencyMode::Full,
            DependencyMode::Reduced,
            DependencyMode::MultiVersion,
        ] {
            assert_eq!(build(&block, mode).edge_count(), 0, "{mode:?}");
        }
    }

    #[test]
    fn chain_workload_builds_chain_graph() {
        // Full-contention workload: each tx writes the same key — the
        // paper says the dependency graph of such a block is a chain.
        let block = block_of(vec![RwSet::new([k(1)], [k(1)]); 5]);
        let reduced = build(&block, DependencyMode::Reduced);
        for i in 0..4 {
            assert!(reduced.has_edge(SeqNo(i), SeqNo(i + 1)));
        }
        assert_eq!(reduced.edge_count(), 4);
    }

    #[test]
    fn reader_then_writer_edge() {
        let block = block_of(vec![RwSet::read_only([k(5)]), RwSet::write_only([k(5)])]);
        for mode in [DependencyMode::Full, DependencyMode::Reduced] {
            let g = build(&block, mode);
            assert!(g.has_edge(SeqNo(0), SeqNo(1)), "{mode:?}");
        }
    }
}
