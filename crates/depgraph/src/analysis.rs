//! Graph analytics: connected components, cross-application structure and
//! conflict statistics.
//!
//! §IV-C distinguishes three situations for a block (Fig 4): all
//! transactions in one application; several applications whose components
//! are disjoint; and components mixing applications, which force agents to
//! exchange commit messages mid-block. [`GraphComponents`] computes that
//! classification.

use std::collections::BTreeSet;

use parblock_types::{AppId, SeqNo};

use crate::graph::DependencyGraph;

/// Classification of a block's dependency structure (Fig 4 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ComponentKind {
    /// Every transaction belongs to one application (Fig 4a).
    SingleApp,
    /// Multiple applications, but no component mixes two (Fig 4b): agents
    /// can execute independently and multicast once at the end.
    AppDisjoint,
    /// At least one component mixes applications (Fig 4c): agents must
    /// exchange commit messages during execution (Algorithm 2's cut).
    CrossApp,
}

/// The weakly connected components of a dependency graph.
#[derive(Debug, Clone)]
pub struct GraphComponents {
    /// Component index per position.
    component_of: Vec<usize>,
    /// Members of each component, ascending.
    members: Vec<Vec<SeqNo>>,
}

impl GraphComponents {
    /// Computes weakly connected components with a union-find pass.
    #[must_use]
    pub fn compute(graph: &DependencyGraph) -> Self {
        let n = graph.len();
        let mut parent: Vec<usize> = (0..n).collect();

        fn find(parent: &mut [usize], x: usize) -> usize {
            let mut root = x;
            while parent[root] != root {
                root = parent[root];
            }
            // Path compression.
            let mut cur = x;
            while parent[cur] != root {
                let next = parent[cur];
                parent[cur] = root;
                cur = next;
            }
            root
        }

        for (i, j) in graph.edges() {
            let (a, b) = (find(&mut parent, i.0 as usize), find(&mut parent, j.0 as usize));
            if a != b {
                parent[a] = b;
            }
        }

        let mut component_of = vec![usize::MAX; n];
        let mut members: Vec<Vec<SeqNo>> = Vec::new();
        for i in 0..n {
            let root = find(&mut parent, i);
            if component_of[root] == usize::MAX {
                component_of[root] = members.len();
                members.push(Vec::new());
            }
            component_of[i] = component_of[root];
            members[component_of[root]].push(SeqNo(i as u32));
        }
        GraphComponents {
            component_of,
            members,
        }
    }

    /// Number of components.
    #[must_use]
    pub fn count(&self) -> usize {
        self.members.len()
    }

    /// The component index of position `x`.
    #[must_use]
    pub fn component_of(&self, x: SeqNo) -> usize {
        self.component_of[x.0 as usize]
    }

    /// Members of component `c`, ascending by position.
    #[must_use]
    pub fn members(&self, c: usize) -> &[SeqNo] {
        &self.members[c]
    }

    /// Classifies the block per Fig 4 (see [`ComponentKind`]).
    #[must_use]
    pub fn classify(&self, graph: &DependencyGraph) -> ComponentKind {
        let apps: BTreeSet<AppId> = graph.apps().iter().copied().collect();
        if apps.len() <= 1 {
            return ComponentKind::SingleApp;
        }
        let mixed = self.members.iter().any(|members| {
            let mut apps = members.iter().map(|&m| graph.app_of(m));
            let first = apps.next();
            apps.any(|a| Some(a) != first)
        });
        if mixed {
            ComponentKind::CrossApp
        } else {
            ComponentKind::AppDisjoint
        }
    }
}

/// Summary statistics of a block's conflict structure, used to validate
/// workload generators and report benchmark context.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConflictStats {
    /// Number of transactions.
    pub txns: usize,
    /// Number of ordering-dependency edges.
    pub edges: usize,
    /// Fraction of transactions with at least one incident edge — the
    /// "degree of contention" dial of §V-B.
    pub conflicting_fraction: f64,
    /// Critical-path length (see [`crate::ExecutionLayers`]).
    pub critical_path: usize,
    /// Fraction of edges whose endpoints belong to different applications.
    pub cross_app_edge_fraction: f64,
}

impl ConflictStats {
    /// Computes statistics for `graph`.
    #[must_use]
    pub fn compute(graph: &DependencyGraph) -> Self {
        let n = graph.len();
        let mut touched = vec![false; n];
        let mut cross = 0usize;
        let mut edges = 0usize;
        for (i, j) in graph.edges() {
            touched[i.0 as usize] = true;
            touched[j.0 as usize] = true;
            if graph.app_of(i) != graph.app_of(j) {
                cross += 1;
            }
            edges += 1;
        }
        let conflicting = touched.iter().filter(|&&t| t).count();
        let layers = crate::schedule::ExecutionLayers::compute(graph);
        ConflictStats {
            txns: n,
            edges,
            conflicting_fraction: if n == 0 { 0.0 } else { conflicting as f64 / n as f64 },
            critical_path: layers.critical_path(),
            cross_app_edge_fraction: if edges == 0 {
                0.0
            } else {
                cross as f64 / edges as f64
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::DependencyMode;

    use super::*;

    fn graph(apps: Vec<AppId>, edges: &[(u32, u32)]) -> DependencyGraph {
        let edges: Vec<_> = edges
            .iter()
            .map(|&(i, j)| (SeqNo(i), SeqNo(j)))
            .collect();
        DependencyGraph::from_edges(apps, &edges, DependencyMode::Full)
    }

    #[test]
    fn fig4a_single_app() {
        let g = graph(vec![AppId(1); 7], &[(0, 2), (1, 3), (4, 5)]);
        let c = GraphComponents::compute(&g);
        assert_eq!(c.classify(&g), ComponentKind::SingleApp);
    }

    #[test]
    fn fig4b_app_disjoint() {
        // Apps: A1 at 0,1; A2 at 2,3 — edges only within each app.
        let g = graph(
            vec![AppId(1), AppId(1), AppId(2), AppId(2)],
            &[(0, 1), (2, 3)],
        );
        let c = GraphComponents::compute(&g);
        assert_eq!(c.count(), 2);
        assert_eq!(c.classify(&g), ComponentKind::AppDisjoint);
    }

    #[test]
    fn fig4c_cross_app() {
        let g = graph(
            vec![AppId(1), AppId(2), AppId(1)],
            &[(0, 1), (1, 2)],
        );
        let c = GraphComponents::compute(&g);
        assert_eq!(c.count(), 1);
        assert_eq!(c.classify(&g), ComponentKind::CrossApp);
    }

    #[test]
    fn isolated_vertices_are_singleton_components() {
        let g = graph(vec![AppId(1); 3], &[]);
        let c = GraphComponents::compute(&g);
        assert_eq!(c.count(), 3);
        for i in 0..3 {
            assert_eq!(c.members(c.component_of(SeqNo(i))), &[SeqNo(i)]);
        }
    }

    #[test]
    fn multiple_apps_no_edges_is_app_disjoint() {
        let g = graph(vec![AppId(1), AppId(2)], &[]);
        let c = GraphComponents::compute(&g);
        assert_eq!(c.classify(&g), ComponentKind::AppDisjoint);
    }

    #[test]
    fn stats_on_chain() {
        let g = graph(vec![AppId(1), AppId(2), AppId(1)], &[(0, 1), (1, 2)]);
        let s = ConflictStats::compute(&g);
        assert_eq!(s.txns, 3);
        assert_eq!(s.edges, 2);
        assert!((s.conflicting_fraction - 1.0).abs() < 1e-9);
        assert_eq!(s.critical_path, 3);
        assert!((s.cross_app_edge_fraction - 1.0).abs() < 1e-9);
    }

    #[test]
    fn stats_on_empty_graph() {
        let g = graph(vec![], &[]);
        let s = ConflictStats::compute(&g);
        assert_eq!(s.txns, 0);
        assert_eq!(s.conflicting_fraction, 0.0);
        assert_eq!(s.cross_app_edge_fraction, 0.0);
    }
}
