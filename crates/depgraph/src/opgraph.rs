//! Operation-level dependency graphs (the DGCC-style refinement noted in
//! §III-A: "transactions are broken down into transaction components,
//! which allows the system to parallelize the execution at the level of
//! operations. The dependency graph generator module in OXII can also be
//! designed in a similar manner").
//!
//! A transaction-level graph serializes two transactions as soon as *any*
//! of their accesses conflict. At the operation level, only the
//! conflicting accesses themselves are ordered: a transfer's read of
//! account A need not wait for an earlier transaction that only touches
//! account B, even if the two transactions also conflict elsewhere
//! through other operations.
//!
//! The model here: each transaction contributes one [`OpRef`] per
//! declared access (a read or a write of one key). Edges follow the same
//! §III-A rules, applied per key. The resulting graph is a DAG over
//! operations; [`OpGraph::tx_critical_path`] shows how much of the
//! transaction-level critical path the refinement removes.

use std::collections::HashMap;

use parblock_types::{Block, Key, SeqNo};

/// Whether an operation reads or writes its key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// A read access.
    Read,
    /// A write access.
    Write,
}

/// One operation: a single access by one transaction to one key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OpRef {
    /// The owning transaction's in-block position.
    pub tx: SeqNo,
    /// The accessed key.
    pub key: Key,
    /// Access kind.
    pub kind: OpKind,
}

/// An operation-level dependency graph for one block.
#[derive(Debug, Clone)]
pub struct OpGraph {
    ops: Vec<OpRef>,
    /// Successor indices per op.
    succs: Vec<Vec<usize>>,
    /// Predecessor count per op.
    pred_count: Vec<usize>,
    edge_count: usize,
}

impl OpGraph {
    /// Builds the operation graph of `block`: per key, reads depend on
    /// the latest preceding write; writes depend on the preceding write
    /// and all reads since it (the reduced per-key construction).
    #[must_use]
    pub fn build(block: &Block) -> Self {
        let mut ops: Vec<OpRef> = Vec::new();
        for (seq, tx) in block.iter_seq() {
            for &key in tx.rw_set().reads() {
                ops.push(OpRef {
                    tx: seq,
                    key,
                    kind: OpKind::Read,
                });
            }
            for &key in tx.rw_set().writes() {
                ops.push(OpRef {
                    tx: seq,
                    key,
                    kind: OpKind::Write,
                });
            }
        }

        #[derive(Default)]
        struct KeyState {
            last_writer: Option<usize>,
            readers_since: Vec<usize>,
        }

        let mut succs = vec![Vec::new(); ops.len()];
        let mut pred_count = vec![0usize; ops.len()];
        let mut edge_count = 0usize;
        let mut keys: HashMap<Key, KeyState> = HashMap::new();
        let add_edge = |from: usize,
                            to: usize,
                            succs: &mut Vec<Vec<usize>>,
                            pred_count: &mut Vec<usize>| {
            succs[from].push(to);
            pred_count[to] += 1;
        };

        for (i, op) in ops.iter().enumerate() {
            let state = keys.entry(op.key).or_default();
            match op.kind {
                OpKind::Read => {
                    if let Some(w) = state.last_writer {
                        // Same-transaction RMW does not self-depend.
                        if ops[w].tx != op.tx {
                            add_edge(w, i, &mut succs, &mut pred_count);
                            edge_count += 1;
                        }
                    }
                    state.readers_since.push(i);
                }
                OpKind::Write => {
                    if let Some(w) = state.last_writer {
                        if ops[w].tx != op.tx {
                            add_edge(w, i, &mut succs, &mut pred_count);
                            edge_count += 1;
                        }
                    }
                    for &r in &state.readers_since {
                        if ops[r].tx != op.tx {
                            add_edge(r, i, &mut succs, &mut pred_count);
                            edge_count += 1;
                        }
                    }
                    state.last_writer = Some(i);
                    state.readers_since.clear();
                }
            }
        }
        OpGraph {
            ops,
            succs,
            pred_count,
            edge_count,
        }
    }

    /// Number of operations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Returns `true` for a block with no declared accesses.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of operation-level dependency edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// The operations, in block-then-declaration order.
    #[must_use]
    pub fn ops(&self) -> &[OpRef] {
        &self.ops
    }

    /// Critical path measured in *operations*.
    #[must_use]
    pub fn critical_path(&self) -> usize {
        self.depths().into_iter().max().map_or(0, |d| d + 1)
    }

    /// Critical path measured in *transactions*: the longest chain of
    /// distinct transactions along operation dependencies. This is the
    /// number an executor's scheduler experiences; comparing it to the
    /// transaction-level [`crate::ExecutionLayers::critical_path`]
    /// quantifies the DGCC-style gain.
    #[must_use]
    pub fn tx_critical_path(&self) -> usize {
        let n = self.ops.len();
        // Longest path counting a +1 only when crossing into a different
        // transaction.
        let mut tx_depth = vec![1usize; n];
        for i in 0..n {
            for &s in &self.succs[i] {
                let step = usize::from(self.ops[s].tx != self.ops[i].tx);
                if tx_depth[i] + step > tx_depth[s] {
                    tx_depth[s] = tx_depth[i] + step;
                }
            }
        }
        tx_depth.into_iter().max().unwrap_or(0)
    }

    fn depths(&self) -> Vec<usize> {
        let n = self.ops.len();
        let mut depth = vec![0usize; n];
        // Ops are appended in block order and edges only point forward,
        // so index order is a topological order.
        for i in 0..n {
            for &s in &self.succs[i] {
                depth[s] = depth[s].max(depth[i] + 1);
            }
        }
        depth
    }

    /// Sanity check: the graph is acyclic with consistent predecessor
    /// counts (used by property tests).
    #[must_use]
    pub fn is_consistent(&self) -> bool {
        let mut counted = vec![0usize; self.ops.len()];
        for succs in &self.succs {
            for &s in succs {
                counted[s] += 1;
            }
        }
        counted == self.pred_count
    }
}

#[cfg(test)]
mod tests {
    use parblock_types::{AppId, Block, BlockNumber, ClientId, Hash32, RwSet, Transaction};

    use crate::{DependencyGraph, DependencyMode, ExecutionLayers};

    use super::*;

    fn tx(ts: u64, reads: &[u64], writes: &[u64]) -> Transaction {
        Transaction::new(
            AppId(0),
            ClientId(1),
            ts,
            RwSet::new(
                reads.iter().copied().map(Key),
                writes.iter().copied().map(Key),
            ),
            vec![],
        )
    }

    fn block(txs: Vec<Transaction>) -> Block {
        Block::new(BlockNumber(1), Hash32::ZERO, txs)
    }

    #[test]
    fn independent_transactions_have_no_edges() {
        let b = block(vec![tx(0, &[1], &[2]), tx(1, &[3], &[4])]);
        let g = OpGraph::build(&b);
        assert_eq!(g.len(), 4);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.tx_critical_path(), 1);
        assert!(g.is_consistent());
    }

    #[test]
    fn refinement_beats_transaction_level_granularity() {
        // T0 writes {a}; T1 writes {a, b}; T2 reads {b} and writes {c}.
        // Transaction level: T0 → T1 → T2 (chain of 3).
        // Operation level: T2's read of b waits only for T1's write of
        // b — but T1's write of a waits for T0. The *transaction* chain
        // through operations is still 3, so use a case where it shrinks:
        // T0 writes {a}; T1 reads {b}, writes {a}; T2 reads {b}.
        // Tx level: T0→T1 (WW on a); T1 and T2 share only reads of b.
        let b = block(vec![
            tx(0, &[], &[1]),
            tx(1, &[2], &[1]),
            tx(2, &[2], &[]),
        ]);
        let tx_graph = DependencyGraph::build(&b, DependencyMode::Full);
        let tx_cp = ExecutionLayers::compute(&tx_graph).critical_path();
        let op_graph = OpGraph::build(&b);
        assert_eq!(tx_cp, 2);
        // T2's read of b has no predecessors at the operation level.
        assert_eq!(op_graph.tx_critical_path(), 2);

        // A sharper case: T0 writes {a, h}; T1 reads {h} writes {b};
        // T2 reads {b}. Tx level: chain T0→T1→T2 (3). Op level: T2 reads
        // b after T1's write of b; T1's write of b is independent of T0
        // (only T1's *read of h* depends on T0) — with per-operation
        // release, b's write may complete before h's read? No: within a
        // transaction the write depends on its own reads semantically,
        // which this model does not encode — it measures *scheduling*
        // freedom of the declared accesses.
        let b = block(vec![
            tx(0, &[], &[1, 7]),
            tx(1, &[7], &[2]),
            tx(2, &[2], &[]),
        ]);
        let tx_graph = DependencyGraph::build(&b, DependencyMode::Full);
        assert_eq!(ExecutionLayers::compute(&tx_graph).critical_path(), 3);
        let op_graph = OpGraph::build(&b);
        // Operation chains: w(7)@T0 → r(7)@T1 (2 txs), w(2)@T1 → r(2)@T2
        // (2 txs): the longest *transaction* chain through operations is
        // 2, not 3.
        assert_eq!(op_graph.tx_critical_path(), 2);
    }

    #[test]
    fn rmw_does_not_self_depend() {
        let b = block(vec![tx(0, &[1], &[1])]);
        let g = OpGraph::build(&b);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn write_chain_is_sequential_at_op_level_too() {
        let b = block(vec![
            tx(0, &[], &[1]),
            tx(1, &[], &[1]),
            tx(2, &[], &[1]),
        ]);
        let g = OpGraph::build(&b);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.critical_path(), 3);
        assert_eq!(g.tx_critical_path(), 3);
    }

    #[test]
    fn readers_between_writes_fan_out_and_join() {
        // w(k)@T0; r(k)@T1; r(k)@T2; w(k)@T3.
        let b = block(vec![
            tx(0, &[], &[1]),
            tx(1, &[1], &[]),
            tx(2, &[1], &[]),
            tx(3, &[], &[1]),
        ]);
        let g = OpGraph::build(&b);
        // Edges: w0→r1, w0→r2, r1→w3, r2→w3, and w0→w3 (the per-key
        // construction keeps the writer-to-writer edge).
        assert_eq!(g.edge_count(), 5);
        assert_eq!(g.critical_path(), 3);
    }

    #[test]
    fn empty_block() {
        let g = OpGraph::build(&block(vec![]));
        assert!(g.is_empty());
        assert_eq!(g.critical_path(), 0);
        assert_eq!(g.tx_critical_path(), 0);
    }
}
