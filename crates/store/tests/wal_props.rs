//! Property tests for WAL framing and torn-write tolerance.
//!
//! Two families (ISSUE 4, satellite 1):
//!
//! * **Round-trip** — arbitrary records encode/decode losslessly, both
//!   at the record level and through an on-disk WAL reopen.
//! * **Torn tail** — for a WAL whose final record is truncated at
//!   *every* byte offset, recovery yields exactly the preceding records
//!   and the log accepts appends again afterwards.

use proptest::prelude::*;

use parblock_ledger::Version;
use parblock_store::testutil::TempDir;
use parblock_store::wal::{Wal, WalRecord};
use parblock_types::{BlockNumber, Hash32, Key, SeqNo, Value};

/// Deterministically builds a value from two draws (the shim has no
/// enum strategy; spread the tag over the variants).
fn value_from(tag: u8, seed: i64) -> Value {
    match tag % 4 {
        0 => Value::Unit,
        1 => Value::Int(seed),
        2 => Value::Text(format!("v{seed}")),
        _ => Value::Bytes(seed.to_le_bytes().to_vec()),
    }
}

fn record_from(draw: &RecordDraw) -> WalRecord {
    if draw.is_seal {
        WalRecord::Seal {
            number: BlockNumber(draw.block),
            head: Hash32([draw.seq as u8; 32]),
        }
    } else {
        WalRecord::Effects {
            version: Version::new(BlockNumber(draw.block), SeqNo(draw.seq)),
            writes: draw
                .writes
                .iter()
                .map(|&(key, tag, seed)| (Key(key), value_from(tag, seed)))
                .collect(),
        }
    }
}

#[derive(Debug, Clone)]
struct RecordDraw {
    is_seal: bool,
    block: u64,
    seq: u32,
    writes: Vec<(u64, u8, i64)>,
}

fn record_strategy() -> impl Strategy<Value = RecordDraw> {
    (
        any::<bool>(),
        1u64..1_000_000,
        0u32..10_000,
        proptest::collection::vec((any::<u64>(), any::<u8>(), any::<i64>()), 0..6),
    )
        .prop_map(|(is_seal, block, seq, writes)| RecordDraw {
            is_seal,
            block,
            seq,
            writes,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Record encoding is lossless and rejects every strict prefix.
    #[test]
    fn record_encode_decode_round_trip(draw in record_strategy()) {
        let record = record_from(&draw);
        let mut bytes = Vec::new();
        record.encode(&mut bytes);
        let decoded = WalRecord::decode(&bytes);
        prop_assert_eq!(decoded.as_ref(), Some(&record));
        for cut in 0..bytes.len() {
            prop_assert_eq!(WalRecord::decode(&bytes[..cut]), None, "prefix {} decoded", cut);
        }
    }

    /// A WAL written, closed, and reopened replays exactly the appended
    /// records in order.
    #[test]
    fn wal_reopen_replays_exactly(
        draws in proptest::collection::vec(record_strategy(), 1..20),
        flush_interval in 1usize..8,
    ) {
        let records: Vec<WalRecord> = draws.iter().map(record_from).collect();
        let tmp = TempDir::new("props-reopen");
        {
            let (mut wal, existing) = Wal::open(tmp.path(), flush_interval).expect("open");
            prop_assert!(existing.is_empty());
            for record in &records {
                wal.append(record).expect("append");
            }
            wal.sync().expect("sync");
        }
        let (_, recovered) = Wal::open(tmp.path(), flush_interval).expect("reopen");
        prop_assert_eq!(recovered, records);
    }

    /// Torn-write tolerance: truncating the segment at **every** byte
    /// offset of the final record leaves a WAL that recovers exactly the
    /// preceding records and accepts appends again.
    #[test]
    fn torn_tail_recovery_at_every_offset(
        draws in proptest::collection::vec(record_strategy(), 1..6),
        last in record_strategy(),
    ) {
        let prefix: Vec<WalRecord> = draws.iter().map(record_from).collect();
        let final_record = record_from(&last);
        // Build the reference WAL once: prefix + final record.
        let tmp = TempDir::new("props-torn");
        {
            let (mut wal, _) = Wal::open(tmp.path(), 1).expect("open");
            for record in &prefix {
                wal.append(record).expect("append");
            }
            wal.append(&final_record).expect("append");
            wal.sync().expect("sync");
        }
        let segment = tmp.path().join("seg-00000000.log");
        let full = std::fs::read(&segment).expect("read segment");
        let mut last_len = Vec::new();
        final_record.encode(&mut last_len);
        let final_start = full.len() - (last_len.len() + 8); // frame header = 8
        // Every truncation offset within the final record's frame.
        for cut in final_start..full.len() {
            std::fs::write(&segment, &full[..cut]).expect("tear");
            let (mut wal, recovered) = Wal::open(tmp.path(), 1).expect("reopen");
            prop_assert_eq!(&recovered, &prefix, "cut at byte {}", cut);
            // The tail was physically truncated: appends resume cleanly.
            wal.append(&final_record).expect("append after tear");
            wal.sync().expect("sync");
            drop(wal);
            let (_, replayed) = Wal::open(tmp.path(), 1).expect("reopen 2");
            prop_assert_eq!(replayed.len(), prefix.len() + 1, "cut at byte {}", cut);
            prop_assert_eq!(replayed.last(), Some(&final_record), "cut at byte {}", cut);
            // Restore the original file for the next offset.
            std::fs::write(&segment, &full).expect("restore");
        }
        // Sanity: the untouched file replays everything.
        let (_, recovered) = Wal::open(tmp.path(), 1).expect("final reopen");
        prop_assert_eq!(recovered.len(), prefix.len() + 1);
    }
}
