//! Test support: a self-deleting temporary directory.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// A unique directory under the system temp dir, removed on drop.
/// Exposed (hidden) so the crate's integration tests and downstream
/// crash-recovery tests can share it.
#[doc(hidden)]
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Creates `TMPDIR/parblock-<prefix>-<pid>-<n>`.
    ///
    /// # Panics
    ///
    /// Panics if the directory cannot be created.
    #[must_use]
    pub fn new(prefix: &str) -> Self {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!(
            "parblock-{prefix}-{}-{n}",
            std::process::id()
        ));
        std::fs::create_dir_all(&path).expect("create temp dir");
        TempDir { path }
    }

    /// The directory path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}
