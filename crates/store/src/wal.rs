//! The segmented write-ahead log.
//!
//! Effects of committed transactions and block-seal markers are appended
//! as checksummed frames (`[len][crc32][payload]`, see DESIGN.md §9) to
//! numbered segment files `wal/seg-NNNNNNNN.log`. Appends are
//! group-committed: the active
//! segment is fsynced once `flush_interval` records accumulate, and
//! unconditionally when a block seals. Opening a WAL replays every
//! intact record and truncates the torn tail a crash may have left.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use parblock_ledger::Version;
use parblock_types::wire::{Reader, Wire};
use parblock_types::{BlockNumber, Hash32, Key, SeqNo, Value};

use crate::frame;

/// One durable WAL entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// The committed write-set of the transaction at `version`. Logged
    /// before any COMMIT message carrying the result leaves the node.
    Effects {
        /// The writer's log position `(block, seq)`.
        version: Version,
        /// The record updates the transaction produced.
        writes: Vec<(Key, Value)>,
    },
    /// Block `number` fully committed; `head` is the ledger head hash
    /// after it. This record is the durable commit point of the block.
    Seal {
        /// The sealed block.
        number: BlockNumber,
        /// Ledger head hash after the block.
        head: Hash32,
    },
}

impl WalRecord {
    /// The block this record pertains to (drives WAL truncation: a
    /// segment may be deleted once a checkpoint covers every record's
    /// block).
    #[must_use]
    pub fn block(&self) -> u64 {
        match self {
            WalRecord::Effects { version, .. } => version.block.0,
            WalRecord::Seal { number, .. } => number.0,
        }
    }

    /// Appends the canonical encoding to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            WalRecord::Effects { version, writes } => {
                1u8.encode(out);
                version.block.0.encode(out);
                version.seq.0.encode(out);
                (writes.len() as u64).encode(out);
                for (key, value) in writes {
                    key.0.encode(out);
                    value.encode(out);
                }
            }
            WalRecord::Seal { number, head } => {
                2u8.encode(out);
                number.0.encode(out);
                out.extend_from_slice(&head.0);
            }
        }
    }

    /// Decodes a record from exactly these bytes (one frame payload).
    /// Returns `None` on malformed input.
    #[must_use]
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        let mut reader = Reader::new(bytes);
        let record = match reader.u8()? {
            1 => {
                let block = BlockNumber(reader.u64()?);
                let seq = SeqNo(reader.u32()?);
                let count = usize::try_from(reader.u64()?).ok()?;
                if count > reader.remaining() / 9 {
                    return None; // each write is ≥ 9 bytes
                }
                let mut writes = Vec::with_capacity(count);
                for _ in 0..count {
                    let key = Key(reader.u64()?);
                    let value = Value::decode(&mut reader)?;
                    writes.push((key, value));
                }
                WalRecord::Effects {
                    version: Version::new(block, seq),
                    writes,
                }
            }
            2 => {
                let number = BlockNumber(reader.u64()?);
                let mut head = [0u8; 32];
                for byte in &mut head {
                    *byte = reader.u8()?;
                }
                WalRecord::Seal {
                    number,
                    head: Hash32(head),
                }
            }
            _ => return None,
        };
        reader.is_exhausted().then_some(record)
    }
}

/// A closed (no longer written) segment, kept until a checkpoint covers
/// every block it mentions.
#[derive(Debug)]
struct ClosedSegment {
    path: PathBuf,
    /// Highest block number any record in the segment pertains to
    /// (`0` for an empty segment).
    max_block: u64,
}

/// The write-ahead log over one node's `wal/` directory.
#[derive(Debug)]
pub struct Wal {
    dir: PathBuf,
    active: File,
    active_path: PathBuf,
    active_index: u64,
    active_max_block: u64,
    /// Records appended since the last fsync (group commit).
    pending: usize,
    flush_interval: usize,
    closed: Vec<ClosedSegment>,
    bytes_written: u64,
    fsyncs: u64,
}

fn segment_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("seg-{index:08}.log"))
}

fn segment_index(path: &Path) -> Option<u64> {
    let name = path.file_name()?.to_str()?;
    let digits = name.strip_prefix("seg-")?.strip_suffix(".log")?;
    digits.parse().ok()
}

fn read_file(path: &Path) -> io::Result<Vec<u8>> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    Ok(bytes)
}

/// Fault injection for the deterministic simulator: truncates up to
/// `bytes` from the end of the **newest** WAL segment under
/// `wal_dir`, modelling writes that sat in the page cache when the
/// machine died (everything after the last completed fsync may vanish;
/// the kernel drops it from the tail backwards on a single segment).
///
/// This is only sound as a *tail* tear: WAL records are appended in
/// effect→seal order, so any surviving prefix is a consistent earlier
/// watermark, and [`Wal::open`] already truncates a torn trailing frame.
/// Returns the number of bytes removed (zero when the directory has no
/// segments).
///
/// # Errors
///
/// Any I/O failure listing or truncating segment files.
pub fn tear_wal_tail(wal_dir: &Path, bytes: u64) -> io::Result<u64> {
    let entries = match fs::read_dir(wal_dir) {
        Ok(entries) => entries,
        // No WAL directory: nothing to tear. Anything else (permissions,
        // transient I/O) must surface — a silently skipped tear would
        // make a fault schedule weaker than its seed claims.
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(0),
        Err(e) => return Err(e),
    };
    let newest = entries
        .filter_map(|entry| {
            let path = entry.ok()?.path();
            segment_index(&path).map(|index| (index, path))
        })
        .max_by_key(|(index, _)| *index);
    let Some((_, path)) = newest else {
        return Ok(0);
    };
    let len = fs::metadata(&path)?.len();
    let torn = bytes.min(len);
    if torn > 0 {
        let file = OpenOptions::new().write(true).open(&path)?;
        file.set_len(len - torn)?;
        file.sync_all()?;
    }
    Ok(torn)
}

/// Fsyncs a directory so file creations/renames/removals inside it are
/// durable (best-effort: not all platforms support syncing directories).
pub(crate) fn sync_dir(dir: &Path) -> io::Result<()> {
    match File::open(dir) {
        Ok(handle) => match handle.sync_all() {
            Ok(()) => Ok(()),
            // Directory fsync is unsupported on some filesystems.
            Err(e) if e.kind() == io::ErrorKind::Unsupported => Ok(()),
            Err(e) => Err(e),
        },
        Err(e) => Err(e),
    }
}

impl Wal {
    /// Opens (or creates) the WAL under `dir`, replaying every intact
    /// record in segment order. The torn tail a crash may have left is
    /// physically truncated; recovery is a clean prefix — if a torn
    /// frame is found in a non-final segment (which group-commit
    /// ordering makes impossible without filesystem reordering), the
    /// later segments are discarded too.
    ///
    /// # Errors
    ///
    /// Any I/O failure reading, truncating, or creating segment files.
    pub fn open(dir: &Path, flush_interval: usize) -> io::Result<(Self, Vec<WalRecord>)> {
        fs::create_dir_all(dir)?;
        let mut paths: Vec<(u64, PathBuf)> = fs::read_dir(dir)?
            .filter_map(|entry| {
                let path = entry.ok()?.path();
                segment_index(&path).map(|index| (index, path))
            })
            .collect();
        paths.sort_unstable_by_key(|(index, _)| *index);

        let mut records = Vec::new();
        let mut closed = Vec::new();
        let mut tail: Option<(u64, PathBuf, u64)> = None; // (index, path, max_block)
        let mut torn_at: Option<usize> = None;
        for (position, (index, path)) in paths.iter().enumerate() {
            let bytes = read_file(path)?;
            let (frames, clean_len) = frame::scan(&bytes);
            let mut max_block = 0u64;
            for &(start, end) in &frames {
                let record = WalRecord::decode(&bytes[start..end]).ok_or_else(|| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("undecodable WAL record in {}", path.display()),
                    )
                })?;
                max_block = max_block.max(record.block());
                records.push(record);
            }
            if clean_len < bytes.len() {
                // Torn tail: truncate it away and stop at this segment.
                let file = OpenOptions::new().write(true).open(path)?;
                file.set_len(clean_len as u64)?;
                file.sync_all()?;
                tail = Some((*index, path.clone(), max_block));
                torn_at = Some(position);
                break;
            }
            if position + 1 == paths.len() {
                tail = Some((*index, path.clone(), max_block));
            } else {
                closed.push(ClosedSegment {
                    path: path.clone(),
                    max_block,
                });
            }
        }
        if let Some(position) = torn_at {
            // Conservative prefix recovery: segments after a hole are
            // unusable (appends there were never acknowledged).
            for (_, path) in &paths[position + 1..] {
                fs::remove_file(path)?;
            }
        }

        let (active_index, active_path, active_max_block) = match tail {
            Some(t) => t,
            None => {
                let path = segment_path(dir, 0);
                (0, path, 0)
            }
        };
        let active = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&active_path)?;
        sync_dir(dir)?;
        let wal = Wal {
            dir: dir.to_path_buf(),
            active,
            active_path,
            active_index,
            active_max_block,
            pending: 0,
            flush_interval: flush_interval.max(1),
            closed,
            bytes_written: 0,
            fsyncs: 0,
        };
        Ok((wal, records))
    }

    /// Appends one record, fsyncing if the group-commit interval is
    /// reached.
    ///
    /// # Errors
    ///
    /// Any I/O failure writing or syncing the active segment.
    pub fn append(&mut self, record: &WalRecord) -> io::Result<()> {
        let mut payload = Vec::new();
        record.encode(&mut payload);
        let mut framed = Vec::with_capacity(frame::HEADER_LEN + payload.len());
        frame::append_frame(&mut framed, &payload);
        self.active.write_all(&framed)?;
        self.bytes_written += framed.len() as u64;
        self.active_max_block = self.active_max_block.max(record.block());
        self.pending += 1;
        if self.pending >= self.flush_interval {
            self.sync()?;
        }
        Ok(())
    }

    /// Forces an fsync of the active segment (a no-op when no record is
    /// pending).
    ///
    /// # Errors
    ///
    /// Any I/O failure syncing the active segment.
    pub fn sync(&mut self) -> io::Result<()> {
        if self.pending == 0 {
            return Ok(());
        }
        self.active.sync_data()?;
        self.fsyncs += 1;
        self.pending = 0;
        Ok(())
    }

    /// Closes the active segment (fsyncing it) and starts a new one.
    /// Called at checkpoint creation so whole segments become eligible
    /// for truncation.
    ///
    /// # Errors
    ///
    /// Any I/O failure syncing the old segment or creating the new one.
    pub fn rotate(&mut self) -> io::Result<()> {
        self.active.sync_data()?;
        self.fsyncs += 1;
        self.pending = 0;
        let next_index = self.active_index + 1;
        let next_path = segment_path(&self.dir, next_index);
        let next = OpenOptions::new()
            .create_new(true)
            .append(true)
            .open(&next_path)?;
        sync_dir(&self.dir)?;
        self.fsyncs += 1;
        let old_path = std::mem::replace(&mut self.active_path, next_path);
        self.closed.push(ClosedSegment {
            path: old_path,
            max_block: self.active_max_block,
        });
        self.active = next;
        self.active_index = next_index;
        self.active_max_block = 0;
        Ok(())
    }

    /// Deletes closed segments whose every record pertains to a block at
    /// or below `watermark` (i.e. fully covered by a checkpoint).
    /// Returns how many segments were deleted.
    ///
    /// # Errors
    ///
    /// Any I/O failure removing files.
    pub fn truncate_below(&mut self, watermark: u64) -> io::Result<usize> {
        let mut deleted = 0;
        let mut keep = Vec::new();
        for segment in self.closed.drain(..) {
            if segment.max_block <= watermark {
                fs::remove_file(&segment.path)?;
                deleted += 1;
            } else {
                keep.push(segment);
            }
        }
        self.closed = keep;
        if deleted > 0 {
            sync_dir(&self.dir)?;
            self.fsyncs += 1;
        }
        Ok(deleted)
    }

    /// Number of segment files currently on disk (closed + active).
    #[must_use]
    pub fn segment_count(&self) -> usize {
        self.closed.len() + 1
    }

    /// Total bytes appended through this handle (framing included).
    #[must_use]
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Fsync barriers issued through this handle.
    #[must_use]
    pub fn fsyncs(&self) -> u64 {
        self.fsyncs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::TempDir;

    fn effects(block: u64, seq: u32, val: i64) -> WalRecord {
        WalRecord::Effects {
            version: Version::new(BlockNumber(block), SeqNo(seq)),
            writes: vec![(Key(1), Value::Int(val))],
        }
    }

    fn seal(block: u64) -> WalRecord {
        WalRecord::Seal {
            number: BlockNumber(block),
            head: Hash32([block as u8; 32]),
        }
    }

    #[test]
    fn append_close_reopen_replays_records() {
        let tmp = TempDir::new("wal-reopen");
        let (mut wal, recovered) = Wal::open(tmp.path(), 2).expect("open");
        assert!(recovered.is_empty());
        wal.append(&effects(1, 0, 10)).expect("append");
        wal.append(&seal(1)).expect("append");
        wal.sync().expect("sync");
        drop(wal);
        let (_, recovered) = Wal::open(tmp.path(), 2).expect("reopen");
        assert_eq!(recovered, vec![effects(1, 0, 10), seal(1)]);
    }

    #[test]
    fn torn_tail_loses_a_suffix_and_recovery_stays_a_clean_prefix() {
        let tmp = TempDir::new("wal-tear");
        let (mut wal, _) = Wal::open(tmp.path(), 1).expect("open");
        for i in 0..4 {
            wal.append(&effects(1, i, i64::from(i))).expect("append");
        }
        drop(wal);
        // Tear a few bytes: the final frame becomes torn and is dropped;
        // everything before it replays intact.
        let torn = tear_wal_tail(tmp.path(), 3).expect("tear");
        assert_eq!(torn, 3);
        let (_, recovered) = Wal::open(tmp.path(), 1).expect("reopen");
        assert_eq!(recovered.len(), 3, "exactly the torn record is lost");
        assert_eq!(recovered[2], effects(1, 2, 2));
        // Tearing more than the file holds empties it without error.
        let torn = tear_wal_tail(tmp.path(), u64::MAX).expect("tear all");
        assert!(torn > 0);
        let (_, recovered) = Wal::open(tmp.path(), 1).expect("reopen empty");
        assert!(recovered.is_empty());
        // A directory without segments tears zero bytes.
        let empty = TempDir::new("wal-tear-empty");
        assert_eq!(tear_wal_tail(empty.path(), 100).expect("no-op"), 0);
        assert_eq!(
            tear_wal_tail(&empty.path().join("missing"), 100).expect("no dir"),
            0
        );
    }

    #[test]
    fn group_commit_counts_fsyncs() {
        let tmp = TempDir::new("wal-group");
        let (mut wal, _) = Wal::open(tmp.path(), 3).expect("open");
        for i in 0..6 {
            wal.append(&effects(1, i, 0)).expect("append");
        }
        assert_eq!(wal.fsyncs(), 2, "6 records at interval 3");
        wal.sync().expect("sync");
        assert_eq!(wal.fsyncs(), 2, "nothing pending: no extra fsync");
        wal.append(&effects(1, 9, 0)).expect("append");
        wal.sync().expect("sync");
        assert_eq!(wal.fsyncs(), 3);
        assert!(wal.bytes_written() > 0);
    }

    #[test]
    fn rotation_and_truncation_drop_covered_segments() {
        let tmp = TempDir::new("wal-rotate");
        let (mut wal, _) = Wal::open(tmp.path(), 100).expect("open");
        wal.append(&effects(1, 0, 1)).expect("append");
        wal.append(&seal(1)).expect("append");
        wal.rotate().expect("rotate");
        // Segment 0 covers blocks ≤ 1; segment 1 holds block 2 effects.
        wal.append(&effects(2, 0, 2)).expect("append");
        wal.rotate().expect("rotate");
        assert_eq!(wal.segment_count(), 3);
        assert_eq!(wal.truncate_below(1).expect("truncate"), 1);
        assert_eq!(wal.segment_count(), 2, "block-2 segment survives");
        assert_eq!(wal.truncate_below(2).expect("truncate"), 1);
        drop(wal);
        let (_, recovered) = Wal::open(tmp.path(), 100).expect("reopen");
        assert!(recovered.is_empty(), "all segments truncated: {recovered:?}");
    }

    #[test]
    fn torn_tail_is_truncated_and_appends_resume() {
        let tmp = TempDir::new("wal-torn");
        let (mut wal, _) = Wal::open(tmp.path(), 100).expect("open");
        wal.append(&effects(1, 0, 1)).expect("append");
        wal.append(&effects(1, 1, 2)).expect("append");
        wal.sync().expect("sync");
        drop(wal);
        // Tear the last record mid-frame.
        let seg = segment_path(tmp.path(), 0);
        let len = fs::metadata(&seg).expect("meta").len();
        let file = OpenOptions::new().write(true).open(&seg).expect("open");
        file.set_len(len - 3).expect("truncate");
        drop(file);
        let (mut wal, recovered) = Wal::open(tmp.path(), 100).expect("reopen");
        assert_eq!(recovered, vec![effects(1, 0, 1)]);
        wal.append(&effects(1, 2, 3)).expect("append resumes");
        wal.sync().expect("sync");
        drop(wal);
        let (_, recovered) = Wal::open(tmp.path(), 100).expect("reopen 2");
        assert_eq!(recovered, vec![effects(1, 0, 1), effects(1, 2, 3)]);
    }

    #[test]
    fn record_decode_rejects_garbage() {
        assert_eq!(WalRecord::decode(&[]), None);
        assert_eq!(WalRecord::decode(&[9, 0, 0]), None);
        let mut bytes = Vec::new();
        seal(3).encode(&mut bytes);
        bytes.push(0); // trailing garbage
        assert_eq!(WalRecord::decode(&bytes), None);
    }
}
