//! The composed per-node store: WAL + block store + checkpoints, and
//! the recovery path that rebuilds a node from them.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use parblock_depgraph::DependencyGraph;
use parblock_ledger::{
    prune_to_sealed, ChainError, Durability, DurabilityStats, Ledger, MvccState, Version,
};
use parblock_types::{Block, BlockNumber, DurabilityConfig, Hash32, Key, SeqNo, Value};

use crate::blocks::BlockFile;
use crate::checkpoint::{self, Checkpoint};
use crate::wal::{Wal, WalRecord};

/// Everything recovery reconstructs from one node's store.
#[derive(Debug, Clone)]
pub struct Recovered {
    /// Sealed blocks (and their dependency graphs) in commit order, up
    /// to the watermark.
    pub chain: Vec<(Block, Option<DependencyGraph>)>,
    /// State entries to overlay (in order) onto a genesis-seeded
    /// [`MvccState`]: checkpoint snapshot first, then replayed WAL
    /// effects above it.
    pub state_entries: Vec<(Key, Value, Version)>,
    /// The sealed commit watermark (0 for an empty store).
    pub watermark: BlockNumber,
    /// Ledger head hash at the watermark.
    pub head: Hash32,
    /// WAL records replayed above the checkpoint (effects applied plus
    /// seal markers advanced).
    pub replay_len: u64,
}

impl Recovered {
    /// `true` when the store held no sealed block.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.watermark.0 == 0
    }

    /// Rebuilds the hash-chained ledger from the recovered blocks,
    /// re-verifying every link.
    ///
    /// # Errors
    ///
    /// The first broken hash link or numbering gap found.
    pub fn ledger(&self) -> Result<Ledger, ChainError> {
        let mut ledger = Ledger::new();
        for (block, _) in &self.chain {
            ledger.append(block.clone())?;
        }
        Ok(ledger)
    }

    /// Overlays the recovered state entries onto `state` (typically a
    /// genesis-seeded store), in recovery order.
    pub fn overlay_state(&self, state: &mut MvccState) {
        for (key, value, version) in &self.state_entries {
            state.put(*key, value.clone(), *version);
        }
    }
}

/// One node's durable store. See the crate docs for the file layout and
/// DESIGN.md §9 for the invariants.
#[derive(Debug)]
pub struct Store {
    config: DurabilityConfig,
    wal: Wal,
    blocks: BlockFile,
    ckpt_dir: PathBuf,
    watermark: u64,
    head: Hash32,
    /// Blocks sealed since the last checkpoint.
    since_checkpoint: u64,
    checkpoints_written: u64,
    checkpoint_fsyncs: u64,
    replay_len: u64,
}

impl Store {
    /// The conventional per-node directory under a cluster data dir.
    #[must_use]
    pub fn node_dir(base: &Path, node: u32) -> PathBuf {
        base.join(format!("node-{node}"))
    }

    /// Opens (or creates) the store under `dir` and recovers its
    /// durable state: newest intact checkpoint, WAL replay above it,
    /// torn-tail truncation, and orphan-body trimming back to the
    /// sealed watermark. The rebuilt hash chain is re-verified against
    /// the recorded head.
    ///
    /// # Errors
    ///
    /// I/O failures, or `InvalidData` when the store is internally
    /// inconsistent (e.g. a sealed block without its body, or a chain
    /// that does not hash to the recorded head).
    pub fn open(dir: &Path, config: DurabilityConfig) -> io::Result<(Self, Recovered)> {
        let config = config.sanitized();
        fs::create_dir_all(dir)?;
        let ckpt_dir = dir.join("ckpt");
        let ckpt: Option<Checkpoint> = checkpoint::load_latest(&ckpt_dir)?;
        let (wal, records) = Wal::open(&dir.join("wal"), config.flush_interval)?;
        let (mut blocks, entries) = BlockFile::open(dir)?;

        let ckpt_watermark = ckpt.as_ref().map_or(0, |c| c.watermark.0);
        let mut watermark = ckpt_watermark;
        let mut head = ckpt.as_ref().map_or(Ledger::genesis_hash(), |c| c.head);
        let mut replay_len = 0u64;
        // First pass: the sealed watermark is the highest seal on record.
        for record in &records {
            if let WalRecord::Seal { number, head: h } = record {
                if number.0 > watermark {
                    watermark = number.0;
                    head = *h;
                }
            }
        }
        if (entries.len() as u64) < watermark {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "sealed watermark {watermark} exceeds stored bodies ({})",
                    entries.len()
                ),
            ));
        }
        // Second pass: state = checkpoint snapshot + effects above it,
        // dropping the unsealed suffix (blocks above the watermark were
        // never acknowledged; the cluster re-executes them).
        let mut state_entries: Vec<(Key, Value, Version)> =
            ckpt.map(|c| c.entries).unwrap_or_default();
        for record in &records {
            match record {
                WalRecord::Effects { version, writes } => {
                    if version.block.0 > ckpt_watermark && version.block.0 <= watermark {
                        replay_len += 1;
                        state_entries
                            .extend(writes.iter().map(|(k, v)| (*k, v.clone(), *version)));
                    }
                }
                WalRecord::Seal { number, .. } => {
                    if number.0 > ckpt_watermark && number.0 <= watermark {
                        replay_len += 1;
                    }
                }
            }
        }
        // Trim orphan bodies beyond the watermark (body fsynced, crash
        // before the seal record): the block was never committed.
        let keep = usize::try_from(watermark).expect("watermark fits usize");
        blocks.truncate_to(keep)?;
        let chain: Vec<(Block, Option<DependencyGraph>)> = entries.into_iter().take(keep).collect();

        let recovered = Recovered {
            chain,
            state_entries,
            watermark: BlockNumber(watermark),
            head,
            replay_len,
        };
        // Integrity: the recovered chain must hash to the recorded head.
        let ledger = recovered
            .ledger()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        if ledger.head_hash() != head {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "recovered chain does not hash to the recorded head",
            ));
        }

        let store = Store {
            config,
            wal,
            blocks,
            ckpt_dir,
            watermark,
            head,
            since_checkpoint: watermark.saturating_sub(ckpt_watermark),
            checkpoints_written: 0,
            checkpoint_fsyncs: 0,
            replay_len,
        };
        Ok((store, recovered))
    }

    /// Appends the committed write-set of the transaction at `version`
    /// to the WAL (group-commit fsync policy).
    ///
    /// # Errors
    ///
    /// Any WAL I/O failure.
    pub fn log_effects(&mut self, version: Version, writes: &[(Key, Value)]) -> io::Result<()> {
        self.wal.append(&WalRecord::Effects {
            version,
            writes: writes.to_vec(),
        })
    }

    /// Durably seals `block`: body append + fsync to the block store,
    /// then a seal record + fsync to the WAL (covering any effects still
    /// pending in the group-commit window). On return the block is the
    /// durable commit watermark.
    ///
    /// # Errors
    ///
    /// Any I/O failure, or `InvalidData` for a non-contiguous block.
    pub fn seal_block(
        &mut self,
        block: &Block,
        graph: Option<&DependencyGraph>,
        head: Hash32,
    ) -> io::Result<()> {
        self.blocks.append(block, graph)?;
        self.wal.append(&WalRecord::Seal {
            number: block.number(),
            head,
        })?;
        self.wal.sync()?;
        self.watermark = block.number().0;
        self.head = head;
        self.since_checkpoint += 1;
        Ok(())
    }

    /// Whether the checkpoint interval has elapsed since the last
    /// checkpoint (or since recovery).
    #[must_use]
    pub fn checkpoint_due(&self) -> bool {
        self.since_checkpoint >= self.config.checkpoint_interval
    }

    /// Publishes a checkpoint of `entries` (the state snapshot at the
    /// current watermark), rotates the WAL, and deletes WAL segments
    /// wholly below the watermark.
    ///
    /// # Errors
    ///
    /// Any I/O failure publishing or truncating.
    pub fn write_checkpoint(
        &mut self,
        entries: Vec<(Key, Value, Version)>,
    ) -> io::Result<()> {
        let checkpoint = Checkpoint {
            watermark: BlockNumber(self.watermark),
            head: self.head,
            entries,
        };
        self.checkpoint_fsyncs += checkpoint::publish(&self.ckpt_dir, &checkpoint)?;
        self.wal.rotate()?;
        self.wal.truncate_below(self.watermark)?;
        self.checkpoints_written += 1;
        self.since_checkpoint = 0;
        Ok(())
    }

    /// The sealed commit watermark.
    #[must_use]
    pub fn watermark(&self) -> BlockNumber {
        BlockNumber(self.watermark)
    }

    /// Ledger head hash at the watermark.
    #[must_use]
    pub fn head(&self) -> Hash32 {
        self.head
    }

    /// WAL segment files currently on disk.
    #[must_use]
    pub fn wal_segments(&self) -> usize {
        self.wal.segment_count()
    }

    /// Accumulated durability counters (fsyncs across WAL, block store,
    /// and checkpoints; WAL bytes; checkpoints; recovery replay length).
    #[must_use]
    pub fn stats(&self) -> DurabilityStats {
        DurabilityStats {
            wal_bytes_written: self.wal.bytes_written(),
            fsync_count: self.wal.fsyncs() + self.blocks.fsyncs() + self.checkpoint_fsyncs,
            checkpoint_count: self.checkpoints_written,
            recovery_replay_len: self.replay_len,
        }
    }
}

/// The on-disk [`Durability`] implementation executor nodes plug in. A
/// persistence failure is fatal to the node (it can no longer honour
/// persist-before-COMMIT), surfaced as a panic that kills the node
/// thread — the crash the durability layer exists to make safe.
#[derive(Debug)]
pub struct OnDisk {
    store: Store,
    /// Lifecycle recorder (DESIGN.md §14): when attached (observer node,
    /// tracing enabled), every `seal_block` duration — the fsync barrier
    /// on the commit path — feeds the trace's seal histogram.
    trace: parblock_trace::TraceRecorder,
}

impl OnDisk {
    /// Opens the store under `dir` (see [`Store::open`]) and wraps it.
    ///
    /// # Errors
    ///
    /// See [`Store::open`].
    pub fn open(dir: &Path, config: DurabilityConfig) -> io::Result<(Self, Recovered)> {
        let (store, recovered) = Store::open(dir, config)?;
        Ok((
            OnDisk {
                store,
                trace: parblock_trace::TraceRecorder::default(),
            },
            recovered,
        ))
    }

    /// Attaches a lifecycle recorder; subsequent block seals are timed
    /// into its seal histogram. A disabled recorder is free.
    pub fn set_trace(&mut self, trace: parblock_trace::TraceRecorder) {
        self.trace = trace;
    }

    /// The wrapped store (for inspection in tests and tools).
    #[must_use]
    pub fn store(&self) -> &Store {
        &self.store
    }
}

impl Durability for OnDisk {
    fn log_effects(&mut self, version: Version, writes: &[(Key, Value)]) {
        self.store
            .log_effects(version, writes)
            .expect("WAL append failed: node cannot guarantee persist-before-COMMIT");
    }

    fn seal_block(
        &mut self,
        block: &Block,
        graph: Option<&DependencyGraph>,
        head: Hash32,
        state: &mut MvccState,
    ) {
        // Timestamps come from the recorder's injected clock, never the
        // wall clock directly, so the virtual-time leg stays reproducible.
        let sealing_since = self.trace.clock().map(parblock_types::Clock::now);
        self.store
            .seal_block(block, graph, head)
            .expect("block seal failed: node cannot guarantee durability");
        if let Some(started) = sealing_since {
            self.trace.record_seal(started);
        }
        // GC and checkpointing advance together: prune to the new
        // watermark, and snapshot the *pruned* state when due.
        prune_to_sealed(block, state);
        if self.store.checkpoint_due() {
            let horizon = Version::new(block.number(), SeqNo(u32::MAX));
            let snapshot = state.snapshot_at(horizon);
            self.store
                .write_checkpoint(snapshot)
                .expect("checkpoint publish failed");
        }
    }

    fn stats(&self) -> DurabilityStats {
        self.store.stats()
    }
}

fn copy_dir_all(src: &Path, dst: &Path) -> io::Result<()> {
    fs::create_dir_all(dst)?;
    for entry in fs::read_dir(src)? {
        let entry = entry?;
        let to = dst.join(entry.file_name());
        if entry.file_type()?.is_dir() {
            copy_dir_all(&entry.path(), &to)?;
        } else {
            fs::copy(entry.path(), &to)?;
        }
    }
    Ok(())
}

/// Startup state transfer for a whole cluster data directory: recovers
/// every existing `node-<id>` store among `sources`, picks the one with
/// the highest sealed watermark (nodes crash at different points; all
/// persisted chains are prefixes of the same deterministic chain), and
/// copies it over every other node directory in `sources` and
/// `targets`, so the restarted cluster resumes from one consistent
/// watermark. Returns that watermark.
///
/// `sources` must be nodes whose stores carry transaction effects
/// (executor peers); `targets` are chain-only nodes (orderers) that
/// receive the winning store but never compete to provide it — an
/// orderer's store has no effects, so recovering an executor from it
/// would lose the datastore.
///
/// This is the file-level analogue of the block-synchronisation a real
/// deployment performs at startup; mid-run retransmission remains out
/// of scope (DESIGN.md §9).
///
/// # Errors
///
/// Any I/O failure, or `InvalidData` if a store is internally
/// inconsistent.
pub fn reconcile_cluster(
    base: &Path,
    sources: &[u32],
    targets: &[u32],
    config: DurabilityConfig,
) -> io::Result<BlockNumber> {
    let mut best: Option<(u64, PathBuf)> = None;
    for &node in sources {
        let dir = Store::node_dir(base, node);
        if !dir.exists() {
            continue;
        }
        let (store, _) = Store::open(&dir, config)?;
        let watermark = store.watermark().0;
        drop(store);
        if best.as_ref().is_none_or(|(w, _)| watermark > *w) {
            best = Some((watermark, dir));
        }
    }
    let Some((watermark, winner)) = best else {
        return Ok(BlockNumber(0));
    };
    for &node in sources.iter().chain(targets) {
        let dir = Store::node_dir(base, node);
        if dir == winner {
            continue;
        }
        if dir.exists() {
            fs::remove_dir_all(&dir)?;
        }
        copy_dir_all(&winner, &dir)?;
    }
    Ok(BlockNumber(watermark))
}

#[cfg(test)]
mod tests {
    use parblock_crypto::hash_wire;
    use parblock_types::{AppId, ClientId, RwSet, Transaction};

    use super::*;
    use crate::testutil::TempDir;

    fn tx(ts: u64) -> Transaction {
        Transaction::new(AppId(0), ClientId(1), ts, RwSet::default(), vec![])
    }

    fn config() -> DurabilityConfig {
        DurabilityConfig {
            flush_interval: 4,
            checkpoint_interval: 2,
        }
    }

    /// Runs `n` blocks through a store: each block writes Key(b) =
    /// Int(b) and re-writes Key(0), mimicking an executor's cadence.
    fn drive(store: &mut Store, state: &mut MvccState, ledger: &mut Ledger, n: u64) {
        let start = ledger.next_number().0;
        for b in start..start + n {
            let version = Version::new(BlockNumber(b), SeqNo(0));
            let writes = vec![(Key(b), Value::Int(b as i64)), (Key(0), Value::Int(b as i64))];
            store.log_effects(version, &writes).expect("log");
            state.apply(writes, version);
            let block = Block::new(BlockNumber(b), ledger.head_hash(), vec![tx(b)]);
            let head = hash_wire(&block);
            store.seal_block(&block, None, head).expect("seal");
            ledger.append(block).expect("append");
            prune_to_sealed(ledger.block(BlockNumber(b)).expect("present"), state);
            if store.checkpoint_due() {
                let snapshot = state.snapshot_at(Version::new(BlockNumber(b), SeqNo(u32::MAX)));
                store.write_checkpoint(snapshot).expect("checkpoint");
            }
        }
    }

    #[test]
    fn recover_matches_live_state_and_chain() {
        let tmp = TempDir::new("store-recover");
        let (live_state, live_ledger) = {
            let (mut store, recovered) = Store::open(tmp.path(), config()).expect("open");
            assert!(recovered.is_empty());
            let mut state = MvccState::with_genesis([(Key(99), Value::Int(-1))]);
            let mut ledger = Ledger::new();
            drive(&mut store, &mut state, &mut ledger, 5);
            assert!(store.stats().checkpoint_count >= 2);
            (state, ledger)
        };
        let (store, recovered) = Store::open(tmp.path(), config()).expect("reopen");
        assert_eq!(recovered.watermark, BlockNumber(5));
        assert_eq!(recovered.head, live_ledger.head_hash());
        let ledger = recovered.ledger().expect("chain verifies");
        assert_eq!(ledger.head_hash(), live_ledger.head_hash());
        let mut state = MvccState::with_genesis([(Key(99), Value::Int(-1))]);
        recovered.overlay_state(&mut state);
        assert_eq!(state.digest(), live_state.digest());
        assert!(store.stats().recovery_replay_len > 0);
    }

    #[test]
    fn unsealed_suffix_is_dropped() {
        let tmp = TempDir::new("store-suffix");
        {
            let (mut store, _) = Store::open(tmp.path(), config()).expect("open");
            let mut state = MvccState::new();
            let mut ledger = Ledger::new();
            drive(&mut store, &mut state, &mut ledger, 2);
            // Effects of an in-flight block 3 that never seals.
            store
                .log_effects(
                    Version::new(BlockNumber(3), SeqNo(0)),
                    &[(Key(7), Value::Int(777))],
                )
                .expect("log");
            store.wal.sync().expect("sync");
        }
        let (_, recovered) = Store::open(tmp.path(), config()).expect("reopen");
        assert_eq!(recovered.watermark, BlockNumber(2));
        let mut state = MvccState::new();
        recovered.overlay_state(&mut state);
        assert_eq!(state.latest(Key(7)), Value::Unit, "uncommitted write leaked");
    }

    #[test]
    fn orphan_body_is_trimmed() {
        let tmp = TempDir::new("store-orphan");
        let reference = {
            let (mut store, _) = Store::open(tmp.path(), config()).expect("open");
            let mut state = MvccState::new();
            let mut ledger = Ledger::new();
            drive(&mut store, &mut state, &mut ledger, 2);
            // Body for block 3 lands but the crash hits before its seal
            // record: append directly to the block file.
            let block = Block::new(BlockNumber(3), ledger.head_hash(), vec![tx(3)]);
            store.blocks.append(&block, None).expect("body");
            ledger
        };
        let (store, recovered) = Store::open(tmp.path(), config()).expect("reopen");
        assert_eq!(recovered.watermark, BlockNumber(2));
        assert_eq!(recovered.chain.len(), 2);
        assert_eq!(recovered.head, reference.block(BlockNumber(2)).map(hash_wire).expect("b2"));
        drop(store);
        // And sealing block 3 afterwards works (the body slot is free).
        let (mut store, recovered) = Store::open(tmp.path(), config()).expect("reopen 2");
        let ledger = recovered.ledger().expect("verifies");
        let block = Block::new(BlockNumber(3), ledger.head_hash(), vec![tx(3)]);
        let head = hash_wire(&block);
        store.seal_block(&block, None, head).expect("seal");
        assert_eq!(store.watermark(), BlockNumber(3));
    }

    #[test]
    fn wal_truncation_bounds_segments() {
        let tmp = TempDir::new("store-truncate");
        let (mut store, _) = Store::open(tmp.path(), config()).expect("open");
        let mut state = MvccState::new();
        let mut ledger = Ledger::new();
        drive(&mut store, &mut state, &mut ledger, 20);
        // 10 checkpoints over 20 blocks: old segments must be deleted.
        assert!(store.stats().checkpoint_count >= 9);
        assert!(
            store.wal_segments() <= 3,
            "WAL not truncated: {} segments",
            store.wal_segments()
        );
    }

    #[test]
    fn on_disk_durability_checkpoints_and_prunes_via_seal_hook() {
        let tmp = TempDir::new("store-ondisk");
        let (mut durability, recovered) = OnDisk::open(tmp.path(), config()).expect("open");
        assert!(recovered.is_empty());
        let mut state = MvccState::new();
        let mut ledger = Ledger::new();
        for b in 1..=4u64 {
            let version = Version::new(BlockNumber(b), SeqNo(0));
            let writes = vec![(Key(0), Value::Int(b as i64))];
            durability.log_effects(version, &writes);
            state.apply(writes, version);
            let block = Block::new(BlockNumber(b), ledger.head_hash(), vec![tx(b)]);
            let head = hash_wire(&block);
            durability.seal_block(&block, None, head, &mut state);
            ledger.append(block).expect("append");
        }
        assert_eq!(state.version_count(Key(0)), 1, "seal hook pruned versions");
        assert_eq!(durability.stats().checkpoint_count, 2);
        drop(durability);
        let (_, recovered) = OnDisk::open(tmp.path(), config()).expect("reopen");
        assert_eq!(recovered.watermark, BlockNumber(4));
        let mut rebuilt = MvccState::new();
        recovered.overlay_state(&mut rebuilt);
        assert_eq!(rebuilt.digest(), state.digest());
    }

    #[test]
    fn reconcile_picks_the_most_advanced_node_and_copies_it() {
        let tmp = TempDir::new("store-reconcile");
        let mut heads = Vec::new();
        for (node, blocks) in [(0u32, 2u64), (1, 5), (2, 3)] {
            let dir = Store::node_dir(tmp.path(), node);
            let (mut store, _) = Store::open(&dir, config()).expect("open");
            let mut state = MvccState::new();
            let mut ledger = Ledger::new();
            drive(&mut store, &mut state, &mut ledger, blocks);
            heads.push(ledger.head_hash());
        }
        let watermark = reconcile_cluster(tmp.path(), &[0, 1, 2], &[3], config())
            .expect("reconcile");
        assert_eq!(watermark, BlockNumber(5));
        for node in [0u32, 1, 2, 3] {
            let dir = Store::node_dir(tmp.path(), node);
            let (_, recovered) = Store::open(&dir, config()).expect("open");
            assert_eq!(recovered.watermark, BlockNumber(5), "node {node}");
            assert_eq!(recovered.head, heads[1], "node {node}");
        }
    }

    #[test]
    fn reconcile_of_empty_base_is_zero() {
        let tmp = TempDir::new("store-reconcile-empty");
        assert_eq!(
            reconcile_cluster(tmp.path(), &[0, 1], &[], config()).expect("reconcile"),
            BlockNumber(0)
        );
    }
}
