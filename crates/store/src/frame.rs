//! Length+checksum framing for append-only log files.
//!
//! Every record is written as `[len: u32 LE][crc32(payload): u32 LE]
//! [payload: len bytes]`. A reader walking a file knows, at every frame
//! boundary, whether the next frame is complete and intact; the first
//! incomplete or corrupt frame marks the *torn tail* — everything before
//! it is durable, everything from it on is discarded (a crash can tear
//! at most the unsynced suffix of an append-only file).

/// Frame header size: length prefix + checksum.
pub(crate) const HEADER_LEN: usize = 8;

/// Frames larger than this are treated as corruption rather than data
/// (a torn length prefix can decode to an absurd length).
pub(crate) const MAX_FRAME_LEN: usize = 1 << 30;

/// CRC-32 (IEEE 802.3, reflected) over `bytes`.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = crc32_table();
    let mut crc = !0u32;
    for &byte in bytes {
        let idx = (crc ^ u32::from(byte)) & 0xff;
        crc = (crc >> 8) ^ TABLE[idx as usize];
    }
    !crc
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xedb8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Appends one frame around `payload` to `out`. Returns the number of
/// bytes appended (header + payload).
pub(crate) fn append_frame(out: &mut Vec<u8>, payload: &[u8]) -> usize {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    HEADER_LEN + payload.len()
}

/// The outcome of reading one frame at `pos`.
pub(crate) enum FrameRead<'a> {
    /// An intact frame: its payload and the offset of the next frame.
    Ok { payload: &'a [u8], next: usize },
    /// `pos` is exactly the end of the buffer: a clean end.
    End,
    /// The bytes from `pos` on are not an intact frame (truncated header,
    /// truncated payload, or checksum mismatch): the torn tail.
    Torn,
}

/// Reads the frame starting at `pos` in `bytes`.
pub(crate) fn read_frame(bytes: &[u8], pos: usize) -> FrameRead<'_> {
    if pos == bytes.len() {
        return FrameRead::End;
    }
    let Some(header) = bytes.get(pos..pos + HEADER_LEN) else {
        return FrameRead::Torn;
    };
    let len = u32::from_le_bytes(header[..4].try_into().expect("4 bytes")) as usize;
    let crc = u32::from_le_bytes(header[4..].try_into().expect("4 bytes"));
    if len > MAX_FRAME_LEN {
        return FrameRead::Torn;
    }
    let start = pos + HEADER_LEN;
    let Some(payload) = bytes.get(start..start + len) else {
        return FrameRead::Torn;
    };
    if crc32(payload) != crc {
        return FrameRead::Torn;
    }
    FrameRead::Ok {
        payload,
        next: start + len,
    }
}

/// Walks every intact frame from the start of `bytes`. Returns the frame
/// payload offsets `(start, end)` and the byte offset of the torn tail
/// (equal to `bytes.len()` for a clean file).
pub(crate) fn scan(bytes: &[u8]) -> (Vec<(usize, usize)>, usize) {
    let mut frames = Vec::new();
    let mut pos = 0;
    loop {
        match read_frame(bytes, pos) {
            FrameRead::Ok { payload, next } => {
                frames.push((next - payload.len(), next));
                pos = next;
            }
            FrameRead::End => return (frames, pos),
            FrameRead::Torn => return (frames, pos),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        let n1 = append_frame(&mut buf, b"alpha");
        let n2 = append_frame(&mut buf, b"");
        assert_eq!(buf.len(), n1 + n2);
        let (frames, torn) = scan(&buf);
        assert_eq!(torn, buf.len());
        assert_eq!(frames.len(), 2);
        assert_eq!(&buf[frames[0].0..frames[0].1], b"alpha");
        assert_eq!(frames[1].0, frames[1].1);
    }

    #[test]
    fn every_truncation_of_the_last_frame_is_detected() {
        let mut buf = Vec::new();
        append_frame(&mut buf, b"first");
        let keep = buf.len();
        append_frame(&mut buf, b"second record");
        for cut in keep..buf.len() {
            let (frames, torn) = scan(&buf[..cut]);
            assert_eq!(frames.len(), 1, "cut {cut}");
            assert_eq!(torn, keep, "cut {cut}");
        }
    }

    #[test]
    fn corrupt_payload_byte_is_detected() {
        let mut buf = Vec::new();
        append_frame(&mut buf, b"first");
        let keep = buf.len();
        append_frame(&mut buf, b"second");
        *buf.last_mut().expect("non-empty") ^= 0x01;
        let (frames, torn) = scan(&buf);
        assert_eq!(frames.len(), 1);
        assert_eq!(torn, keep);
    }

    #[test]
    fn absurd_length_prefix_is_torn_not_alloc() {
        let mut buf = Vec::new();
        append_frame(&mut buf, b"ok");
        let keep = buf.len();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(&[0; 4]);
        let (frames, torn) = scan(&buf);
        assert_eq!(frames.len(), 1);
        assert_eq!(torn, keep);
    }
}
