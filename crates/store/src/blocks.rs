//! The block store: sealed blocks (and their dependency graphs) in
//! commit order.
//!
//! One append-only file `blocks.log` per node, holding one checksummed
//! frame per sealed block: the block's wire bytes followed by an
//! optional dependency-graph encoding. The chain itself is never
//! truncated by checkpoints — it is the ledger — but a crash between a
//! body append and its WAL seal record can leave an *orphan tail*,
//! which recovery trims back to the sealed watermark.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use parblock_depgraph::DependencyGraph;
use parblock_types::wire::{Reader, Wire};
use parblock_types::Block;

use crate::frame;

/// One decoded block-store entry: the sealed block and, in OXII, its
/// dependency graph.
pub(crate) type BlockEntry = (Block, Option<DependencyGraph>);

/// Encodes one block-store entry payload.
fn encode_entry(block: &Block, graph: Option<&DependencyGraph>) -> Vec<u8> {
    let mut payload = Vec::new();
    block.encode(&mut payload);
    match graph {
        None => 0u8.encode(&mut payload),
        Some(graph) => {
            1u8.encode(&mut payload);
            graph.encode_wire(&mut payload);
        }
    }
    payload
}

fn decode_entry(bytes: &[u8]) -> Option<BlockEntry> {
    let mut reader = Reader::new(bytes);
    let block = Block::decode(&mut reader)?;
    let graph = match reader.u8()? {
        0 => None,
        1 => Some(DependencyGraph::decode_wire(&mut reader)?),
        _ => return None,
    };
    reader.is_exhausted().then_some((block, graph))
}

/// The append-only block file of one node.
#[derive(Debug)]
pub(crate) struct BlockFile {
    file: File,
    /// Byte offset where the entry for each block *ends*:
    /// `ends[i]` = end of block `i + 1`'s frame.
    ends: Vec<u64>,
    fsyncs: u64,
}

/// The block file's path under a node directory.
pub(crate) fn block_file_path(dir: &Path) -> PathBuf {
    dir.join("blocks.log")
}

impl BlockFile {
    /// Opens (or creates) `blocks.log` under `dir`, decoding every
    /// intact entry. The torn tail, if any, is truncated.
    pub(crate) fn open(dir: &Path) -> io::Result<(Self, Vec<BlockEntry>)> {
        let path = block_file_path(dir);
        let mut bytes = Vec::new();
        if path.exists() {
            File::open(&path)?.read_to_end(&mut bytes)?;
        }
        let (frames, clean_len) = frame::scan(&bytes);
        let mut entries = Vec::with_capacity(frames.len());
        let mut ends = Vec::with_capacity(frames.len());
        for &(start, end) in &frames {
            let entry = decode_entry(&bytes[start..end]).ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("undecodable block entry in {}", path.display()),
                )
            })?;
            let expected = entries.len() as u64 + 1;
            if entry.0.number().0 != expected {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "block store out of order: expected block {expected}, found {}",
                        entry.0.number()
                    ),
                ));
            }
            entries.push(entry);
            ends.push(end as u64);
        }
        // Existing contents are kept: this is an append-only log (the
        // explicit seek below positions at the clean end).
        let file = OpenOptions::new()
            .create(true)
            .truncate(false)
            .write(true)
            .open(&path)?;
        if clean_len < bytes.len() {
            file.set_len(clean_len as u64)?;
            file.sync_all()?;
        }
        // Position at the clean end for appends (`append` mode would
        // also work, but an explicit seek keeps set_len + write sane).
        let mut file = file;
        use std::io::Seek;
        file.seek(io::SeekFrom::Start(clean_len as u64))?;
        Ok((
            BlockFile {
                file,
                ends,
                fsyncs: 0,
            },
            entries,
        ))
    }

    /// Number of block entries currently durable.
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.ends.len()
    }

    /// Appends block `count + 1` and fsyncs (the body barrier that must
    /// precede the WAL seal record).
    pub(crate) fn append(
        &mut self,
        block: &Block,
        graph: Option<&DependencyGraph>,
    ) -> io::Result<u64> {
        let expected = self.ends.len() as u64 + 1;
        if block.number().0 != expected {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "non-contiguous block append: expected {expected}, got {}",
                    block.number()
                ),
            ));
        }
        let payload = encode_entry(block, graph);
        let mut framed = Vec::with_capacity(frame::HEADER_LEN + payload.len());
        let written = frame::append_frame(&mut framed, &payload) as u64;
        self.file.write_all(&framed)?;
        self.file.sync_data()?;
        self.fsyncs += 1;
        let end = self.ends.last().copied().unwrap_or(0) + written;
        self.ends.push(end);
        Ok(written)
    }

    /// Truncates the file so exactly `keep` blocks remain — recovery
    /// trims orphan bodies beyond the sealed watermark with this.
    pub(crate) fn truncate_to(&mut self, keep: usize) -> io::Result<()> {
        if keep >= self.ends.len() {
            return Ok(());
        }
        let new_len = if keep == 0 { 0 } else { self.ends[keep - 1] };
        self.file.set_len(new_len)?;
        self.file.sync_all()?;
        self.fsyncs += 1;
        use std::io::Seek;
        self.file.seek(io::SeekFrom::Start(new_len))?;
        self.ends.truncate(keep);
        Ok(())
    }

    pub(crate) fn fsyncs(&self) -> u64 {
        self.fsyncs
    }
}

#[cfg(test)]
mod tests {
    use parblock_depgraph::DependencyMode;
    use parblock_types::{AppId, BlockNumber, ClientId, Hash32, RwSet, Transaction};

    use super::*;
    use crate::testutil::TempDir;

    fn tx(ts: u64) -> Transaction {
        Transaction::new(AppId(0), ClientId(1), ts, RwSet::default(), vec![7])
    }

    fn chain_of(n: u64) -> Vec<(Block, Option<DependencyGraph>)> {
        let mut prev = Hash32::ZERO;
        (1..=n)
            .map(|i| {
                let block = Block::new(BlockNumber(i), prev, vec![tx(i)]);
                prev = Hash32([i as u8; 32]);
                let graph = (i % 2 == 0).then(|| {
                    DependencyGraph::from_edges(vec![AppId(0)], &[], DependencyMode::Reduced)
                });
                (block, graph)
            })
            .collect()
    }

    #[test]
    fn append_reopen_round_trips_blocks_and_graphs() {
        let tmp = TempDir::new("blocks-roundtrip");
        let entries = chain_of(3);
        {
            let (mut file, existing) = BlockFile::open(tmp.path()).expect("open");
            assert!(existing.is_empty());
            for (block, graph) in &entries {
                file.append(block, graph.as_ref()).expect("append");
            }
            assert_eq!(file.len(), 3);
        }
        let (file, recovered) = BlockFile::open(tmp.path()).expect("reopen");
        assert_eq!(recovered, entries);
        assert_eq!(file.len(), 3);
    }

    #[test]
    fn rejects_non_contiguous_appends() {
        let tmp = TempDir::new("blocks-contig");
        let (mut file, _) = BlockFile::open(tmp.path()).expect("open");
        let wrong = Block::new(BlockNumber(5), Hash32::ZERO, vec![]);
        assert!(file.append(&wrong, None).is_err());
    }

    #[test]
    fn truncate_to_trims_orphan_tail() {
        let tmp = TempDir::new("blocks-trim");
        let entries = chain_of(3);
        let (mut file, _) = BlockFile::open(tmp.path()).expect("open");
        for (block, graph) in &entries {
            file.append(block, graph.as_ref()).expect("append");
        }
        file.truncate_to(2).expect("truncate");
        assert_eq!(file.len(), 2);
        // Appending block 3 again continues the chain.
        file.append(&entries[2].0, entries[2].1.as_ref())
            .expect("re-append");
        drop(file);
        let (_, recovered) = BlockFile::open(tmp.path()).expect("reopen");
        assert_eq!(recovered, entries);
    }

    #[test]
    fn torn_tail_is_dropped_on_open() {
        let tmp = TempDir::new("blocks-torn");
        let entries = chain_of(2);
        let (mut file, _) = BlockFile::open(tmp.path()).expect("open");
        for (block, graph) in &entries {
            file.append(block, graph.as_ref()).expect("append");
        }
        let path = block_file_path(tmp.path());
        drop(file);
        let len = std::fs::metadata(&path).expect("meta").len();
        let f = OpenOptions::new().write(true).open(&path).expect("open");
        f.set_len(len - 1).expect("truncate");
        drop(f);
        let (file, recovered) = BlockFile::open(tmp.path()).expect("reopen");
        assert_eq!(recovered.len(), 1);
        assert_eq!(file.len(), 1);
    }
}
