//! State checkpoints: periodic snapshots of the blockchain state at the
//! commit watermark.
//!
//! A checkpoint is one checksummed frame in its own file
//! `ckpt-<watermark>.ck`, published atomically: written to a `.tmp`
//! name, fsynced, renamed into place, directory fsynced. Once a
//! checkpoint at watermark `W` exists, WAL segments whose records all
//! pertain to blocks `≤ W` can be deleted — recovery starts from the
//! newest intact checkpoint and replays only the WAL suffix above it.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use parblock_ledger::Version;
use parblock_types::wire::{Reader, Wire};
use parblock_types::{BlockNumber, Hash32, Key, SeqNo, Value};

use crate::frame;
use crate::wal::sync_dir;

/// How many published checkpoints are retained (the newest may be
/// mid-publish when a crash hits; its predecessor still recovers).
const KEEP: usize = 2;

/// A decoded checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// The commit watermark the snapshot was taken at.
    pub watermark: BlockNumber,
    /// Ledger head hash at the watermark.
    pub head: Hash32,
    /// Latest value and version per key, at or below the watermark.
    pub entries: Vec<(Key, Value, Version)>,
}

impl Checkpoint {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.watermark.0.encode(&mut out);
        out.extend_from_slice(&self.head.0);
        (self.entries.len() as u64).encode(&mut out);
        for (key, value, version) in &self.entries {
            key.0.encode(&mut out);
            value.encode(&mut out);
            version.block.0.encode(&mut out);
            version.seq.0.encode(&mut out);
        }
        out
    }

    fn decode(bytes: &[u8]) -> Option<Self> {
        let mut reader = Reader::new(bytes);
        let watermark = BlockNumber(reader.u64()?);
        let mut head = [0u8; 32];
        for byte in &mut head {
            *byte = reader.u8()?;
        }
        let count = usize::try_from(reader.u64()?).ok()?;
        if count > reader.remaining() / 21 {
            return None; // each entry is ≥ 21 bytes
        }
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            let key = Key(reader.u64()?);
            let value = Value::decode(&mut reader)?;
            let version = Version::new(BlockNumber(reader.u64()?), SeqNo(reader.u32()?));
            entries.push((key, value, version));
        }
        reader.is_exhausted().then_some(Checkpoint {
            watermark,
            head: Hash32(head),
            entries,
        })
    }
}

fn checkpoint_path(dir: &Path, watermark: u64) -> PathBuf {
    dir.join(format!("ckpt-{watermark:016}.ck"))
}

fn checkpoint_watermark(path: &Path) -> Option<u64> {
    let name = path.file_name()?.to_str()?;
    let digits = name.strip_prefix("ckpt-")?.strip_suffix(".ck")?;
    digits.parse().ok()
}

/// Atomically publishes `checkpoint` under `dir`, pruning all but the
/// newest [`KEEP`] checkpoint files. Returns the number of fsync
/// barriers issued.
pub(crate) fn publish(dir: &Path, checkpoint: &Checkpoint) -> io::Result<u64> {
    fs::create_dir_all(dir)?;
    let payload = checkpoint.encode();
    let mut framed = Vec::with_capacity(frame::HEADER_LEN + payload.len());
    frame::append_frame(&mut framed, &payload);
    let final_path = checkpoint_path(dir, checkpoint.watermark.0);
    let tmp_path = final_path.with_extension("tmp");
    let mut fsyncs = 0u64;
    {
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&tmp_path)?;
        file.write_all(&framed)?;
        file.sync_all()?;
        fsyncs += 1;
    }
    fs::rename(&tmp_path, &final_path)?;
    sync_dir(dir)?;
    fsyncs += 1;
    // Retention: delete all but the newest KEEP published checkpoints.
    let mut published = list(dir)?;
    if published.len() > KEEP {
        let cut = published.len() - KEEP;
        for (_, path) in published.drain(..cut) {
            fs::remove_file(path)?;
        }
        sync_dir(dir)?;
        fsyncs += 1;
    }
    Ok(fsyncs)
}

/// Published checkpoint files under `dir`, sorted ascending by
/// watermark.
fn list(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    if !dir.exists() {
        return Ok(Vec::new());
    }
    let mut found: Vec<(u64, PathBuf)> = fs::read_dir(dir)?
        .filter_map(|entry| {
            let path = entry.ok()?.path();
            checkpoint_watermark(&path).map(|w| (w, path))
        })
        .collect();
    found.sort_unstable_by_key(|(w, _)| *w);
    Ok(found)
}

/// Loads the newest intact checkpoint under `dir`, skipping (and
/// deleting) any that fail their checksum — a crash can tear at most
/// the newest, so its predecessor is authoritative.
pub(crate) fn load_latest(dir: &Path) -> io::Result<Option<Checkpoint>> {
    let mut published = list(dir)?;
    while let Some((_, path)) = published.pop() {
        let mut bytes = Vec::new();
        File::open(&path)?.read_to_end(&mut bytes)?;
        if let frame::FrameRead::Ok { payload, next } = frame::read_frame(&bytes, 0) {
            if next == bytes.len() {
                if let Some(checkpoint) = Checkpoint::decode(payload) {
                    return Ok(Some(checkpoint));
                }
            }
        }
        // Corrupt or torn: remove so it cannot shadow an older intact one.
        fs::remove_file(&path)?;
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::TempDir;

    fn sample(watermark: u64) -> Checkpoint {
        Checkpoint {
            watermark: BlockNumber(watermark),
            head: Hash32([watermark as u8; 32]),
            entries: vec![
                (Key(1), Value::Int(10), Version::new(BlockNumber(1), SeqNo(0))),
                (
                    Key(2),
                    Value::Text("x".into()),
                    Version::new(BlockNumber(watermark), SeqNo(3)),
                ),
            ],
        }
    }

    #[test]
    fn publish_load_round_trip() {
        let tmp = TempDir::new("ckpt-roundtrip");
        assert_eq!(load_latest(tmp.path()).expect("load"), None);
        publish(tmp.path(), &sample(4)).expect("publish");
        assert_eq!(load_latest(tmp.path()).expect("load"), Some(sample(4)));
    }

    #[test]
    fn newest_wins_and_retention_prunes() {
        let tmp = TempDir::new("ckpt-retention");
        for w in [2, 4, 6, 8] {
            publish(tmp.path(), &sample(w)).expect("publish");
        }
        assert_eq!(
            load_latest(tmp.path()).expect("load").map(|c| c.watermark),
            Some(BlockNumber(8))
        );
        assert_eq!(list(tmp.path()).expect("list").len(), KEEP);
    }

    #[test]
    fn corrupt_newest_falls_back_to_predecessor() {
        let tmp = TempDir::new("ckpt-corrupt");
        publish(tmp.path(), &sample(2)).expect("publish");
        publish(tmp.path(), &sample(4)).expect("publish");
        let newest = checkpoint_path(tmp.path(), 4);
        let bytes = fs::read(&newest).expect("read");
        fs::write(&newest, &bytes[..bytes.len() - 2]).expect("tear");
        assert_eq!(load_latest(tmp.path()).expect("load"), Some(sample(2)));
        assert!(!newest.exists(), "torn checkpoint deleted");
    }
}
