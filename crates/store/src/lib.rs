//! Durable node storage for the ParBlockchain reproduction.
//!
//! ParBlockchain's nodes are stateful services: orderers own the
//! blockchain ledger and agents own the application datastore (§III).
//! This crate gives each node a crash-safe on-disk substrate — the same
//! role the persistent block/state stores play under DiPETrans' and
//! Conflux's parallel-execution layers — using only `std`:
//!
//! * [`wal::Wal`] — a segmented append-only **write-ahead log** of
//!   committed transaction effects and block-seal markers, with
//!   length+CRC32-framed records, group-commit fsync batching, and
//!   torn-tail truncation on open.
//! * A **block store** (`blocks.log`) persisting sealed blocks and
//!   their dependency graphs in commit order.
//! * Periodic **state checkpoints** snapshotting the multi-version
//!   state at the commit watermark, after which WAL segments below the
//!   checkpoint are deleted.
//! * [`Store::open`] — the **recovery path**: newest intact checkpoint
//!   plus WAL replay rebuilds the chain head, the [`MvccState`] (via
//!   [`Recovered::overlay_state`]), and the executor watermark.
//!
//! [`OnDisk`] plugs the store into the execution runtime through
//! `parblock_ledger::Durability`; [`reconcile_cluster`] performs the
//! file-level startup state transfer that brings every node of a
//! killed cluster to one consistent watermark before a restart.
//!
//! The durability invariants (persist-before-COMMIT, seal ordering,
//! checkpoint/truncation coupling) are documented in DESIGN.md §9.
//!
//! [`MvccState`]: parblock_ledger::MvccState
//!
//! # Examples
//!
//! ```
//! use parblock_ledger::{Ledger, Version};
//! use parblock_store::Store;
//! use parblock_types::{Block, BlockNumber, DurabilityConfig, Key, SeqNo, Value};
//!
//! let dir = std::env::temp_dir().join(format!("store-doc-{}", std::process::id()));
//! let (mut store, recovered) = Store::open(&dir, DurabilityConfig::default())?;
//! assert!(recovered.is_empty());
//!
//! // Log a transaction's effects, then seal the block they belong to.
//! let version = Version::new(BlockNumber(1), SeqNo(0));
//! store.log_effects(version, &[(Key(1), Value::Int(42))])?;
//! let block = Block::new(BlockNumber(1), Ledger::genesis_hash(), vec![]);
//! let head = parblock_crypto::hash_wire(&block);
//! store.seal_block(&block, None, head)?;
//!
//! // A reopened store recovers the sealed chain and state.
//! drop(store);
//! let (_, recovered) = Store::open(&dir, DurabilityConfig::default())?;
//! assert_eq!(recovered.watermark, BlockNumber(1));
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok::<(), std::io::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod blocks;
mod checkpoint;
mod frame;
mod store;
#[doc(hidden)]
pub mod testutil;
pub mod wal;

pub use checkpoint::Checkpoint;
pub use frame::crc32;
pub use store::{reconcile_cluster, OnDisk, Recovered, Store};
pub use wal::tear_wal_tail;
