//! Runtime fault injection: drops, partitions, and extra delay.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::RwLock;
use parblock_types::NodeId;

#[derive(Debug, Default)]
struct FaultState {
    /// Per-link drop probability, keyed `(from, to)`.
    drop_prob: HashMap<(NodeId, NodeId), f64>,
    /// Crashed nodes: everything to/from them is dropped.
    crashed: HashSet<NodeId>,
    /// Partitioned unordered pairs.
    partitioned: HashSet<(NodeId, NodeId)>,
    /// Extra one-way delay per link.
    extra_delay: HashMap<(NodeId, NodeId), Duration>,
}

/// Shared, runtime-mutable fault plan.
///
/// Cloning shares the underlying state, so a test can keep a handle while
/// the network consults the same plan.
///
/// # Examples
///
/// ```
/// use parblock_net::Faults;
/// use parblock_types::NodeId;
///
/// let faults = Faults::new();
/// faults.partition(NodeId(0), NodeId(1));
/// assert!(faults.should_drop(NodeId(0), NodeId(1), 0.99));
/// faults.heal();
/// assert!(!faults.should_drop(NodeId(0), NodeId(1), 0.99));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Faults {
    state: Arc<RwLock<FaultState>>,
}

fn unordered(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

impl Faults {
    /// Creates a fault-free plan.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the drop probability for the directed link `from → to`.
    ///
    /// # Panics
    ///
    /// Panics if `prob` is not within `0.0..=1.0`.
    pub fn set_drop(&self, from: NodeId, to: NodeId, prob: f64) {
        assert!((0.0..=1.0).contains(&prob), "probability must be in [0, 1]");
        self.state.write().drop_prob.insert((from, to), prob);
    }

    /// Marks `node` as crashed: all of its traffic is dropped until
    /// [`Faults::restart`].
    pub fn crash(&self, node: NodeId) {
        self.state.write().crashed.insert(node);
    }

    /// Restarts a crashed node.
    pub fn restart(&self, node: NodeId) {
        self.state.write().crashed.remove(&node);
    }

    /// Partitions the unordered pair `{a, b}` (both directions dropped).
    pub fn partition(&self, a: NodeId, b: NodeId) {
        self.state.write().partitioned.insert(unordered(a, b));
    }

    /// Partitions every cross pair between the two groups.
    pub fn partition_groups(&self, left: &[NodeId], right: &[NodeId]) {
        let mut state = self.state.write();
        for &a in left {
            for &b in right {
                state.partitioned.insert(unordered(a, b));
            }
        }
    }

    /// Adds one-way extra delay on `from → to`.
    pub fn add_delay(&self, from: NodeId, to: NodeId, delay: Duration) {
        self.state.write().extra_delay.insert((from, to), delay);
    }

    /// Clears all faults.
    pub fn heal(&self) {
        *self.state.write() = FaultState::default();
    }

    /// Removes the partition of the unordered pair `{a, b}` only, leaving
    /// every other fault in place (unlike the global [`Faults::heal`] —
    /// the deterministic fault scheduler overlaps independent fault
    /// windows and must end them independently).
    pub fn unpartition(&self, a: NodeId, b: NodeId) {
        self.state.write().partitioned.remove(&unordered(a, b));
    }

    /// Removes every cross pair between the two groups (the inverse of
    /// [`Faults::partition_groups`]).
    pub fn unpartition_groups(&self, left: &[NodeId], right: &[NodeId]) {
        let mut state = self.state.write();
        for &a in left {
            for &b in right {
                state.partitioned.remove(&unordered(a, b));
            }
        }
    }

    /// Clears the drop probability on the directed link `from → to` only.
    pub fn clear_drop(&self, from: NodeId, to: NodeId) {
        self.state.write().drop_prob.remove(&(from, to));
    }

    /// Whether `node` is currently crashed.
    #[must_use]
    pub fn is_crashed(&self, node: NodeId) -> bool {
        self.state.read().crashed.contains(&node)
    }

    /// Whether a message on `from → to` should be dropped, given a uniform
    /// sample `unit` in `[0, 1)`.
    #[must_use]
    pub fn should_drop(&self, from: NodeId, to: NodeId, unit: f64) -> bool {
        let state = self.state.read();
        if state.crashed.contains(&from) || state.crashed.contains(&to) {
            return true;
        }
        if state.partitioned.contains(&unordered(from, to)) {
            return true;
        }
        state
            .drop_prob
            .get(&(from, to))
            .is_some_and(|&p| unit < p)
    }

    /// The extra delay configured on `from → to`.
    #[must_use]
    pub fn extra_delay(&self, from: NodeId, to: NodeId) -> Duration {
        self.state
            .read()
            .extra_delay
            .get(&(from, to))
            .copied()
            .unwrap_or(Duration::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drop_probability_thresholds() {
        let f = Faults::new();
        f.set_drop(NodeId(0), NodeId(1), 0.5);
        assert!(f.should_drop(NodeId(0), NodeId(1), 0.4));
        assert!(!f.should_drop(NodeId(0), NodeId(1), 0.6));
        // Other direction unaffected.
        assert!(!f.should_drop(NodeId(1), NodeId(0), 0.4));
    }

    #[test]
    fn crash_drops_both_directions() {
        let f = Faults::new();
        f.crash(NodeId(2));
        assert!(f.should_drop(NodeId(2), NodeId(0), 0.9));
        assert!(f.should_drop(NodeId(0), NodeId(2), 0.9));
        f.restart(NodeId(2));
        assert!(!f.should_drop(NodeId(0), NodeId(2), 0.9));
    }

    #[test]
    fn partition_is_symmetric_and_healable() {
        let f = Faults::new();
        f.partition(NodeId(3), NodeId(1));
        assert!(f.should_drop(NodeId(1), NodeId(3), 0.99));
        assert!(f.should_drop(NodeId(3), NodeId(1), 0.99));
        f.heal();
        assert!(!f.should_drop(NodeId(1), NodeId(3), 0.99));
    }

    #[test]
    fn group_partition() {
        let f = Faults::new();
        f.partition_groups(&[NodeId(0), NodeId(1)], &[NodeId(2)]);
        assert!(f.should_drop(NodeId(0), NodeId(2), 0.99));
        assert!(f.should_drop(NodeId(2), NodeId(1), 0.99));
        assert!(!f.should_drop(NodeId(0), NodeId(1), 0.99));
    }

    #[test]
    fn extra_delay_lookup() {
        let f = Faults::new();
        assert_eq!(f.extra_delay(NodeId(0), NodeId(1)), Duration::ZERO);
        f.add_delay(NodeId(0), NodeId(1), Duration::from_millis(7));
        assert_eq!(f.extra_delay(NodeId(0), NodeId(1)), Duration::from_millis(7));
    }

    #[test]
    #[should_panic(expected = "probability must be in [0, 1]")]
    fn invalid_probability_panics() {
        Faults::new().set_drop(NodeId(0), NodeId(1), 1.5);
    }

    #[test]
    fn scoped_removal_leaves_other_faults_in_place() {
        let f = Faults::new();
        f.partition(NodeId(0), NodeId(1));
        f.partition_groups(&[NodeId(2)], &[NodeId(3), NodeId(4)]);
        f.set_drop(NodeId(5), NodeId(6), 1.0);
        f.crash(NodeId(7));

        f.unpartition(NodeId(1), NodeId(0));
        assert!(!f.should_drop(NodeId(0), NodeId(1), 0.99));
        assert!(f.should_drop(NodeId(2), NodeId(3), 0.99), "group intact");

        f.unpartition_groups(&[NodeId(2)], &[NodeId(3), NodeId(4)]);
        assert!(!f.should_drop(NodeId(2), NodeId(4), 0.99));

        assert!(f.should_drop(NodeId(5), NodeId(6), 0.5), "drop intact");
        f.clear_drop(NodeId(5), NodeId(6));
        assert!(!f.should_drop(NodeId(5), NodeId(6), 0.0));

        assert!(f.is_crashed(NodeId(7)), "crash untouched by scoped heals");
        f.restart(NodeId(7));
        assert!(!f.is_crashed(NodeId(7)));
    }

    #[test]
    fn clones_share_state() {
        let f = Faults::new();
        let g = f.clone();
        f.crash(NodeId(9));
        assert!(g.should_drop(NodeId(9), NodeId(0), 0.0));
    }
}
