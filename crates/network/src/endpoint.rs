//! Per-node network endpoints.

use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{Receiver, RecvTimeoutError};
use parblock_types::NodeId;

use crate::engine::SimNetwork;

/// A message together with its authenticated sender.
///
/// The network guarantees sender authenticity (§III: "network links are
/// pairwise authenticated… a Byzantine node cannot forge a message from a
/// correct node"): `from` is stamped by the transport, not by the sender's
/// payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope<M> {
    /// The sending node.
    pub from: NodeId,
    /// The message payload.
    pub msg: M,
}

/// Error returned by blocking receives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvError {
    /// No message arrived before the timeout.
    Timeout,
    /// The network was shut down.
    Disconnected,
}

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvError::Timeout => f.write_str("receive timed out"),
            RecvError::Disconnected => f.write_str("network shut down"),
        }
    }
}

impl std::error::Error for RecvError {}

/// A node's handle to the simulated network: a sender for any destination
/// and a private mailbox.
pub struct Endpoint<M: Send + 'static> {
    id: NodeId,
    net: SimNetwork<M>,
    rx: Receiver<Envelope<M>>,
}

impl<M: Send + 'static> Endpoint<M> {
    pub(crate) fn new(id: NodeId, net: SimNetwork<M>, rx: Receiver<Envelope<M>>) -> Self {
        Endpoint { id, net, rx }
    }

    /// This endpoint's node id.
    #[must_use]
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Sends `msg` to `to` (fire-and-forget, like UDP with FIFO-ish
    /// delivery; protocols needing reliability retransmit).
    pub fn send(&self, to: NodeId, msg: M)
    where
        M: Sync + Clone,
    {
        self.net.route(self.id, to, msg);
    }

    /// Sends `msg` to every node in `dests` (skipping self).
    ///
    /// The message is cloned **once** into an [`Arc`]-shared payload;
    /// each recipient is enqueued a cheap handle, so an `n`-recipient
    /// multicast of a block-sized message costs O(1) payloads instead of
    /// O(n) deep clones (DESIGN.md §15). Latency, jitter and fault draws
    /// stay per-destination, exactly as if each copy were sent alone.
    pub fn multicast<'a, I>(&self, dests: I, msg: &M)
    where
        M: Sync + Clone,
        I: IntoIterator<Item = &'a NodeId>,
    {
        // lint:allow(hot-path-alloc) — one clone total, shared by every recipient
        let payload = Arc::new(msg.clone());
        for &to in dests {
            if to != self.id {
                self.net.route_shared(self.id, to, Arc::clone(&payload));
            }
        }
    }

    /// Blocks until a message arrives.
    ///
    /// # Errors
    ///
    /// Returns [`RecvError::Disconnected`] if the network shut down.
    pub fn recv(&self) -> Result<Envelope<M>, RecvError> {
        self.rx.recv().map_err(|_| RecvError::Disconnected)
    }

    /// Blocks up to `timeout` for a message.
    ///
    /// # Errors
    ///
    /// [`RecvError::Timeout`] if nothing arrived in time;
    /// [`RecvError::Disconnected`] if the network shut down.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Envelope<M>, RecvError> {
        self.rx.recv_timeout(timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => RecvError::Timeout,
            RecvTimeoutError::Disconnected => RecvError::Disconnected,
        })
    }

    /// The raw mailbox receiver, for use with `crossbeam::select!` when a
    /// node must multiplex network traffic with other event sources
    /// (e.g. an execution pool's completion channel).
    #[must_use]
    pub fn receiver(&self) -> &Receiver<Envelope<M>> {
        &self.rx
    }

    /// Returns a pending message without blocking, if any.
    #[must_use]
    pub fn try_recv(&self) -> Option<Envelope<M>> {
        self.rx.try_recv().ok()
    }

    /// Number of messages waiting in the mailbox.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.rx.len()
    }
}

impl<M: Send + 'static> fmt::Debug for Endpoint<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Endpoint")
            .field("id", &self.id)
            .field("pending", &self.rx.len())
            .finish()
    }
}
