//! An in-process simulated network for the ParBlockchain reproduction.
//!
//! The paper's network model (§III): every pair of peers is connected by a
//! point-to-point, pairwise-authenticated, bidirectional channel in an
//! asynchronous distributed network. The evaluation additionally places
//! node groups in different Amazon datacenters (Fig 7).
//!
//! This crate reproduces that model in one process:
//!
//! * each node owns an [`Endpoint`] with a private mailbox;
//! * a delivery engine thread applies a per-link [`LatencyModel`] derived
//!   from a [`Topology`] of datacenters before handing a message to the
//!   destination mailbox;
//! * [`Faults`] injects drops, extra delay, and partitions at runtime;
//! * [`NetStats`] counts traffic for the message-complexity ablations.
//!
//! Messages are plain Rust values (`M: Send`): transport serialization is
//! not simulated, signatures/hashes are applied by the protocol layers
//! where the paper requires them.
//!
//! # Examples
//!
//! ```
//! use std::time::Duration;
//! use parblock_net::{NetworkBuilder, Topology};
//! use parblock_types::NodeId;
//!
//! let net = NetworkBuilder::new()
//!     .topology(Topology::single_dc(Duration::from_micros(100)))
//!     .build::<String>();
//! let a = net.endpoint(NodeId(0));
//! let b = net.endpoint(NodeId(1));
//! a.send(NodeId(1), "hello".to_string());
//! let envelope = b.recv_timeout(Duration::from_secs(1)).unwrap();
//! assert_eq!(envelope.from, NodeId(0));
//! assert_eq!(envelope.msg, "hello");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod endpoint;
mod engine;
mod faults;
mod stats;
mod topology;

pub use endpoint::{Endpoint, Envelope, RecvError};
pub use engine::{NetworkBuilder, SimNetwork};
pub use faults::Faults;
pub use stats::NetStats;
pub use topology::{DcId, LatencyModel, Topology};
