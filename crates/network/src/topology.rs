//! Datacenter topology and latency models.

use std::collections::HashMap;
use std::time::Duration;

use parblock_types::NodeId;

/// Identifies a datacenter (region) in the topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct DcId(pub u8);

/// Where each node lives and how long links take.
///
/// The paper's Fig 7 places node groups either in AWS US-West or in AWS
/// Asia-Pacific (Tokyo); [`Topology::two_dc`] models exactly that split.
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// use parblock_net::{DcId, Topology};
/// use parblock_types::NodeId;
///
/// let mut topo = Topology::two_dc(
///     Duration::from_micros(100),
///     Duration::from_millis(10),
/// );
/// topo.place(NodeId(5), DcId(1));
/// assert_eq!(topo.latency(NodeId(5), NodeId(5)), Duration::ZERO);
/// assert_eq!(topo.latency(NodeId(0), NodeId(5)), Duration::from_millis(10));
/// ```
#[derive(Debug, Clone)]
pub struct Topology {
    placement: HashMap<NodeId, DcId>,
    /// Latency between two distinct nodes in the same DC.
    intra_dc: Duration,
    /// Latency between nodes in different DCs.
    inter_dc: Duration,
    /// Jitter fraction (0.0–1.0) applied uniformly at delivery time.
    jitter: f64,
}

impl Topology {
    /// A single datacenter where every distinct pair is `intra` apart.
    #[must_use]
    pub fn single_dc(intra: Duration) -> Self {
        Topology {
            placement: HashMap::new(),
            intra_dc: intra,
            inter_dc: intra,
            jitter: 0.0,
        }
    }

    /// Two datacenters: unplaced nodes default to DC 0; nodes placed in
    /// DC 1 are `inter` away from DC 0.
    #[must_use]
    pub fn two_dc(intra: Duration, inter: Duration) -> Self {
        Topology {
            placement: HashMap::new(),
            intra_dc: intra,
            inter_dc: inter,
            jitter: 0.0,
        }
    }

    /// Places a node in a datacenter (default: `DcId(0)`).
    pub fn place(&mut self, node: NodeId, dc: DcId) {
        self.placement.insert(node, dc);
    }

    /// Places many nodes at once.
    pub fn place_all<I: IntoIterator<Item = NodeId>>(&mut self, nodes: I, dc: DcId) {
        for n in nodes {
            self.place(n, dc);
        }
    }

    /// Sets the uniform jitter fraction (e.g. `0.1` = ±10 %).
    ///
    /// # Panics
    ///
    /// Panics if `jitter` is not within `0.0..=1.0`.
    pub fn set_jitter(&mut self, jitter: f64) {
        assert!((0.0..=1.0).contains(&jitter), "jitter must be in [0, 1]");
        self.jitter = jitter;
    }

    /// The datacenter of `node`.
    #[must_use]
    pub fn dc_of(&self, node: NodeId) -> DcId {
        self.placement.get(&node).copied().unwrap_or_default()
    }

    /// Base latency from `from` to `to` (zero to self).
    #[must_use]
    pub fn latency(&self, from: NodeId, to: NodeId) -> Duration {
        if from == to {
            return Duration::ZERO;
        }
        if self.dc_of(from) == self.dc_of(to) {
            self.intra_dc
        } else {
            self.inter_dc
        }
    }

    /// The configured jitter fraction.
    #[must_use]
    pub fn jitter(&self) -> f64 {
        self.jitter
    }
}

impl Default for Topology {
    /// A single DC with 100 µs links — a LAN-like default.
    fn default() -> Self {
        Topology::single_dc(Duration::from_micros(100))
    }
}

/// A latency model: base topology latency plus uniform jitter.
///
/// Kept separate from [`Topology`] so tests can swap in fixed or zero
/// latencies.
#[derive(Debug, Clone, Default)]
pub struct LatencyModel {
    topology: Topology,
}

impl LatencyModel {
    /// Wraps a topology.
    #[must_use]
    pub fn new(topology: Topology) -> Self {
        LatencyModel { topology }
    }

    /// Instantaneous delivery (unit tests of protocol logic).
    #[must_use]
    pub fn zero() -> Self {
        LatencyModel {
            topology: Topology::single_dc(Duration::ZERO),
        }
    }

    /// Samples the delivery latency for a message `from → to`.
    ///
    /// `unit_jitter` must be a uniform sample in `[0, 1)`; passing it in
    /// keeps the model free of RNG state.
    #[must_use]
    pub fn sample(&self, from: NodeId, to: NodeId, unit_jitter: f64) -> Duration {
        let base = self.topology.latency(from, to);
        let jitter = self.topology.jitter();
        if jitter == 0.0 || base.is_zero() {
            return base;
        }
        // Scale uniformly in [1 - j, 1 + j).
        let factor = 1.0 - jitter + 2.0 * jitter * unit_jitter;
        base.mul_f64(factor)
    }

    /// The underlying topology.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        &self.topology
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_and_latency() {
        let mut topo = Topology::two_dc(Duration::from_micros(50), Duration::from_millis(5));
        topo.place(NodeId(1), DcId(1));
        assert_eq!(topo.dc_of(NodeId(0)), DcId(0));
        assert_eq!(topo.dc_of(NodeId(1)), DcId(1));
        assert_eq!(topo.latency(NodeId(0), NodeId(2)), Duration::from_micros(50));
        assert_eq!(topo.latency(NodeId(0), NodeId(1)), Duration::from_millis(5));
        assert_eq!(topo.latency(NodeId(1), NodeId(1)), Duration::ZERO);
    }

    #[test]
    fn place_all_moves_a_group() {
        let mut topo = Topology::two_dc(Duration::ZERO, Duration::from_millis(1));
        topo.place_all([NodeId(3), NodeId(4)], DcId(1));
        assert_eq!(topo.latency(NodeId(3), NodeId(4)), Duration::ZERO);
        assert_eq!(topo.latency(NodeId(0), NodeId(3)), Duration::from_millis(1));
    }

    #[test]
    fn jitter_scales_latency_within_bounds() {
        let mut topo = Topology::single_dc(Duration::from_micros(1000));
        topo.set_jitter(0.2);
        let model = LatencyModel::new(topo);
        let lo = model.sample(NodeId(0), NodeId(1), 0.0);
        let hi = model.sample(NodeId(0), NodeId(1), 0.999_999);
        assert_eq!(lo, Duration::from_micros(800));
        assert!(hi > Duration::from_micros(1195) && hi <= Duration::from_micros(1200));
    }

    #[test]
    #[should_panic(expected = "jitter must be in [0, 1]")]
    fn invalid_jitter_panics() {
        Topology::default().set_jitter(1.5);
    }

    #[test]
    fn zero_model_is_instant() {
        let m = LatencyModel::zero();
        assert_eq!(m.sample(NodeId(0), NodeId(1), 0.5), Duration::ZERO);
    }
}
