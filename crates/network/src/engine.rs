//! The delivery engine: applies latency, jitter and faults, then delivers
//! to mailboxes — via a timer thread in the default (wall-clock) mode, or
//! under explicit caller control in the *manual* mode the deterministic
//! simulator uses (DESIGN.md §10).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use crossbeam::channel::{unbounded, Sender};
use parking_lot::{Condvar, Mutex, RwLock};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use parblock_types::{Clock, NodeId};

use crate::endpoint::{Endpoint, Envelope};
use crate::faults::Faults;
use crate::stats::NetStats;
use crate::topology::{LatencyModel, Topology};

/// Builder for a [`SimNetwork`].
///
/// # Examples
///
/// ```
/// use parblock_net::{NetworkBuilder, Topology};
/// use std::time::Duration;
///
/// let net = NetworkBuilder::new()
///     .topology(Topology::single_dc(Duration::ZERO))
///     .seed(42)
///     .build::<u32>();
/// let _ = net.endpoint(parblock_types::NodeId(0));
/// ```
#[derive(Debug, Default)]
pub struct NetworkBuilder {
    topology: Topology,
    seed: u64,
    clock: Option<Clock>,
    manual: bool,
}

impl NetworkBuilder {
    /// Starts a builder with a default LAN topology.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the datacenter topology.
    #[must_use]
    pub fn topology(mut self, topology: Topology) -> Self {
        self.topology = topology;
        self
    }

    /// Seeds the jitter/drop RNG (simulations stay reproducible).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Injects the time source delivery deadlines are computed against
    /// (default: the wall clock).
    #[must_use]
    pub fn clock(mut self, clock: Clock) -> Self {
        self.clock = Some(clock);
        self
    }

    /// Switches to *manual delivery*: no delivery thread is spawned, and
    /// queued messages only move when the caller invokes
    /// [`SimNetwork::deliver_due`]. This is the deterministic-simulation
    /// mode — delivery order becomes a pure function of `(due, seq)`,
    /// independent of host scheduling.
    #[must_use]
    pub fn manual_delivery(mut self) -> Self {
        self.manual = true;
        self
    }

    /// Builds the network (and starts its delivery thread unless
    /// [`NetworkBuilder::manual_delivery`] was selected).
    ///
    /// # Panics
    ///
    /// Panics when a simulated clock is combined with threaded delivery:
    /// the delivery thread waits on real time and would never observe
    /// virtual time advancing.
    #[must_use]
    pub fn build<M: Send + 'static>(self) -> SimNetwork<M> {
        let clock = self.clock.unwrap_or_default();
        assert!(
            self.manual || !clock.is_simulated(),
            "a simulated clock requires manual_delivery()"
        );
        SimNetwork::start(LatencyModel::new(self.topology), self.seed, clock, self.manual)
    }
}

struct Scheduled<M> {
    seq: u64,
    to: NodeId,
    envelope: Envelope<M>,
}

struct Queue<M> {
    heap: BinaryHeap<Reverse<HeapKey>>,
    items: HashMap<u64, Scheduled<M>>,
    next_seq: u64,
    shutdown: bool,
}

#[derive(PartialEq, Eq, PartialOrd, Ord)]
struct HeapKey {
    due: Instant,
    seq: u64,
}

struct Shared<M> {
    queue: Mutex<Queue<M>>,
    wake: Condvar,
    mailboxes: RwLock<HashMap<NodeId, Sender<Envelope<M>>>>,
    latency: LatencyModel,
    faults: Faults,
    stats: NetStats,
    rng: Mutex<StdRng>,
    clock: Clock,
}

/// A simulated network. Cheap to clone; all clones share the same state.
///
/// See the crate docs for the model. Dropping the last handle signals the
/// delivery thread to stop; call [`SimNetwork::shutdown`] to stop it
/// deterministically.
pub struct SimNetwork<M: Send + 'static> {
    shared: Arc<Shared<M>>,
    /// Join handle, held by the original handle only.
    worker: Arc<Mutex<Option<JoinHandle<()>>>>,
}

impl<M: Send + 'static> Clone for SimNetwork<M> {
    fn clone(&self) -> Self {
        SimNetwork {
            shared: Arc::clone(&self.shared),
            worker: Arc::clone(&self.worker),
        }
    }
}

impl<M: Send + 'static> SimNetwork<M> {
    fn start(latency: LatencyModel, seed: u64, clock: Clock, manual: bool) -> Self {
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue {
                heap: BinaryHeap::new(),
                items: HashMap::new(),
                next_seq: 0,
                shutdown: false,
            }),
            wake: Condvar::new(),
            mailboxes: RwLock::new(HashMap::new()),
            latency,
            faults: Faults::new(),
            stats: NetStats::new(),
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
            clock,
        });
        let worker = if manual {
            None
        } else {
            let worker_shared = Arc::clone(&shared);
            Some(
                std::thread::Builder::new()
                    .name("simnet-delivery".into())
                    .spawn(move || delivery_loop(&worker_shared))
                    .expect("spawn delivery thread"),
            )
        };
        SimNetwork {
            shared,
            worker: Arc::new(Mutex::new(worker)),
        }
    }

    /// Registers (or replaces) the mailbox for `node` and returns its
    /// endpoint.
    #[must_use]
    pub fn endpoint(&self, node: NodeId) -> Endpoint<M> {
        let (tx, rx) = unbounded();
        self.shared.mailboxes.write().insert(node, tx);
        Endpoint::new(node, self.clone(), rx)
    }

    /// The shared fault-injection plan.
    #[must_use]
    pub fn faults(&self) -> Faults {
        self.shared.faults.clone()
    }

    /// The shared traffic counters.
    #[must_use]
    pub fn stats(&self) -> NetStats {
        self.shared.stats.clone()
    }

    pub(crate) fn route(&self, from: NodeId, to: NodeId, msg: M) {
        self.shared.stats.record_sent();
        let (drop_unit, jitter_unit) = {
            let mut rng = self.shared.rng.lock();
            (rng.gen::<f64>(), rng.gen::<f64>())
        };
        if self.shared.faults.should_drop(from, to, drop_unit) {
            self.shared.stats.record_dropped();
            return;
        }
        let delay = self.shared.latency.sample(from, to, jitter_unit)
            + self.shared.faults.extra_delay(from, to);
        let envelope = Envelope { from, msg };
        if delay.is_zero() {
            self.deliver(to, envelope);
            return;
        }
        let due = self.shared.clock.now() + delay;
        let mut queue = self.shared.queue.lock();
        let seq = queue.next_seq;
        queue.next_seq += 1;
        queue.heap.push(Reverse(HeapKey { due, seq }));
        queue.items.insert(seq, Scheduled { seq, to, envelope });
        drop(queue);
        self.shared.wake.notify_one();
    }

    fn deliver(&self, to: NodeId, envelope: Envelope<M>) {
        deliver_to(&self.shared, to, envelope);
    }

    /// The due time of the earliest queued message, if any (manual
    /// delivery: the next instant [`SimNetwork::deliver_due`] can make
    /// progress at).
    #[must_use]
    pub fn next_due(&self) -> Option<Instant> {
        self.shared
            .queue
            .lock()
            .heap
            .peek()
            .map(|Reverse(key)| key.due)
    }

    /// Delivers every queued message due at or before `now`, in
    /// deterministic `(due, enqueue-seq)` order. Returns how many were
    /// delivered. This is the manual-delivery engine tick; it is safe to
    /// call in threaded mode too (the delivery thread simply finds less
    /// work).
    pub fn deliver_due(&self, now: Instant) -> usize {
        let mut delivered = 0;
        loop {
            let item = {
                let mut queue = self.shared.queue.lock();
                match queue.heap.peek() {
                    Some(Reverse(key)) if key.due <= now => {
                        let Reverse(key) = queue.heap.pop().expect("peeked");
                        queue.items.remove(&key.seq)
                    }
                    _ => return delivered,
                }
            };
            if let Some(item) = item {
                deliver_to(&self.shared, item.to, item.envelope);
                delivered += 1;
            }
        }
    }

    /// Number of messages queued for future delivery.
    #[must_use]
    pub fn queued(&self) -> usize {
        self.shared.queue.lock().items.len()
    }

    /// Stops the delivery thread, dropping any undelivered messages.
    ///
    /// Idempotent; called implicitly when the last handle is dropped.
    pub fn shutdown(&self) {
        {
            let mut queue = self.shared.queue.lock();
            queue.shutdown = true;
        }
        self.shared.wake.notify_all();
        if let Some(handle) = self.worker.lock().take() {
            let _ = handle.join();
        }
    }
}

impl<M: Send + 'static> Drop for SimNetwork<M> {
    fn drop(&mut self) {
        // Only the final two handles remain inside the worker itself; when
        // the user's last clone goes away, signal shutdown without joining
        // (C-DTOR-BLOCK): the thread exits promptly on its own.
        if Arc::strong_count(&self.shared) <= 2 {
            let mut queue = self.shared.queue.lock();
            queue.shutdown = true;
            drop(queue);
            self.shared.wake.notify_all();
        }
    }
}

impl<M: Send + 'static> std::fmt::Debug for SimNetwork<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimNetwork")
            .field("mailboxes", &self.shared.mailboxes.read().len())
            .field("queued", &self.shared.queue.lock().items.len())
            .finish()
    }
}

fn deliver_to<M: Send + 'static>(shared: &Shared<M>, to: NodeId, envelope: Envelope<M>) {
    let mailboxes = shared.mailboxes.read();
    match mailboxes.get(&to) {
        Some(tx) => {
            // Count before handing over: a receiver that has already
            // drained this envelope must observe the incremented counter.
            shared.stats.record_delivered();
            if tx.send(envelope).is_err() {
                shared.stats.record_delivery_failed();
            }
        }
        _ => shared.stats.record_dropped(),
    }
}

fn delivery_loop<M: Send + 'static>(shared: &Shared<M>) {
    let mut queue = shared.queue.lock();
    loop {
        if queue.shutdown {
            return;
        }
        let now = shared.clock.now();
        // Deliver everything due.
        while let Some(Reverse(key)) = queue.heap.peek() {
            if key.due > now {
                break;
            }
            let Reverse(key) = queue.heap.pop().expect("peeked");
            if let Some(item) = queue.items.remove(&key.seq) {
                debug_assert_eq!(item.seq, key.seq);
                // Deliver without holding the queue lock.
                parking_lot::MutexGuard::unlocked(&mut queue, || {
                    deliver_to(shared, item.to, item.envelope);
                });
            }
        }
        // Re-check before sleeping: `shutdown` may have been set (and its
        // notification sent) while the queue lock was released inside the
        // delivery pass above; the lock is then held from this check until
        // the wait parks, so the flag cannot be missed again.
        if queue.shutdown {
            return;
        }
        match queue.heap.peek() {
            Some(Reverse(key)) => {
                let wait = key.due.saturating_duration_since(shared.clock.now());
                let _ = shared.wake.wait_for(&mut queue, wait);
            }
            None => shared.wake.wait(&mut queue),
        }
    }
}

#[cfg(test)]
mod tests {
    use std::time::Duration;

    use super::*;

    fn lan(latency_us: u64) -> SimNetwork<u32> {
        NetworkBuilder::new()
            .topology(Topology::single_dc(Duration::from_micros(latency_us)))
            .seed(7)
            .build()
    }

    #[test]
    fn zero_latency_delivers_inline() {
        let net = lan(0);
        let a = net.endpoint(NodeId(0));
        let b = net.endpoint(NodeId(1));
        a.send(NodeId(1), 99);
        let env = b.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(env.msg, 99);
        assert_eq!(env.from, NodeId(0));
        net.shutdown();
    }

    #[test]
    fn latency_is_applied() {
        let net = lan(20_000); // 20 ms
        let a = net.endpoint(NodeId(0));
        let b = net.endpoint(NodeId(1));
        let start = Instant::now();
        a.send(NodeId(1), 1);
        let _ = b.recv_timeout(Duration::from_secs(2)).unwrap();
        assert!(start.elapsed() >= Duration::from_millis(18));
        net.shutdown();
    }

    #[test]
    fn messages_to_unregistered_nodes_are_dropped() {
        let net = lan(0);
        let a = net.endpoint(NodeId(0));
        a.send(NodeId(42), 5);
        assert_eq!(net.stats().dropped(), 1);
        net.shutdown();
    }

    #[test]
    fn multicast_skips_self() {
        let net = lan(0);
        let a = net.endpoint(NodeId(0));
        let b = net.endpoint(NodeId(1));
        let c = net.endpoint(NodeId(2));
        let everyone = [NodeId(0), NodeId(1), NodeId(2)];
        a.multicast(everyone.iter(), &7);
        assert_eq!(b.recv_timeout(Duration::from_secs(1)).unwrap().msg, 7);
        assert_eq!(c.recv_timeout(Duration::from_secs(1)).unwrap().msg, 7);
        assert!(a.try_recv().is_none());
        net.shutdown();
    }

    #[test]
    fn partition_blocks_delivery_until_heal() {
        let net = lan(0);
        let a = net.endpoint(NodeId(0));
        let b = net.endpoint(NodeId(1));
        net.faults().partition(NodeId(0), NodeId(1));
        a.send(NodeId(1), 1);
        assert!(b.recv_timeout(Duration::from_millis(50)).is_err());
        net.faults().heal();
        a.send(NodeId(1), 2);
        assert_eq!(b.recv_timeout(Duration::from_secs(1)).unwrap().msg, 2);
        net.shutdown();
    }

    #[test]
    fn same_delay_messages_keep_fifo_order() {
        let net = lan(1000);
        let a = net.endpoint(NodeId(0));
        let b = net.endpoint(NodeId(1));
        for i in 0..20 {
            a.send(NodeId(1), i);
        }
        for want in 0..20 {
            let got = b.recv_timeout(Duration::from_secs(1)).unwrap().msg;
            assert_eq!(got, want);
        }
        net.shutdown();
    }

    #[test]
    fn stats_count_sent_and_delivered() {
        let net = lan(0);
        let a = net.endpoint(NodeId(0));
        let _b = net.endpoint(NodeId(1));
        a.send(NodeId(1), 1);
        a.send(NodeId(1), 2);
        assert_eq!(net.stats().sent(), 2);
        assert_eq!(net.stats().delivered(), 2);
        net.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent() {
        let net = lan(0);
        net.shutdown();
        net.shutdown();
    }

    #[test]
    fn manual_mode_holds_messages_until_delivered() {
        let clock = Clock::simulated();
        let net: SimNetwork<u32> = NetworkBuilder::new()
            .topology(Topology::single_dc(Duration::from_micros(100)))
            .seed(1)
            .clock(clock.clone())
            .manual_delivery()
            .build();
        let a = net.endpoint(NodeId(0));
        let b = net.endpoint(NodeId(1));
        a.send(NodeId(1), 7);
        a.send(NodeId(1), 8);
        assert_eq!(net.queued(), 2, "nothing moves without deliver_due");
        assert!(b.try_recv().is_none());
        let due = net.next_due().expect("queued");
        assert_eq!(due.duration_since(clock.now()), Duration::from_micros(100));
        // Advancing past the deadline and ticking delivers in FIFO order.
        clock.advance(Duration::from_micros(150));
        assert_eq!(net.deliver_due(clock.now()), 2);
        assert_eq!(b.try_recv().unwrap().msg, 7);
        assert_eq!(b.try_recv().unwrap().msg, 8);
        assert_eq!(net.next_due(), None);
        net.shutdown();
    }

    #[test]
    fn manual_mode_respects_due_times() {
        let clock = Clock::simulated();
        let mut topo = Topology::two_dc(Duration::from_micros(10), Duration::from_millis(1));
        topo.place(NodeId(2), crate::DcId(1));
        let net: SimNetwork<u32> = NetworkBuilder::new()
            .topology(topo)
            .clock(clock.clone())
            .manual_delivery()
            .build();
        let a = net.endpoint(NodeId(0));
        let _b = net.endpoint(NodeId(1));
        let _c = net.endpoint(NodeId(2));
        a.send(NodeId(2), 1); // far: 1 ms
        a.send(NodeId(1), 2); // near: 10 µs
        clock.advance(Duration::from_micros(10));
        assert_eq!(net.deliver_due(clock.now()), 1, "only the near message is due");
        clock.advance(Duration::from_millis(1));
        assert_eq!(net.deliver_due(clock.now()), 1);
        net.shutdown();
    }

    #[test]
    #[should_panic(expected = "manual_delivery")]
    fn simulated_clock_without_manual_mode_panics() {
        let _ = NetworkBuilder::new()
            .clock(Clock::simulated())
            .build::<u32>();
    }

    #[test]
    fn pending_counts_mailbox_depth() {
        let net = lan(0);
        let a = net.endpoint(NodeId(0));
        let b = net.endpoint(NodeId(1));
        a.send(NodeId(1), 1);
        a.send(NodeId(1), 2);
        // Zero-latency sends deliver inline, so both are queued.
        assert_eq!(b.pending(), 2);
        net.shutdown();
    }
}
