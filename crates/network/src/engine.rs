//! The delivery engine: applies latency, jitter and faults, then delivers
//! to mailboxes — via per-destination delivery workers in the default
//! (wall-clock) mode, or under explicit caller control in the *manual*
//! mode the deterministic simulator uses (DESIGN.md §10, §15).
//!
//! Two queue engines exist behind [`NetworkBuilder::legacy_mailboxes`]:
//! the default **sharded** engine keeps one `(due, seq)`-ordered heap per
//! destination with targeted wakeups (an enqueue only notifies a worker
//! whose sleep deadline it beats), and the **legacy** engine keeps the
//! historical single global heap with one delivery thread woken on every
//! enqueue. Both deliver in the same global `(due, seq)` order; the
//! legacy engine survives as the ablation baseline the equivalence suite
//! pins against.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use crossbeam::channel::{unbounded, Sender};
use parking_lot::{Condvar, Mutex, RwLock};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use parblock_types::{Clock, NodeId};

use crate::endpoint::{Endpoint, Envelope};
use crate::faults::Faults;
use crate::stats::NetStats;
use crate::topology::{LatencyModel, Topology};

/// Builder for a [`SimNetwork`].
///
/// # Examples
///
/// ```
/// use parblock_net::{NetworkBuilder, Topology};
/// use std::time::Duration;
///
/// let net = NetworkBuilder::new()
///     .topology(Topology::single_dc(Duration::ZERO))
///     .seed(42)
///     .build::<u32>();
/// let _ = net.endpoint(parblock_types::NodeId(0));
/// ```
#[derive(Debug, Default)]
pub struct NetworkBuilder {
    topology: Topology,
    seed: u64,
    clock: Option<Clock>,
    manual: bool,
    legacy: bool,
}

impl NetworkBuilder {
    /// Starts a builder with a default LAN topology.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the datacenter topology.
    #[must_use]
    pub fn topology(mut self, topology: Topology) -> Self {
        self.topology = topology;
        self
    }

    /// Seeds the jitter/drop RNG (simulations stay reproducible).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Injects the time source delivery deadlines are computed against
    /// (default: the wall clock).
    #[must_use]
    pub fn clock(mut self, clock: Clock) -> Self {
        self.clock = Some(clock);
        self
    }

    /// Switches to *manual delivery*: no delivery workers are spawned,
    /// and queued messages only move when the caller invokes
    /// [`SimNetwork::deliver_due`]. This is the deterministic-simulation
    /// mode — delivery order becomes a pure function of `(due, seq)`,
    /// independent of host scheduling.
    #[must_use]
    pub fn manual_delivery(mut self) -> Self {
        self.manual = true;
        self
    }

    /// Selects the pre-sharding queue engine: one global `(due, seq)`
    /// heap under a single lock, one delivery thread woken on every
    /// enqueue. Kept as the ablation baseline for the sharded-mailbox
    /// rewrite; delivery order is identical in both engines.
    #[must_use]
    pub fn legacy_mailboxes(mut self, legacy: bool) -> Self {
        self.legacy = legacy;
        self
    }

    /// Builds the network (and starts its delivery workers unless
    /// [`NetworkBuilder::manual_delivery`] was selected).
    ///
    /// # Panics
    ///
    /// Panics when a simulated clock is combined with threaded delivery:
    /// the delivery workers wait on real time and would never observe
    /// virtual time advancing.
    #[must_use]
    pub fn build<M: Send + Sync + Clone + 'static>(self) -> SimNetwork<M> {
        let clock = self.clock.unwrap_or_default();
        assert!(
            self.manual || !clock.is_simulated(),
            "a simulated clock requires manual_delivery()"
        );
        SimNetwork::start(
            LatencyModel::new(self.topology),
            self.seed,
            clock,
            self.manual,
            self.legacy,
        )
    }
}

/// A scheduled message body: owned for unicast sends, `Arc`-shared for
/// multicasts (one encode/clone total, `n` cheap handles). The shared
/// payload is unwrapped without a clone when the last handle delivers.
enum Payload<M> {
    Owned(M),
    Shared(Arc<M>),
}

impl<M: Clone> Payload<M> {
    fn into_msg(self) -> M {
        match self {
            Payload::Owned(msg) => msg,
            Payload::Shared(arc) => Arc::try_unwrap(arc).unwrap_or_else(|arc| (*arc).clone()),
        }
    }
}

/// Global delivery-order key: earliest due first, enqueue order breaking
/// ties — identical across both queue engines.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct HeapKey {
    due: Instant,
    seq: u64,
}

struct Entry<M> {
    key: HeapKey,
    to: NodeId,
    from: NodeId,
    payload: Payload<M>,
}

impl<M> PartialEq for Entry<M> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<M> Eq for Entry<M> {}
impl<M> PartialOrd for Entry<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Entry<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

struct QueueState<M> {
    heap: BinaryHeap<Reverse<Entry<M>>>,
    shutdown: bool,
}

impl<M> QueueState<M> {
    fn new() -> Self {
        QueueState {
            heap: BinaryHeap::new(),
            shutdown: false,
        }
    }
}

/// One destination's mailbox queue: its own lock, its own condvar, and
/// (in threaded mode) its own delivery worker.
struct Shard<M> {
    queue: Mutex<QueueState<M>>,
    wake: Condvar,
}

impl<M> Shard<M> {
    fn new() -> Self {
        Shard {
            queue: Mutex::new(QueueState::new()),
            wake: Condvar::new(),
        }
    }
}

enum Engine<M> {
    /// Pre-sharding baseline: one global queue, one worker, a wakeup per
    /// enqueue.
    Legacy(Shard<M>),
    /// Per-destination shards with targeted wakeups.
    Sharded(RwLock<HashMap<NodeId, Arc<Shard<M>>>>),
}

struct Shared<M> {
    engine: Engine<M>,
    /// Global enqueue sequence: ties on `due` resolve in enqueue order
    /// across *all* destinations, in both engines.
    next_seq: AtomicU64,
    shutdown: AtomicBool,
    manual: bool,
    mailboxes: RwLock<HashMap<NodeId, Sender<Envelope<M>>>>,
    latency: LatencyModel,
    faults: Faults,
    stats: NetStats,
    rng: Mutex<StdRng>,
    clock: Clock,
    /// Delivery worker handles (legacy: at most one; sharded: one per
    /// destination shard, spawned lazily).
    workers: Mutex<Vec<JoinHandle<()>>>,
}

/// A simulated network. Cheap to clone; all clones share the same state.
///
/// See the crate docs for the model. Dropping the last handle signals the
/// delivery workers to stop; call [`SimNetwork::shutdown`] to stop them
/// deterministically.
pub struct SimNetwork<M: Send + 'static> {
    shared: Arc<Shared<M>>,
    /// Counts *user* handles only (workers never clone it), so `Drop`
    /// can signal shutdown when the last user handle goes away.
    token: Arc<()>,
}

impl<M: Send + 'static> Clone for SimNetwork<M> {
    fn clone(&self) -> Self {
        SimNetwork {
            shared: Arc::clone(&self.shared),
            token: Arc::clone(&self.token),
        }
    }
}

impl<M: Send + Sync + Clone + 'static> SimNetwork<M> {
    fn start(latency: LatencyModel, seed: u64, clock: Clock, manual: bool, legacy: bool) -> Self {
        let engine = if legacy {
            Engine::Legacy(Shard::new())
        } else {
            Engine::Sharded(RwLock::new(HashMap::new()))
        };
        let shared = Arc::new(Shared {
            engine,
            next_seq: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            manual,
            mailboxes: RwLock::new(HashMap::new()),
            latency,
            faults: Faults::new(),
            stats: NetStats::new(),
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
            clock,
            workers: Mutex::new(Vec::new()),
        });
        if !manual {
            if let Engine::Legacy(_) = shared.engine {
                let worker_shared = Arc::clone(&shared);
                let handle = std::thread::Builder::new()
                    .name("simnet-delivery".into())
                    .spawn(move || {
                        let Engine::Legacy(shard) = &worker_shared.engine else {
                            unreachable!("spawned for the legacy engine");
                        };
                        shard_delivery_loop(&worker_shared, shard);
                    })
                    .expect("spawn delivery thread");
                shared.workers.lock().push(handle);
            }
            // Sharded workers spawn lazily, one per destination, on the
            // first message scheduled to that destination.
        }
        SimNetwork {
            shared,
            token: Arc::new(()),
        }
    }

    /// Registers (or replaces) the mailbox for `node` and returns its
    /// endpoint.
    #[must_use]
    pub fn endpoint(&self, node: NodeId) -> Endpoint<M> {
        let (tx, rx) = unbounded();
        self.shared.mailboxes.write().insert(node, tx);
        Endpoint::new(node, self.clone(), rx)
    }

    /// The shared fault-injection plan.
    #[must_use]
    pub fn faults(&self) -> Faults {
        self.shared.faults.clone()
    }

    /// The shared traffic counters.
    #[must_use]
    pub fn stats(&self) -> NetStats {
        self.shared.stats.clone()
    }

    pub(crate) fn route(&self, from: NodeId, to: NodeId, msg: M) {
        self.route_payload(from, to, Payload::Owned(msg));
    }

    /// Routes one handle of an `Arc`-shared multicast payload: the fault
    /// and latency draws are per-destination (identical to a unicast
    /// send), only the message body is shared.
    pub(crate) fn route_shared(&self, from: NodeId, to: NodeId, msg: Arc<M>) {
        self.route_payload(from, to, Payload::Shared(msg));
    }

    fn route_payload(&self, from: NodeId, to: NodeId, payload: Payload<M>) {
        self.shared.stats.record_sent();
        let (drop_unit, jitter_unit) = {
            let mut rng = self.shared.rng.lock();
            (rng.gen::<f64>(), rng.gen::<f64>())
        };
        if self.shared.faults.should_drop(from, to, drop_unit) {
            self.shared.stats.record_dropped();
            return;
        }
        let delay = self.shared.latency.sample(from, to, jitter_unit)
            + self.shared.faults.extra_delay(from, to);
        if delay.is_zero() {
            deliver_to(
                &self.shared,
                to,
                Envelope {
                    from,
                    msg: payload.into_msg(),
                },
            );
            return;
        }
        let due = self.shared.clock.now() + delay;
        let seq = self.shared.next_seq.fetch_add(1, Ordering::Relaxed);
        self.schedule(Entry {
            key: HeapKey { due, seq },
            to,
            from,
            payload,
        });
    }

    fn schedule(&self, entry: Entry<M>) {
        self.shared.stats.record_enqueued();
        let shard = match &self.shared.engine {
            Engine::Legacy(shard) => {
                // Historical wake protocol: every enqueue notifies the one
                // delivery worker, head or not.
                let mut queue = shard.queue.lock();
                queue.heap.push(Reverse(entry));
                drop(queue);
                if !self.shared.manual {
                    self.shared.stats.record_wakeup();
                }
                shard.wake.notify_one();
                return;
            }
            Engine::Sharded(shards) => self.shard_for(shards, entry.to),
        };
        let mut queue = shard.queue.lock();
        // Targeted wakeup: the worker sleeps until its current head's due
        // time, so only an entry that becomes the new head can shorten
        // that deadline. Everything else lands silently.
        let new_head = queue
            .heap
            .peek()
            .is_none_or(|Reverse(head)| entry.key < head.key);
        queue.heap.push(Reverse(entry));
        drop(queue);
        if new_head && !self.shared.manual {
            self.shared.stats.record_wakeup();
            shard.wake.notify_one();
        }
    }

    /// Gets or creates the shard for `to`, spawning its delivery worker
    /// in threaded mode.
    fn shard_for(
        &self,
        shards: &RwLock<HashMap<NodeId, Arc<Shard<M>>>>,
        to: NodeId,
    ) -> Arc<Shard<M>> {
        if let Some(shard) = shards.read().get(&to) {
            return Arc::clone(shard);
        }
        let mut map = shards.write();
        if let Some(shard) = map.get(&to) {
            return Arc::clone(shard);
        }
        let shard = Arc::new(Shard::new());
        map.insert(to, Arc::clone(&shard));
        drop(map);
        if !self.shared.manual && !self.shared.shutdown.load(Ordering::Acquire) {
            let worker_shared = Arc::clone(&self.shared);
            let worker_shard = Arc::clone(&shard);
            let handle = std::thread::Builder::new()
                .name(format!("simnet-delivery-{}", to.0))
                .spawn(move || shard_delivery_loop(&worker_shared, &worker_shard))
                .expect("spawn shard delivery worker");
            self.shared.workers.lock().push(handle);
        }
        shard
    }

    /// The due time of the earliest queued message, if any (manual
    /// delivery: the next instant [`SimNetwork::deliver_due`] can make
    /// progress at).
    #[must_use]
    pub fn next_due(&self) -> Option<Instant> {
        match &self.shared.engine {
            Engine::Legacy(shard) => shard
                .queue
                .lock()
                .heap
                .peek()
                .map(|Reverse(entry)| entry.key.due),
            Engine::Sharded(shards) => shards
                .read()
                .values()
                .filter_map(|shard| {
                    shard
                        .queue
                        .lock()
                        .heap
                        .peek()
                        .map(|Reverse(entry)| entry.key)
                })
                .min()
                .map(|key| key.due),
        }
    }

    /// Delivers every queued message due at or before `now`, in
    /// deterministic `(due, enqueue-seq)` order — merged *across* shards,
    /// so the order is bit-identical to the legacy single-queue engine.
    /// Returns how many were delivered. This is the manual-delivery
    /// engine tick; it is safe to call in threaded mode too (the delivery
    /// workers simply find less work).
    pub fn deliver_due(&self, now: Instant) -> usize {
        let mut delivered = 0;
        loop {
            let entry = match &self.shared.engine {
                Engine::Legacy(shard) => {
                    let mut queue = shard.queue.lock();
                    match queue.heap.peek() {
                        Some(Reverse(entry)) if entry.key.due <= now => {
                            let Reverse(entry) = queue.heap.pop().expect("peeked");
                            Some(entry)
                        }
                        _ => None,
                    }
                }
                Engine::Sharded(shards) => {
                    // Pick the globally smallest due head ≤ now. The key is
                    // unique (seq is), so the min does not depend on map
                    // iteration order.
                    let best = shards
                        .read()
                        .values()
                        .filter_map(|shard| {
                            shard
                                .queue
                                .lock()
                                .heap
                                .peek()
                                .filter(|Reverse(entry)| entry.key.due <= now)
                                .map(|Reverse(entry)| (entry.key, Arc::clone(shard)))
                        })
                        .min_by_key(|(key, _)| *key);
                    match best {
                        Some((key, shard)) => {
                            let mut queue = shard.queue.lock();
                            match queue.heap.peek() {
                                // In threaded mode a worker may have raced
                                // us to this head; re-scan if it moved.
                                Some(Reverse(entry)) if entry.key == key => {
                                    let Reverse(entry) = queue.heap.pop().expect("peeked");
                                    Some(entry)
                                }
                                _ => continue,
                            }
                        }
                        None => None,
                    }
                }
            };
            let Some(entry) = entry else {
                return delivered;
            };
            deliver_to(
                &self.shared,
                entry.to,
                Envelope {
                    from: entry.from,
                    msg: entry.payload.into_msg(),
                },
            );
            delivered += 1;
        }
    }

    /// Number of messages queued for future delivery.
    #[must_use]
    pub fn queued(&self) -> usize {
        match &self.shared.engine {
            Engine::Legacy(shard) => shard.queue.lock().heap.len(),
            Engine::Sharded(shards) => shards
                .read()
                .values()
                .map(|shard| shard.queue.lock().heap.len())
                .sum(),
        }
    }

    /// Stops the delivery workers, dropping any undelivered messages.
    ///
    /// Idempotent; called implicitly when the last handle is dropped.
    pub fn shutdown(&self) {
        signal_shutdown(&self.shared);
        let handles: Vec<JoinHandle<()>> = self.shared.workers.lock().drain(..).collect();
        for handle in handles {
            let _ = handle.join();
        }
    }
}

/// Sets every shutdown flag and wakes every worker (no joining).
fn signal_shutdown<M: Send + 'static>(shared: &Shared<M>) {
    shared.shutdown.store(true, Ordering::Release);
    match &shared.engine {
        Engine::Legacy(shard) => {
            shard.queue.lock().shutdown = true;
            shard.wake.notify_all();
        }
        Engine::Sharded(shards) => {
            for shard in shards.read().values() {
                shard.queue.lock().shutdown = true;
                shard.wake.notify_all();
            }
        }
    }
}

impl<M: Send + 'static> Drop for SimNetwork<M> {
    fn drop(&mut self) {
        // Workers never hold the token, so a count of one means this is
        // the user's last clone: signal shutdown without joining
        // (C-DTOR-BLOCK) — the workers exit promptly on their own.
        if Arc::strong_count(&self.token) == 1 {
            signal_shutdown(&self.shared);
        }
    }
}

impl<M: Send + 'static> std::fmt::Debug for SimNetwork<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let queued = match &self.shared.engine {
            Engine::Legacy(shard) => shard.queue.lock().heap.len(),
            Engine::Sharded(shards) => shards
                .read()
                .values()
                .map(|shard| shard.queue.lock().heap.len())
                .sum(),
        };
        f.debug_struct("SimNetwork")
            .field("mailboxes", &self.shared.mailboxes.read().len())
            .field("queued", &queued)
            .finish()
    }
}

fn deliver_to<M: Send + 'static>(shared: &Shared<M>, to: NodeId, envelope: Envelope<M>) {
    let mailboxes = shared.mailboxes.read();
    match mailboxes.get(&to) {
        Some(tx) => {
            // Count before handing over: a receiver that has already
            // drained this envelope must observe the incremented counter.
            shared.stats.record_delivered();
            if tx.send(envelope).is_err() {
                shared.stats.record_delivery_failed();
            }
        }
        _ => shared.stats.record_dropped(),
    }
}

/// One delivery worker's loop over one shard (the legacy engine runs
/// exactly one of these over its single global shard).
fn shard_delivery_loop<M: Send + Sync + Clone + 'static>(shared: &Shared<M>, shard: &Shard<M>) {
    let mut queue = shard.queue.lock();
    loop {
        if queue.shutdown {
            return;
        }
        let now = shared.clock.now();
        // Deliver everything due.
        while let Some(Reverse(head)) = queue.heap.peek() {
            if head.key.due > now {
                break;
            }
            let Reverse(entry) = queue.heap.pop().expect("peeked");
            // Deliver without holding the queue lock.
            parking_lot::MutexGuard::unlocked(&mut queue, || {
                deliver_to(
                    shared,
                    entry.to,
                    Envelope {
                        from: entry.from,
                        msg: entry.payload.into_msg(),
                    },
                );
            });
        }
        // Re-check before sleeping: `shutdown` may have been set (and its
        // notification sent) while the queue lock was released inside the
        // delivery pass above; the lock is then held from this check until
        // the wait parks, so the flag cannot be missed again.
        if queue.shutdown {
            return;
        }
        match queue.heap.peek() {
            Some(Reverse(head)) => {
                let wait = head.key.due.saturating_duration_since(shared.clock.now());
                let _ = shard.wake.wait_for(&mut queue, wait);
            }
            None => shard.wake.wait(&mut queue),
        }
    }
}

#[cfg(test)]
mod tests {
    use std::time::Duration;

    use super::*;

    fn lan(latency_us: u64) -> SimNetwork<u32> {
        NetworkBuilder::new()
            .topology(Topology::single_dc(Duration::from_micros(latency_us)))
            .seed(7)
            .build()
    }

    #[test]
    fn zero_latency_delivers_inline() {
        let net = lan(0);
        let a = net.endpoint(NodeId(0));
        let b = net.endpoint(NodeId(1));
        a.send(NodeId(1), 99);
        let env = b.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(env.msg, 99);
        assert_eq!(env.from, NodeId(0));
        net.shutdown();
    }

    #[test]
    fn latency_is_applied() {
        let net = lan(20_000); // 20 ms
        let a = net.endpoint(NodeId(0));
        let b = net.endpoint(NodeId(1));
        let start = Instant::now();
        a.send(NodeId(1), 1);
        let _ = b.recv_timeout(Duration::from_secs(2)).unwrap();
        assert!(start.elapsed() >= Duration::from_millis(18));
        net.shutdown();
    }

    #[test]
    fn messages_to_unregistered_nodes_are_dropped() {
        let net = lan(0);
        let a = net.endpoint(NodeId(0));
        a.send(NodeId(42), 5);
        assert_eq!(net.stats().dropped(), 1);
        net.shutdown();
    }

    #[test]
    fn multicast_skips_self() {
        let net = lan(0);
        let a = net.endpoint(NodeId(0));
        let b = net.endpoint(NodeId(1));
        let c = net.endpoint(NodeId(2));
        let everyone = [NodeId(0), NodeId(1), NodeId(2)];
        a.multicast(everyone.iter(), &7);
        assert_eq!(b.recv_timeout(Duration::from_secs(1)).unwrap().msg, 7);
        assert_eq!(c.recv_timeout(Duration::from_secs(1)).unwrap().msg, 7);
        assert!(a.try_recv().is_none());
        net.shutdown();
    }

    #[test]
    fn partition_blocks_delivery_until_heal() {
        let net = lan(0);
        let a = net.endpoint(NodeId(0));
        let b = net.endpoint(NodeId(1));
        net.faults().partition(NodeId(0), NodeId(1));
        a.send(NodeId(1), 1);
        assert!(b.recv_timeout(Duration::from_millis(50)).is_err());
        net.faults().heal();
        a.send(NodeId(1), 2);
        assert_eq!(b.recv_timeout(Duration::from_secs(1)).unwrap().msg, 2);
        net.shutdown();
    }

    #[test]
    fn same_delay_messages_keep_fifo_order() {
        let net = lan(1000);
        let a = net.endpoint(NodeId(0));
        let b = net.endpoint(NodeId(1));
        for i in 0..20 {
            a.send(NodeId(1), i);
        }
        for want in 0..20 {
            let got = b.recv_timeout(Duration::from_secs(1)).unwrap().msg;
            assert_eq!(got, want);
        }
        net.shutdown();
    }

    #[test]
    fn stats_count_sent_and_delivered() {
        let net = lan(0);
        let a = net.endpoint(NodeId(0));
        let _b = net.endpoint(NodeId(1));
        a.send(NodeId(1), 1);
        a.send(NodeId(1), 2);
        assert_eq!(net.stats().sent(), 2);
        assert_eq!(net.stats().delivered(), 2);
        net.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent() {
        let net = lan(0);
        net.shutdown();
        net.shutdown();
    }

    #[test]
    fn manual_mode_holds_messages_until_delivered() {
        let clock = Clock::simulated();
        let net: SimNetwork<u32> = NetworkBuilder::new()
            .topology(Topology::single_dc(Duration::from_micros(100)))
            .seed(1)
            .clock(clock.clone())
            .manual_delivery()
            .build();
        let a = net.endpoint(NodeId(0));
        let b = net.endpoint(NodeId(1));
        a.send(NodeId(1), 7);
        a.send(NodeId(1), 8);
        assert_eq!(net.queued(), 2, "nothing moves without deliver_due");
        assert!(b.try_recv().is_none());
        let due = net.next_due().expect("queued");
        assert_eq!(due.duration_since(clock.now()), Duration::from_micros(100));
        // Advancing past the deadline and ticking delivers in FIFO order.
        clock.advance(Duration::from_micros(150));
        assert_eq!(net.deliver_due(clock.now()), 2);
        assert_eq!(b.try_recv().unwrap().msg, 7);
        assert_eq!(b.try_recv().unwrap().msg, 8);
        assert_eq!(net.next_due(), None);
        net.shutdown();
    }

    #[test]
    fn manual_mode_respects_due_times() {
        let clock = Clock::simulated();
        let mut topo = Topology::two_dc(Duration::from_micros(10), Duration::from_millis(1));
        topo.place(NodeId(2), crate::DcId(1));
        let net: SimNetwork<u32> = NetworkBuilder::new()
            .topology(topo)
            .clock(clock.clone())
            .manual_delivery()
            .build();
        let a = net.endpoint(NodeId(0));
        let _b = net.endpoint(NodeId(1));
        let _c = net.endpoint(NodeId(2));
        a.send(NodeId(2), 1); // far: 1 ms
        a.send(NodeId(1), 2); // near: 10 µs
        clock.advance(Duration::from_micros(10));
        assert_eq!(net.deliver_due(clock.now()), 1, "only the near message is due");
        clock.advance(Duration::from_millis(1));
        assert_eq!(net.deliver_due(clock.now()), 1);
        net.shutdown();
    }

    #[test]
    #[should_panic(expected = "manual_delivery")]
    fn simulated_clock_without_manual_mode_panics() {
        let _ = NetworkBuilder::new()
            .clock(Clock::simulated())
            .build::<u32>();
    }

    #[test]
    fn pending_counts_mailbox_depth() {
        let net = lan(0);
        let a = net.endpoint(NodeId(0));
        let b = net.endpoint(NodeId(1));
        a.send(NodeId(1), 1);
        a.send(NodeId(1), 2);
        // Zero-latency sends deliver inline, so both are queued.
        assert_eq!(b.pending(), 2);
        net.shutdown();
    }

    /// Drives the same seeded manual-mode scenario through both queue
    /// engines and asserts the delivery sequence every node observes is
    /// identical — the ablation invariant the sharded rewrite must hold.
    #[test]
    fn legacy_and_sharded_engines_deliver_identically() {
        fn run(legacy: bool) -> Vec<(NodeId, NodeId, u32)> {
            let clock = Clock::simulated();
            let mut topo =
                Topology::two_dc(Duration::from_micros(50), Duration::from_millis(1));
            topo.set_jitter(0.4);
            topo.place(NodeId(3), crate::DcId(1));
            let net: SimNetwork<u32> = NetworkBuilder::new()
                .topology(topo)
                .seed(99)
                .clock(clock.clone())
                .manual_delivery()
                .legacy_mailboxes(legacy)
                .build();
            let endpoints: Vec<_> = (0..4).map(|i| net.endpoint(NodeId(i))).collect();
            net.faults().set_drop(NodeId(0), NodeId(2), 0.5);
            let all: Vec<NodeId> = (0..4).map(NodeId).collect();
            for round in 0..10u32 {
                endpoints[(round % 4) as usize].multicast(all.iter(), &round);
                endpoints[0].send(NodeId(3), 100 + round);
                clock.advance(Duration::from_micros(40));
                net.deliver_due(clock.now());
            }
            clock.advance(Duration::from_millis(5));
            net.deliver_due(clock.now());
            let mut seen = Vec::new();
            for (i, ep) in endpoints.iter().enumerate() {
                while let Some(env) = ep.try_recv() {
                    seen.push((NodeId(i as u32), env.from, env.msg));
                }
            }
            net.shutdown();
            seen
        }
        assert_eq!(run(true), run(false));
    }

    /// The sharded wake protocol: a burst of enqueues to one destination
    /// triggers O(1) worker wakeups (only a new earliest-due head
    /// notifies), while the legacy engine wakes its worker on every
    /// single enqueue.
    #[test]
    fn sharded_enqueues_per_wakeup_is_batched() {
        let burst = 100u32;
        // Sharded (default): messages 2..n land behind the head silently.
        let net = lan(50_000); // 50 ms: the whole burst enqueues while the worker sleeps
        let a = net.endpoint(NodeId(0));
        let b = net.endpoint(NodeId(1));
        for i in 0..burst {
            a.send(NodeId(1), i);
        }
        assert_eq!(net.stats().enqueued(), u64::from(burst));
        assert!(
            net.stats().wakeups() <= 2,
            "a same-latency burst must cost O(1) wakeups, got {}",
            net.stats().wakeups()
        );
        for _ in 0..burst {
            b.recv_timeout(Duration::from_secs(2)).expect("delivered");
        }
        net.shutdown();

        // Legacy ablation: every enqueue is a wakeup.
        let net: SimNetwork<u32> = NetworkBuilder::new()
            .topology(Topology::single_dc(Duration::from_micros(50_000)))
            .seed(7)
            .legacy_mailboxes(true)
            .build();
        let a = net.endpoint(NodeId(0));
        let _b = net.endpoint(NodeId(1));
        for i in 0..burst {
            a.send(NodeId(1), i);
        }
        assert_eq!(net.stats().enqueued(), u64::from(burst));
        assert_eq!(
            net.stats().wakeups(),
            u64::from(burst),
            "the legacy engine notifies on every enqueue"
        );
        net.shutdown();
    }

    /// An `Arc`-shared multicast enqueues handles, not clones: the last
    /// delivery unwraps the payload without cloning, and every recipient
    /// still receives the full message.
    #[test]
    fn multicast_shares_one_payload_across_recipients() {
        let clock = Clock::simulated();
        let net: SimNetwork<String> = NetworkBuilder::new()
            .topology(Topology::single_dc(Duration::from_micros(100)))
            .seed(3)
            .clock(clock.clone())
            .manual_delivery()
            .build();
        let a = net.endpoint(NodeId(0));
        let receivers: Vec<_> = (1..=5).map(|i| net.endpoint(NodeId(i))).collect();
        let dests: Vec<NodeId> = (0..=5).map(NodeId).collect();
        let big = "x".repeat(4096);
        a.multicast(dests.iter(), &big);
        assert_eq!(net.queued(), 5);
        clock.advance(Duration::from_millis(1));
        assert_eq!(net.deliver_due(clock.now()), 5);
        for r in &receivers {
            assert_eq!(r.try_recv().expect("delivered").msg, big);
        }
        net.shutdown();
    }
}
