//! Traffic counters.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Network-wide traffic statistics.
///
/// Cloning shares the counters. Used by the commit-batching ablation to
/// compare Algorithm 2's cut-based multicast against naive per-transaction
/// commits.
#[derive(Debug, Clone, Default)]
pub struct NetStats {
    inner: Arc<Counters>,
}

#[derive(Debug, Default)]
struct Counters {
    sent: AtomicU64,
    delivered: AtomicU64,
    dropped: AtomicU64,
    enqueued: AtomicU64,
    wakeups: AtomicU64,
}

impl NetStats {
    /// Creates zeroed counters.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn record_sent(&self) {
        self.inner.sent.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_delivered(&self) {
        self.inner.delivered.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_dropped(&self) {
        self.inner.dropped.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_enqueued(&self) {
        self.inner.enqueued.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_wakeup(&self) {
        self.inner.wakeups.fetch_add(1, Ordering::Relaxed);
    }

    /// Reclassifies an optimistically counted delivery as dropped (the
    /// destination mailbox turned out to be closed).
    pub(crate) fn record_delivery_failed(&self) {
        self.inner.delivered.fetch_sub(1, Ordering::Relaxed);
        self.inner.dropped.fetch_add(1, Ordering::Relaxed);
    }

    /// Messages handed to the network.
    #[must_use]
    pub fn sent(&self) -> u64 {
        self.inner.sent.load(Ordering::Relaxed)
    }

    /// Messages delivered to a mailbox.
    #[must_use]
    pub fn delivered(&self) -> u64 {
        self.inner.delivered.load(Ordering::Relaxed)
    }

    /// Messages dropped by fault injection or closed mailboxes.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }

    /// Messages scheduled for future delivery (zero-delay sends deliver
    /// inline and are not counted here).
    #[must_use]
    pub fn enqueued(&self) -> u64 {
        self.inner.enqueued.load(Ordering::Relaxed)
    }

    /// Delivery-worker condvar notifications. Together with
    /// [`NetStats::enqueued`] this audits the wake protocol: the sharded
    /// engine keeps enqueues-per-wakeup O(batch), the legacy engine wakes
    /// once per enqueue (DESIGN.md §15).
    #[must_use]
    pub fn wakeups(&self) -> u64 {
        self.inner.wakeups.load(Ordering::Relaxed)
    }

    /// Resets every counter to zero.
    pub fn reset(&self) {
        self.inner.sent.store(0, Ordering::Relaxed);
        self.inner.delivered.store(0, Ordering::Relaxed);
        self.inner.dropped.store(0, Ordering::Relaxed);
        self.inner.enqueued.store(0, Ordering::Relaxed);
        self.inner.wakeups.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let s = NetStats::new();
        s.record_sent();
        s.record_sent();
        s.record_delivered();
        s.record_dropped();
        assert_eq!(s.sent(), 2);
        assert_eq!(s.delivered(), 1);
        assert_eq!(s.dropped(), 1);
        s.reset();
        assert_eq!(s.sent() + s.delivered() + s.dropped(), 0);
    }

    #[test]
    fn clones_share_counters() {
        let s = NetStats::new();
        let t = s.clone();
        s.record_sent();
        assert_eq!(t.sent(), 1);
    }
}
