//! Behavioural tests of the simulated network under load, jitter and
//! probabilistic faults.

use std::time::{Duration, Instant};

use parblock_net::{NetworkBuilder, Topology};
use parblock_types::NodeId;

#[test]
fn drop_probability_is_statistically_respected() {
    let net = NetworkBuilder::new()
        .topology(Topology::single_dc(Duration::ZERO))
        .seed(9)
        .build::<u32>();
    let a = net.endpoint(NodeId(0));
    let _b = net.endpoint(NodeId(1));
    net.faults().set_drop(NodeId(0), NodeId(1), 0.3);
    for i in 0..2_000 {
        a.send(NodeId(1), i);
    }
    let dropped = net.stats().dropped();
    let rate = dropped as f64 / 2_000.0;
    assert!(
        (0.22..=0.38).contains(&rate),
        "drop rate {rate} far from configured 0.3"
    );
    net.shutdown();
}

#[test]
fn jitter_spreads_latencies_but_preserves_bounds() {
    let mut topo = Topology::single_dc(Duration::from_millis(2));
    topo.set_jitter(0.5);
    let net = NetworkBuilder::new().topology(topo).seed(3).build::<u32>();
    let a = net.endpoint(NodeId(0));
    let b = net.endpoint(NodeId(1));
    let mut latencies = Vec::new();
    for i in 0..50 {
        let start = Instant::now();
        a.send(NodeId(1), i);
        let _ = b.recv_timeout(Duration::from_secs(1)).expect("delivered");
        latencies.push(start.elapsed());
    }
    let min = latencies.iter().min().copied().expect("non-empty");
    let max = latencies.iter().max().copied().expect("non-empty");
    // Lower bound: the latency model never delivers early (2 ms − 50 %
    // jitter). Upper bound: generous — it only guards against unbounded
    // waits, since OS scheduling slack under a parallel test run can add
    // tens of milliseconds on top of the modelled 3 ms worst case.
    assert!(min >= Duration::from_micros(900), "min {min:?}");
    assert!(max <= Duration::from_millis(200), "max {max:?}");
    assert!(max > min, "jitter should spread deliveries");
    net.shutdown();
}

#[test]
fn two_dc_topology_orders_latencies() {
    use parblock_net::DcId;
    let mut topo = Topology::two_dc(Duration::from_micros(100), Duration::from_millis(5));
    topo.place(NodeId(2), DcId(1));
    let net = NetworkBuilder::new().topology(topo).seed(4).build::<u32>();
    let a = net.endpoint(NodeId(0));
    let near = net.endpoint(NodeId(1));
    let far = net.endpoint(NodeId(2));

    let start = Instant::now();
    a.send(NodeId(1), 1);
    let _ = near.recv_timeout(Duration::from_secs(1)).expect("near");
    let near_latency = start.elapsed();

    let start = Instant::now();
    a.send(NodeId(2), 2);
    let _ = far.recv_timeout(Duration::from_secs(1)).expect("far");
    let far_latency = start.elapsed();

    assert!(
        far_latency > near_latency + Duration::from_millis(3),
        "near {near_latency:?} vs far {far_latency:?}"
    );
    net.shutdown();
}

#[test]
fn high_fanout_multicast_delivers_everything() {
    let net = NetworkBuilder::new()
        .topology(Topology::single_dc(Duration::from_micros(100)))
        .seed(5)
        .build::<u64>();
    let sender = net.endpoint(NodeId(0));
    let receivers: Vec<_> = (1..=8).map(|i| net.endpoint(NodeId(i))).collect();
    let dests: Vec<NodeId> = (1..=8).map(NodeId).collect();
    for round in 0..50u64 {
        sender.multicast(dests.iter(), &round);
    }
    for receiver in &receivers {
        for want in 0..50u64 {
            let envelope = receiver
                .recv_timeout(Duration::from_secs(2))
                .expect("delivery");
            assert_eq!(envelope.msg, want);
        }
    }
    assert_eq!(net.stats().delivered(), 50 * 8);
    net.shutdown();
}

#[test]
fn crashed_node_receives_nothing_until_restart() {
    let net = NetworkBuilder::new()
        .topology(Topology::single_dc(Duration::ZERO))
        .build::<u8>();
    let a = net.endpoint(NodeId(0));
    let b = net.endpoint(NodeId(1));
    net.faults().crash(NodeId(1));
    a.send(NodeId(1), 1);
    assert!(b.recv_timeout(Duration::from_millis(30)).is_err());
    net.faults().restart(NodeId(1));
    a.send(NodeId(1), 2);
    assert_eq!(b.recv_timeout(Duration::from_secs(1)).expect("after restart").msg, 2);
    net.shutdown();
}
