//! Dynamic cross-check of the static rwset-coverage lint: execute each
//! built-in contract over randomized op sequences and assert that every
//! key the contract *actually* touches at runtime is covered by its
//! declared read/write set. Together with `parblock_lint`'s conservative
//! static analysis this closes the soundness chain the orderer depends
//! on: declared ⊇ statically inferred ⊇ dynamically observed.
//!
//! Ops execute against the state produced by applying the committed
//! writes of earlier ops in the same sequence, so multi-step paths
//! (open an escrow, then release it; open an account, then transfer)
//! are exercised — not just the abort-on-missing-state branches.

use std::cell::RefCell;
use std::collections::BTreeSet;

use proptest::prelude::*;

use parblock_contracts::{
    AccountingContract, AccountingOp, EscrowContract, EscrowOp, KvContract, KvOp, SmartContract,
    StateReader,
};
use parblock_ledger::{KvState, Version};
use parblock_types::{AppId, BlockNumber, ClientId, Key, SeqNo, Transaction, Value};

/// A state view that records every key read through it.
struct RecordingReader<'a> {
    inner: &'a KvState,
    reads: RefCell<BTreeSet<Key>>,
}

impl<'a> RecordingReader<'a> {
    fn new(inner: &'a KvState) -> Self {
        RecordingReader {
            inner,
            reads: RefCell::new(BTreeSet::new()),
        }
    }
}

impl StateReader for RecordingReader<'_> {
    fn read(&self, key: Key) -> Value {
        self.reads.borrow_mut().insert(key);
        self.inner.read(key)
    }

    fn try_read(&self, key: Key) -> Option<Value> {
        self.reads.borrow_mut().insert(key);
        self.inner.try_read(key)
    }
}

/// Executes `tx` against `state` behind a recording view and asserts
/// observed reads ⊆ declared reads and committed write keys ⊆ declared
/// writes. Committed writes are applied to `state` so later ops in the
/// sequence see them.
fn check_and_apply(
    contract: &dyn SmartContract,
    tx: &Transaction,
    state: &mut KvState,
    step: u32,
) -> Result<(), TestCaseError> {
    let reader = RecordingReader::new(state);
    let outcome = contract.execute(tx, &reader);
    let observed = reader.reads.into_inner();
    let declared = tx.rw_set();
    for key in &observed {
        prop_assert!(
            declared.reads().contains(key),
            "{}: runtime read of {key:?} is not in the declared read set {:?}",
            contract.name(),
            declared.reads()
        );
    }
    if let Some(writes) = outcome.writes() {
        for (key, _) in writes {
            prop_assert!(
                declared.writes().contains(key),
                "{}: runtime write of {key:?} is not in the declared write set {:?}",
                contract.name(),
                declared.writes()
            );
        }
        let version = Version::new(BlockNumber(1), SeqNo(step));
        state.apply(writes.iter().cloned(), version);
    }
    Ok(())
}

const KEYS: u64 = 6;

fn arb_key() -> impl Strategy<Value = Key> {
    (0u64..KEYS).prop_map(Key)
}

fn arb_keys(max: usize) -> impl Strategy<Value = Vec<Key>> {
    proptest::collection::vec(arb_key(), 0..max)
}

/// The shim proptest only provides unsigned range strategies; signed
/// amounts are derived by offsetting, as in the ledger's mvcc_props.
fn arb_amount(span: u64, offset: i64) -> impl Strategy<Value = i64> {
    (0u64..span).prop_map(move |v| v as i64 - offset)
}

fn arb_genesis() -> impl Strategy<Value = Vec<(Key, Value)>> {
    proptest::collection::vec(((0u64..KEYS), arb_amount(220, 20)), 0..KEYS as usize).prop_map(
        |items| {
            items
                .into_iter()
                .map(|(k, v)| (Key(k), Value::Int(v)))
                .collect()
        },
    )
}

fn arb_accounting_op() -> impl Strategy<Value = AccountingOp> {
    (
        (0u8..4, arb_key(), arb_key(), arb_amount(130, 10)),
        proptest::collection::vec((arb_key(), arb_amount(50, 10)), 0..4),
    )
        .prop_map(|((variant, a, b, amount), sources)| match variant {
            0 => AccountingOp::Open {
                account: a,
                balance: amount,
            },
            1 => AccountingOp::Transfer {
                from: a,
                to: b,
                amount,
            },
            2 => AccountingOp::MultiTransfer { sources, to: b },
            _ => AccountingOp::Audit { account: a },
        })
}

fn arb_escrow_op() -> impl Strategy<Value = EscrowOp> {
    (0u8..3, arb_key(), arb_key(), arb_amount(120, 0)).prop_map(|(variant, a, b, amount)| match variant {
        0 => EscrowOp::Open {
            escrow: a,
            buyer: b,
            // A small key space makes seller == buyer collisions common,
            // which is exactly the aliasing the coverage must survive.
            seller: Key((b.0 + 1) % KEYS),
            amount,
        },
        1 => EscrowOp::Release {
            escrow: a,
            seller: b,
        },
        _ => EscrowOp::Refund { escrow: a, buyer: b },
    })
}

fn arb_kv_op() -> impl Strategy<Value = KvOp> {
    ((0u8..3, arb_key(), arb_amount(100, 50)), arb_keys(4), arb_keys(4)).prop_map(
        |((variant, key, value), reads, writes)| match variant {
            0 => KvOp::Put { key, value },
            1 => KvOp::Mix { reads, writes },
            _ => KvOp::Incr { key, delta: value },
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn accounting_declared_rwset_covers_runtime_accesses(
        genesis in arb_genesis(),
        ops in proptest::collection::vec(arb_accounting_op(), 1..12),
    ) {
        let contract = AccountingContract::new(AppId(0));
        let mut state = KvState::with_genesis(genesis);
        for (i, op) in ops.iter().enumerate() {
            let tx = contract.transaction(ClientId(1), i as u64, op);
            check_and_apply(&contract, &tx, &mut state, i as u32)?;
        }
    }

    #[test]
    fn escrow_declared_rwset_covers_runtime_accesses(
        genesis in arb_genesis(),
        ops in proptest::collection::vec(arb_escrow_op(), 1..12),
    ) {
        let contract = EscrowContract::new(AppId(1));
        let mut state = KvState::with_genesis(genesis);
        for (i, op) in ops.iter().enumerate() {
            let tx = contract.transaction(ClientId(1), i as u64, op);
            check_and_apply(&contract, &tx, &mut state, i as u32)?;
        }
    }

    #[test]
    fn kv_declared_rwset_covers_runtime_accesses(
        genesis in arb_genesis(),
        ops in proptest::collection::vec(arb_kv_op(), 1..12),
    ) {
        let contract = KvContract::new(AppId(2));
        let mut state = KvState::with_genesis(genesis);
        for (i, op) in ops.iter().enumerate() {
            let tx = contract.transaction(ClientId(1), i as u64, op);
            check_and_apply(&contract, &tx, &mut state, i as u32)?;
        }
    }
}
