//! The smart-contract execution interface.

use parblock_ledger::KvState;
use parblock_types::{AppId, Key, Transaction, Value};

/// A read view of the blockchain state presented to contracts.
///
/// Contracts never write directly: they return their write set in the
/// [`ExecOutcome`], and the hosting executor applies it once the
/// transaction commits (Algorithm 3). This keeps execution deterministic
/// and side-effect free, as the paper's model requires.
pub trait StateReader {
    /// Reads the current value of `key` ([`Value::Unit`] if absent).
    fn read(&self, key: Key) -> Value;

    /// Reads `key`, distinguishing **absence** (`None`) from a stored
    /// value — including stored zeros and empty strings, which `read`
    /// cannot tell apart from a missing key when a contract stores
    /// [`Value::Unit`]-adjacent data. Contract aborts on missing state
    /// should be built on this, so they stay observable.
    ///
    /// The default maps [`Value::Unit`] to `None`, matching stores that
    /// use `Unit` as their absence marker; presence-tracking readers
    /// override it.
    fn try_read(&self, key: Key) -> Option<Value> {
        match self.read(key) {
            Value::Unit => None,
            value => Some(value),
        }
    }
}

impl StateReader for KvState {
    fn read(&self, key: Key) -> Value {
        self.get(key)
    }

    fn try_read(&self, key: Key) -> Option<Value> {
        self.get_versioned(key).map(|(value, _)| value)
    }
}

/// A read view over a base state plus an overlay of in-flight writes —
/// what an executor sees mid-block, after some predecessors committed
/// locally but before the block is applied to the canonical state.
#[derive(Debug)]
pub struct OverlayReader<'a, R: StateReader> {
    base: &'a R,
    overlay: &'a std::collections::HashMap<Key, Value>,
}

impl<'a, R: StateReader> OverlayReader<'a, R> {
    /// Creates a view of `base` shadowed by `overlay`.
    pub fn new(base: &'a R, overlay: &'a std::collections::HashMap<Key, Value>) -> Self {
        OverlayReader { base, overlay }
    }
}

impl<R: StateReader> StateReader for OverlayReader<'_, R> {
    fn read(&self, key: Key) -> Value {
        self.overlay
            .get(&key)
            .cloned()
            .unwrap_or_else(|| self.base.read(key))
    }

    fn try_read(&self, key: Key) -> Option<Value> {
        match self.overlay.get(&key) {
            Some(value) => Some(value.clone()),
            None => self.base.try_read(key),
        }
    }
}

/// The result of executing one transaction.
///
/// An aborted transaction is the paper's `(x, "abort")` entry in a COMMIT
/// message: it carries no writes but still counts as processed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecOutcome {
    /// The transaction is valid; apply these writes.
    Commit(Vec<(Key, Value)>),
    /// The transaction is invalid at the application level.
    Abort(String),
}

impl ExecOutcome {
    /// The writes, if committed.
    #[must_use]
    pub fn writes(&self) -> Option<&[(Key, Value)]> {
        match self {
            ExecOutcome::Commit(w) => Some(w),
            ExecOutcome::Abort(_) => None,
        }
    }

    /// Returns `true` when the execution committed.
    #[must_use]
    pub fn is_commit(&self) -> bool {
        matches!(self, ExecOutcome::Commit(_))
    }
}

/// A deterministic smart contract: the program code implementing one
/// application's logic.
///
/// Implementations must be pure functions of `(tx, state)` — executors on
/// different nodes must produce byte-identical outcomes so that matching
/// results can be counted against τ(A).
pub trait SmartContract: Send + Sync {
    /// The application this contract implements.
    fn app(&self) -> AppId;

    /// Human-readable contract name.
    fn name(&self) -> &str;

    /// Executes `tx` against `state`.
    ///
    /// Contracts must only read keys in the transaction's declared read
    /// set and only write keys in the declared write set; the execution
    /// engine relies on the declaration for scheduling.
    fn execute(&self, tx: &Transaction, state: &dyn StateReader) -> ExecOutcome;
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    use parblock_types::Value;

    use super::*;

    #[test]
    fn overlay_shadows_base() {
        let base = KvState::with_genesis([(Key(1), Value::Int(1)), (Key(2), Value::Int(2))]);
        let mut overlay = HashMap::new();
        overlay.insert(Key(1), Value::Int(10));
        let view = OverlayReader::new(&base, &overlay);
        assert_eq!(view.read(Key(1)), Value::Int(10));
        assert_eq!(view.read(Key(2)), Value::Int(2));
        assert_eq!(view.read(Key(3)), Value::Unit);
    }

    #[test]
    fn try_read_distinguishes_absent_from_zero() {
        let state = KvState::with_genesis([(Key(1), Value::Int(0))]);
        assert_eq!(state.read(Key(1)), Value::Int(0));
        assert_eq!(state.try_read(Key(1)), Some(Value::Int(0)), "stored zero");
        assert_eq!(state.try_read(Key(2)), None, "absent key");
        assert_eq!(state.read(Key(2)), Value::Unit);

        let overlay_map =
            HashMap::from([(Key(2), Value::Int(0)), (Key(3), Value::Unit)]);
        let view = OverlayReader::new(&state, &overlay_map);
        assert_eq!(view.try_read(Key(2)), Some(Value::Int(0)));
        assert_eq!(view.try_read(Key(9)), None);
    }

    #[test]
    fn outcome_accessors() {
        let commit = ExecOutcome::Commit(vec![(Key(1), Value::Int(1))]);
        assert!(commit.is_commit());
        assert_eq!(commit.writes().unwrap().len(), 1);
        let abort = ExecOutcome::Abort("insufficient funds".into());
        assert!(!abort.is_commit());
        assert!(abort.writes().is_none());
    }
}
