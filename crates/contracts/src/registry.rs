//! The application registry: Σ : A → 2^E (agents per application),
//! installed contracts, and client access control.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use parblock_types::{AppId, ClientId, NodeId, TypeError};

use crate::traits::SmartContract;

/// Per-application deployment record.
#[derive(Clone)]
struct AppEntry {
    contract: Arc<dyn SmartContract>,
    agents: BTreeSet<NodeId>,
    /// `None` = every client allowed (the common benchmark setting);
    /// `Some(set)` = only listed clients.
    allowed_clients: Option<BTreeSet<ClientId>>,
}

/// The shared deployment map: which contract implements each application,
/// which executor peers are its agents, and which clients may use it.
///
/// Orderers consult it for access control and the NEWBLOCK app set;
/// executors consult it to decide which transactions they execute.
/// "Every peer in the blockchain knows the agents of each application"
/// (§III) — so a single registry value is cloned into every node.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use parblock_contracts::{AccountingContract, AppRegistry};
/// use parblock_types::{AppId, NodeId};
///
/// let mut registry = AppRegistry::new();
/// registry.deploy(Arc::new(AccountingContract::new(AppId(0))), [NodeId(4), NodeId(5)]);
/// assert!(registry.is_agent(NodeId(4), AppId(0)));
/// assert!(!registry.is_agent(NodeId(6), AppId(0)));
/// ```
#[derive(Clone, Default)]
pub struct AppRegistry {
    apps: BTreeMap<AppId, AppEntry>,
}

impl AppRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Deploys `contract` with the given agent set.
    ///
    /// # Panics
    ///
    /// Panics if the agent set is empty — Σ maps to *non-empty* subsets of
    /// executors by definition (§III).
    pub fn deploy<I: IntoIterator<Item = NodeId>>(
        &mut self,
        contract: Arc<dyn SmartContract>,
        agents: I,
    ) {
        let agents: BTreeSet<NodeId> = agents.into_iter().collect();
        assert!(
            !agents.is_empty(),
            "Σ({}) must be non-empty (§III)",
            contract.app()
        );
        self.apps.insert(
            contract.app(),
            AppEntry {
                contract,
                agents,
                allowed_clients: None,
            },
        );
    }

    /// Restricts `app` to the listed clients (default: all allowed).
    ///
    /// # Panics
    ///
    /// Panics if `app` is not deployed.
    pub fn restrict_clients<I: IntoIterator<Item = ClientId>>(&mut self, app: AppId, clients: I) {
        let entry = self.apps.get_mut(&app).expect("app not deployed");
        entry.allowed_clients = Some(clients.into_iter().collect());
    }

    /// The deployed application ids.
    #[must_use]
    pub fn app_ids(&self) -> Vec<AppId> {
        self.apps.keys().copied().collect()
    }

    /// Number of deployed applications.
    #[must_use]
    pub fn len(&self) -> usize {
        self.apps.len()
    }

    /// Returns `true` when no application is deployed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.apps.is_empty()
    }

    /// The contract of `app`.
    ///
    /// # Errors
    ///
    /// [`TypeError::UnknownApp`] if not deployed.
    pub fn contract(&self, app: AppId) -> Result<&Arc<dyn SmartContract>, TypeError> {
        self.apps
            .get(&app)
            .map(|e| &e.contract)
            .ok_or(TypeError::UnknownApp(app))
    }

    /// Σ(app): the agents of `app` (empty if unknown).
    #[must_use]
    pub fn agents(&self, app: AppId) -> Vec<NodeId> {
        self.apps
            .get(&app)
            .map(|e| e.agents.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Whether `node` is an agent of `app`.
    #[must_use]
    pub fn is_agent(&self, node: NodeId, app: AppId) -> bool {
        self.apps
            .get(&app)
            .is_some_and(|e| e.agents.contains(&node))
    }

    /// The union of all agent sets: every node that executes anything.
    #[must_use]
    pub fn all_agents(&self) -> BTreeSet<NodeId> {
        self.apps
            .values()
            .flat_map(|e| e.agents.iter().copied())
            .collect()
    }

    /// Orderer-side access control (§III-A): "if a client is not
    /// authorized to perform an operation on the requested application,
    /// orderers simply discard that request".
    ///
    /// # Errors
    ///
    /// [`TypeError::UnknownApp`] for undeployed applications and
    /// [`TypeError::Unauthorized`] for disallowed clients.
    pub fn check_access(&self, client: ClientId, app: AppId) -> Result<(), TypeError> {
        let entry = self.apps.get(&app).ok_or(TypeError::UnknownApp(app))?;
        match &entry.allowed_clients {
            Some(allowed) if !allowed.contains(&client) => {
                Err(TypeError::Unauthorized { client, app })
            }
            _ => Ok(()),
        }
    }
}

impl std::fmt::Debug for AppRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut map = f.debug_map();
        for (app, entry) in &self.apps {
            map.entry(&app.to_string(), &(entry.contract.name(), &entry.agents));
        }
        map.finish()
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use crate::accounting::AccountingContract;
    use crate::kv_app::KvContract;

    use super::*;

    fn registry() -> AppRegistry {
        let mut r = AppRegistry::new();
        r.deploy(Arc::new(AccountingContract::new(AppId(0))), [NodeId(4)]);
        r.deploy(
            Arc::new(KvContract::new(AppId(1))),
            [NodeId(5), NodeId(6)],
        );
        r
    }

    #[test]
    fn agents_and_membership() {
        let r = registry();
        assert_eq!(r.agents(AppId(1)), vec![NodeId(5), NodeId(6)]);
        assert!(r.is_agent(NodeId(4), AppId(0)));
        assert!(!r.is_agent(NodeId(4), AppId(1)));
        assert!(r.agents(AppId(9)).is_empty());
        assert_eq!(r.all_agents().len(), 3);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn contract_lookup() {
        let r = registry();
        assert_eq!(r.contract(AppId(0)).unwrap().name(), "accounting");
        assert_eq!(
            r.contract(AppId(9)).err().unwrap(),
            TypeError::UnknownApp(AppId(9))
        );
    }

    #[test]
    fn access_control_defaults_open_then_restricts() {
        let mut r = registry();
        assert!(r.check_access(ClientId(1), AppId(0)).is_ok());
        r.restrict_clients(AppId(0), [ClientId(1)]);
        assert!(r.check_access(ClientId(1), AppId(0)).is_ok());
        assert_eq!(
            r.check_access(ClientId(2), AppId(0)).unwrap_err(),
            TypeError::Unauthorized {
                client: ClientId(2),
                app: AppId(0)
            }
        );
    }

    #[test]
    fn unknown_app_access_is_rejected() {
        let r = registry();
        assert_eq!(
            r.check_access(ClientId(1), AppId(7)).unwrap_err(),
            TypeError::UnknownApp(AppId(7))
        );
    }

    #[test]
    #[should_panic(expected = "must be non-empty")]
    fn empty_agent_set_panics() {
        let mut r = AppRegistry::new();
        r.deploy(Arc::new(KvContract::new(AppId(0))), []);
    }

    #[test]
    fn debug_lists_deployments() {
        let r = registry();
        let debug = format!("{r:?}");
        assert!(debug.contains("accounting"));
        assert!(debug.contains("kv"));
    }
}
