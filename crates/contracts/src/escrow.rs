//! An escrow application: multi-party, multi-key contract logic of the
//! kind the paper's introduction motivates (supply-chain style workflows
//! across organizations sharing a datastore).
//!
//! An escrow is a record holding funds in flight between a buyer and a
//! seller. Opening it debits the buyer; releasing credits the seller;
//! refunding credits the buyer back. Escrow transactions intentionally
//! touch *account keys of another application's key space* when configured
//! so, producing the cross-application conflicts of Fig 4(c).

use parblock_types::{AppId, ClientId, Key, RwSet, Transaction, Value};

use crate::traits::{ExecOutcome, SmartContract, StateReader};

/// Operations understood by the [`EscrowContract`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EscrowOp {
    /// Opens an escrow: debits `buyer` by `amount` into `escrow`.
    Open {
        /// Key of the escrow record (must not exist).
        escrow: Key,
        /// The paying account.
        buyer: Key,
        /// The receiving account (recorded for release).
        seller: Key,
        /// The escrowed amount.
        amount: i64,
    },
    /// Releases an escrow to its seller.
    Release {
        /// Key of the escrow record.
        escrow: Key,
        /// The seller account (must match the recorded one).
        seller: Key,
    },
    /// Refunds an escrow to its buyer.
    Refund {
        /// Key of the escrow record.
        escrow: Key,
        /// The buyer account (must match the recorded one).
        buyer: Key,
    },
}

impl EscrowOp {
    /// The declared read/write set.
    #[must_use]
    pub fn rw_set(&self) -> RwSet {
        match self {
            EscrowOp::Open { escrow, buyer, .. } => {
                RwSet::new([*escrow, *buyer], [*escrow, *buyer])
            }
            EscrowOp::Release { escrow, seller } => {
                RwSet::new([*escrow, *seller], [*escrow, *seller])
            }
            EscrowOp::Refund { escrow, buyer } => {
                RwSet::new([*escrow, *buyer], [*escrow, *buyer])
            }
        }
    }

    /// Serializes the operation into a payload.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        let mut put = |k: &Key| out.extend_from_slice(&k.0.to_le_bytes());
        match self {
            EscrowOp::Open {
                escrow,
                buyer,
                seller,
                amount,
            } => {
                put(escrow);
                put(buyer);
                put(seller);
                let mut tagged = vec![0u8];
                tagged.extend_from_slice(&out);
                tagged.extend_from_slice(&amount.to_le_bytes());
                tagged
            }
            EscrowOp::Release { escrow, seller } => {
                put(escrow);
                put(seller);
                let mut tagged = vec![1u8];
                tagged.extend_from_slice(&out);
                tagged
            }
            EscrowOp::Refund { escrow, buyer } => {
                put(escrow);
                put(buyer);
                let mut tagged = vec![2u8];
                tagged.extend_from_slice(&out);
                tagged
            }
        }
    }

    /// Deserializes an operation from a payload.
    #[must_use]
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        let (&tag, rest) = bytes.split_first()?;
        let key_at = |off: usize| -> Option<Key> {
            rest.get(off..off + 8)
                .and_then(|s| s.try_into().ok())
                .map(|b| Key(u64::from_le_bytes(b)))
        };
        match tag {
            0 => Some(EscrowOp::Open {
                escrow: key_at(0)?,
                buyer: key_at(8)?,
                seller: key_at(16)?,
                amount: i64::from_le_bytes(rest.get(24..32)?.try_into().ok()?),
            }),
            1 => Some(EscrowOp::Release {
                escrow: key_at(0)?,
                seller: key_at(8)?,
            }),
            2 => Some(EscrowOp::Refund {
                escrow: key_at(0)?,
                buyer: key_at(8)?,
            }),
            _ => None,
        }
    }
}

/// The escrow smart contract.
///
/// Escrow records are stored as `Value::Bytes([amount, seller, buyer])`
/// encodings under the escrow key; released/refunded escrows are cleared
/// to [`Value::Unit`].
#[derive(Debug, Clone)]
pub struct EscrowContract {
    app: AppId,
}

fn encode_escrow(amount: i64, seller: Key, buyer: Key) -> Value {
    let mut bytes = Vec::with_capacity(24);
    bytes.extend_from_slice(&amount.to_le_bytes());
    bytes.extend_from_slice(&seller.0.to_le_bytes());
    bytes.extend_from_slice(&buyer.0.to_le_bytes());
    Value::Bytes(bytes)
}

fn decode_escrow(value: &Value) -> Option<(i64, Key, Key)> {
    let bytes = value.as_bytes()?;
    if bytes.len() != 24 {
        return None;
    }
    let amount = i64::from_le_bytes(bytes[..8].try_into().ok()?);
    let seller = Key(u64::from_le_bytes(bytes[8..16].try_into().ok()?));
    let buyer = Key(u64::from_le_bytes(bytes[16..24].try_into().ok()?));
    Some((amount, seller, buyer))
}

impl EscrowContract {
    /// Creates the contract for application `app`.
    #[must_use]
    pub fn new(app: AppId) -> Self {
        EscrowContract { app }
    }

    /// Builds a transaction for `op`.
    #[must_use]
    pub fn transaction(&self, client: ClientId, client_ts: u64, op: &EscrowOp) -> Transaction {
        Transaction::new(self.app, client, client_ts, op.rw_set(), op.encode())
    }
}

impl SmartContract for EscrowContract {
    fn app(&self) -> AppId {
        self.app
    }

    fn name(&self) -> &str {
        "escrow"
    }

    fn execute(&self, tx: &Transaction, state: &dyn StateReader) -> ExecOutcome {
        let Some(op) = EscrowOp::decode(tx.payload()) else {
            return ExecOutcome::Abort("malformed escrow payload".into());
        };
        match op {
            EscrowOp::Open {
                escrow,
                buyer,
                seller,
                amount,
            } => {
                if amount <= 0 {
                    return ExecOutcome::Abort("non-positive escrow amount".into());
                }
                if !state.read(escrow).is_unit() {
                    return ExecOutcome::Abort("escrow already exists".into());
                }
                let Some(funds) = state.read(buyer).as_int() else {
                    return ExecOutcome::Abort("buyer account missing".into());
                };
                if funds < amount {
                    return ExecOutcome::Abort("insufficient funds".into());
                }
                ExecOutcome::Commit(vec![
                    (buyer, Value::Int(funds - amount)),
                    (escrow, encode_escrow(amount, seller, buyer)),
                ])
            }
            EscrowOp::Release { escrow, seller } => {
                let Some((amount, recorded_seller, _)) = decode_escrow(&state.read(escrow))
                else {
                    return ExecOutcome::Abort("escrow missing".into());
                };
                if recorded_seller != seller {
                    return ExecOutcome::Abort("seller mismatch".into());
                }
                let funds = state.read(seller).as_int().unwrap_or(0);
                ExecOutcome::Commit(vec![
                    (seller, Value::Int(funds + amount)),
                    (escrow, Value::Unit),
                ])
            }
            EscrowOp::Refund { escrow, buyer } => {
                let Some((amount, _, recorded_buyer)) = decode_escrow(&state.read(escrow))
                else {
                    return ExecOutcome::Abort("escrow missing".into());
                };
                if recorded_buyer != buyer {
                    return ExecOutcome::Abort("buyer mismatch".into());
                }
                let funds = state.read(buyer).as_int().unwrap_or(0);
                ExecOutcome::Commit(vec![
                    (buyer, Value::Int(funds + amount)),
                    (escrow, Value::Unit),
                ])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use parblock_ledger::{KvState, Version};

    use super::*;

    fn apply(state: &mut KvState, outcome: &ExecOutcome) {
        state.apply(outcome.writes().unwrap().iter().cloned(), Version::GENESIS);
    }

    fn open_escrow(contract: &EscrowContract, state: &mut KvState) {
        let op = EscrowOp::Open {
            escrow: Key(500),
            buyer: Key(1),
            seller: Key(2),
            amount: 40,
        };
        let tx = contract.transaction(ClientId(1), 0, &op);
        let outcome = contract.execute(&tx, state);
        assert!(outcome.is_commit());
        apply(state, &outcome);
    }

    fn setup() -> (EscrowContract, KvState) {
        let contract = EscrowContract::new(AppId(2));
        let state = KvState::with_genesis([(Key(1), Value::Int(100)), (Key(2), Value::Int(0))]);
        (contract, state)
    }

    #[test]
    fn open_then_release_pays_seller() {
        let (contract, mut state) = setup();
        open_escrow(&contract, &mut state);
        assert_eq!(state.get(Key(1)), Value::Int(60));

        let op = EscrowOp::Release {
            escrow: Key(500),
            seller: Key(2),
        };
        let tx = contract.transaction(ClientId(1), 1, &op);
        let outcome = contract.execute(&tx, &state);
        apply(&mut state, &outcome);
        assert_eq!(state.get(Key(2)), Value::Int(40));
        assert!(state.get(Key(500)).is_unit());
    }

    #[test]
    fn open_then_refund_returns_to_buyer() {
        let (contract, mut state) = setup();
        open_escrow(&contract, &mut state);
        let op = EscrowOp::Refund {
            escrow: Key(500),
            buyer: Key(1),
        };
        let tx = contract.transaction(ClientId(1), 1, &op);
        let outcome = contract.execute(&tx, &state);
        apply(&mut state, &outcome);
        assert_eq!(state.get(Key(1)), Value::Int(100));
    }

    #[test]
    fn double_release_aborts() {
        let (contract, mut state) = setup();
        open_escrow(&contract, &mut state);
        let op = EscrowOp::Release {
            escrow: Key(500),
            seller: Key(2),
        };
        let tx = contract.transaction(ClientId(1), 1, &op);
        let outcome = contract.execute(&tx, &state);
        apply(&mut state, &outcome);
        assert!(!contract.execute(&tx, &state).is_commit());
    }

    #[test]
    fn wrong_party_aborts() {
        let (contract, mut state) = setup();
        open_escrow(&contract, &mut state);
        let release = EscrowOp::Release {
            escrow: Key(500),
            seller: Key(9),
        };
        let tx = contract.transaction(ClientId(1), 1, &release);
        assert!(!contract.execute(&tx, &state).is_commit());
    }

    #[test]
    fn insufficient_buyer_funds_abort_open() {
        let (contract, state) = setup();
        let op = EscrowOp::Open {
            escrow: Key(501),
            buyer: Key(1),
            seller: Key(2),
            amount: 1000,
        };
        let tx = contract.transaction(ClientId(1), 0, &op);
        assert!(!contract.execute(&tx, &state).is_commit());
    }

    #[test]
    fn ops_round_trip_through_encoding() {
        let ops = [
            EscrowOp::Open {
                escrow: Key(1),
                buyer: Key(2),
                seller: Key(3),
                amount: 9,
            },
            EscrowOp::Release {
                escrow: Key(1),
                seller: Key(3),
            },
            EscrowOp::Refund {
                escrow: Key(1),
                buyer: Key(2),
            },
        ];
        for op in ops {
            assert_eq!(EscrowOp::decode(&op.encode()), Some(op.clone()), "{op:?}");
        }
    }
}
