//! Smart contracts for the ParBlockchain reproduction.
//!
//! "For each application a program code including the logic of that
//! application (smart contract) is installed on a (non-empty) subset of
//! executor peers called the agents of the application" (§III).
//!
//! This crate provides:
//!
//! * the [`SmartContract`] trait — deterministic execution of a
//!   transaction against a read view of the state, producing writes or an
//!   abort;
//! * [`AccountingContract`] — the paper's §V evaluation application
//!   (accounts, transfers, balance checks);
//! * [`KvContract`] and [`EscrowContract`] — further example applications
//!   for the multi-application experiments;
//! * [`AppRegistry`] — the Σ : A → 2^E agent mapping plus client access
//!   control, shared by orderers (for routing/ACL) and executors.
//!
//! # Examples
//!
//! ```
//! use parblock_contracts::{AccountingContract, AccountingOp, SmartContract};
//! use parblock_ledger::KvState;
//! use parblock_types::{AppId, ClientId, Key, Value};
//!
//! let contract = AccountingContract::new(AppId(0));
//! let state = KvState::with_genesis([(Key(1), Value::Int(100)), (Key(2), Value::Int(0))]);
//! let op = AccountingOp::Transfer { from: Key(1), to: Key(2), amount: 30 };
//! let tx = contract.transaction(ClientId(1), 0, &op);
//! let outcome = contract.execute(&tx, &state);
//! assert_eq!(outcome.writes().unwrap().len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod accounting;
mod escrow;
mod kv_app;
mod registry;
mod traits;

pub use accounting::{AccountingContract, AccountingOp};
pub use escrow::{EscrowContract, EscrowOp};
pub use kv_app::{KvContract, KvOp};
pub use registry::AppRegistry;
pub use traits::{ExecOutcome, OverlayReader, SmartContract, StateReader};
