//! A generic key-value application: the simplest possible contract,
//! useful for workloads that need precise control over read/write sets.

use parblock_types::{AppId, ClientId, Key, RwSet, Transaction, Value};

use crate::traits::{ExecOutcome, SmartContract, StateReader};

/// Operations understood by the [`KvContract`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvOp {
    /// Writes a literal integer.
    Put {
        /// The written key.
        key: Key,
        /// The written value.
        value: i64,
    },
    /// Reads a set of keys and writes `base + Σ reads` to a target key —
    /// a read-modify-write whose footprint is fully controllable, used by
    /// the contention-shaping workload generator.
    Mix {
        /// Keys read.
        reads: Vec<Key>,
        /// Keys written (each receives the same derived value).
        writes: Vec<Key>,
    },
    /// Increments a counter key by `delta`.
    Incr {
        /// The counter key.
        key: Key,
        /// The increment.
        delta: i64,
    },
}

impl KvOp {
    /// The declared read/write set.
    #[must_use]
    pub fn rw_set(&self) -> RwSet {
        match self {
            KvOp::Put { key, .. } => RwSet::write_only([*key]),
            KvOp::Mix { reads, writes } => {
                RwSet::new(reads.iter().copied(), writes.iter().copied())
            }
            KvOp::Incr { key, .. } => RwSet::new([*key], [*key]),
        }
    }

    /// Serializes the operation into a payload.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            KvOp::Put { key, value } => {
                out.push(0);
                out.extend_from_slice(&key.0.to_le_bytes());
                out.extend_from_slice(&value.to_le_bytes());
            }
            KvOp::Mix { reads, writes } => {
                out.push(1);
                for list in [reads, writes] {
                    out.extend_from_slice(&(list.len() as u32).to_le_bytes());
                    for k in list {
                        out.extend_from_slice(&k.0.to_le_bytes());
                    }
                }
            }
            KvOp::Incr { key, delta } => {
                out.push(2);
                out.extend_from_slice(&key.0.to_le_bytes());
                out.extend_from_slice(&delta.to_le_bytes());
            }
        }
        out
    }

    /// Deserializes an operation from a payload.
    #[must_use]
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        let (&tag, rest) = bytes.split_first()?;
        match tag {
            0 => Some(KvOp::Put {
                key: Key(u64::from_le_bytes(rest.get(..8)?.try_into().ok()?)),
                value: i64::from_le_bytes(rest.get(8..16)?.try_into().ok()?),
            }),
            1 => {
                let mut off = 0usize;
                let mut lists: [Vec<Key>; 2] = [Vec::new(), Vec::new()];
                for list in &mut lists {
                    let n = u32::from_le_bytes(rest.get(off..off + 4)?.try_into().ok()?) as usize;
                    off += 4;
                    for _ in 0..n {
                        list.push(Key(u64::from_le_bytes(
                            rest.get(off..off + 8)?.try_into().ok()?,
                        )));
                        off += 8;
                    }
                }
                let [reads, writes] = lists;
                Some(KvOp::Mix { reads, writes })
            }
            2 => Some(KvOp::Incr {
                key: Key(u64::from_le_bytes(rest.get(..8)?.try_into().ok()?)),
                delta: i64::from_le_bytes(rest.get(8..16)?.try_into().ok()?),
            }),
            _ => None,
        }
    }
}

/// The key-value smart contract.
#[derive(Debug, Clone)]
pub struct KvContract {
    app: AppId,
}

impl KvContract {
    /// Creates the contract for application `app`.
    #[must_use]
    pub fn new(app: AppId) -> Self {
        KvContract { app }
    }

    /// Builds a transaction for `op`.
    #[must_use]
    pub fn transaction(&self, client: ClientId, client_ts: u64, op: &KvOp) -> Transaction {
        Transaction::new(self.app, client, client_ts, op.rw_set(), op.encode())
    }
}

impl SmartContract for KvContract {
    fn app(&self) -> AppId {
        self.app
    }

    fn name(&self) -> &str {
        "kv"
    }

    fn execute(&self, tx: &Transaction, state: &dyn StateReader) -> ExecOutcome {
        let Some(op) = KvOp::decode(tx.payload()) else {
            return ExecOutcome::Abort("malformed kv payload".into());
        };
        match op {
            KvOp::Put { key, value } => ExecOutcome::Commit(vec![(key, Value::Int(value))]),
            KvOp::Mix { reads, writes } => {
                let sum: i64 = reads
                    .iter()
                    .map(|k| state.read(*k).as_int().unwrap_or(0))
                    .sum();
                let derived = sum + 1;
                ExecOutcome::Commit(
                    writes.into_iter().map(|k| (k, Value::Int(derived))).collect(),
                )
            }
            KvOp::Incr { key, delta } => {
                let current = state.read(key).as_int().unwrap_or(0);
                ExecOutcome::Commit(vec![(key, Value::Int(current + delta))])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use parblock_ledger::KvState;

    use super::*;

    #[test]
    fn put_and_incr() {
        let c = KvContract::new(AppId(1));
        let state = KvState::with_genesis([(Key(1), Value::Int(5))]);
        let tx = c.transaction(ClientId(1), 0, &KvOp::Put { key: Key(2), value: 9 });
        assert_eq!(
            c.execute(&tx, &state).writes().unwrap(),
            &[(Key(2), Value::Int(9))]
        );
        let tx = c.transaction(ClientId(1), 1, &KvOp::Incr { key: Key(1), delta: 3 });
        assert_eq!(
            c.execute(&tx, &state).writes().unwrap(),
            &[(Key(1), Value::Int(8))]
        );
    }

    #[test]
    fn mix_reads_feed_writes() {
        let c = KvContract::new(AppId(1));
        let state = KvState::with_genesis([(Key(1), Value::Int(10)), (Key(2), Value::Int(20))]);
        let op = KvOp::Mix {
            reads: vec![Key(1), Key(2)],
            writes: vec![Key(3), Key(4)],
        };
        let tx = c.transaction(ClientId(1), 0, &op);
        let outcome = c.execute(&tx, &state);
        assert_eq!(
            outcome.writes().unwrap(),
            &[(Key(3), Value::Int(31)), (Key(4), Value::Int(31))]
        );
    }

    #[test]
    fn ops_round_trip_through_encoding() {
        let ops = [
            KvOp::Put { key: Key(1), value: -7 },
            KvOp::Mix {
                reads: vec![Key(1), Key(2)],
                writes: vec![Key(3)],
            },
            KvOp::Mix { reads: vec![], writes: vec![] },
            KvOp::Incr { key: Key(9), delta: 1 },
        ];
        for op in ops {
            assert_eq!(KvOp::decode(&op.encode()), Some(op.clone()), "{op:?}");
        }
    }

    #[test]
    fn incr_declares_rmw_set() {
        let rw = KvOp::Incr { key: Key(1), delta: 1 }.rw_set();
        assert!(rw.reads().contains(&Key(1)));
        assert!(rw.writes().contains(&Key(1)));
    }

    #[test]
    fn malformed_payload_aborts() {
        let c = KvContract::new(AppId(1));
        let state = KvState::new();
        let tx = Transaction::new(AppId(1), ClientId(1), 0, RwSet::default(), vec![77]);
        assert!(!c.execute(&tx, &state).is_commit());
    }
}
