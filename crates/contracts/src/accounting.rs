//! The paper's evaluation application (§V): "a simple accounting
//! application where each client has several accounts … clients can send
//! requests to transfer assets from one or more of their accounts to other
//! accounts."

use parblock_types::{AppId, ClientId, Key, RwSet, Transaction, Value};

use crate::traits::{ExecOutcome, SmartContract, StateReader};

/// Operations understood by the [`AccountingContract`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AccountingOp {
    /// Creates an account with an opening balance.
    Open {
        /// The account key.
        account: Key,
        /// The opening balance (must be non-negative).
        balance: i64,
    },
    /// "Transfer x units from account `from` to account `to`." Valid iff
    /// `from` exists and holds at least `amount`.
    Transfer {
        /// The debited account.
        from: Key,
        /// The credited account.
        to: Key,
        /// The transferred amount (must be positive to be valid).
        amount: i64,
    },
    /// Transfers from several source accounts to one destination ("one or
    /// more of their accounts", §V). Valid iff every source covers its
    /// share.
    MultiTransfer {
        /// Debited accounts with their share of the transfer.
        sources: Vec<(Key, i64)>,
        /// The credited account.
        to: Key,
    },
    /// Reads an account balance (read-only; always valid).
    Audit {
        /// The audited account.
        account: Key,
    },
}

impl AccountingOp {
    /// The declared read/write set of the operation (§III-A: "all records
    /// involved in a transaction are accessed by their primary keys").
    #[must_use]
    pub fn rw_set(&self) -> RwSet {
        match self {
            AccountingOp::Open { account, .. } => RwSet::new([*account], [*account]),
            AccountingOp::Transfer { from, to, .. } => {
                RwSet::new([*from, *to], [*from, *to])
            }
            AccountingOp::MultiTransfer { sources, to } => {
                let keys: Vec<Key> = sources.iter().map(|(k, _)| *k).chain([*to]).collect();
                RwSet::new(keys.clone(), keys)
            }
            AccountingOp::Audit { account } => RwSet::read_only([*account]),
        }
    }

    /// Serializes the operation into a transaction payload.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            AccountingOp::Open { account, balance } => {
                out.push(0);
                out.extend_from_slice(&account.0.to_le_bytes());
                out.extend_from_slice(&balance.to_le_bytes());
            }
            AccountingOp::Transfer { from, to, amount } => {
                out.push(1);
                out.extend_from_slice(&from.0.to_le_bytes());
                out.extend_from_slice(&to.0.to_le_bytes());
                out.extend_from_slice(&amount.to_le_bytes());
            }
            AccountingOp::MultiTransfer { sources, to } => {
                out.push(2);
                out.extend_from_slice(&(sources.len() as u32).to_le_bytes());
                for (key, share) in sources {
                    out.extend_from_slice(&key.0.to_le_bytes());
                    out.extend_from_slice(&share.to_le_bytes());
                }
                out.extend_from_slice(&to.0.to_le_bytes());
            }
            AccountingOp::Audit { account } => {
                out.push(3);
                out.extend_from_slice(&account.0.to_le_bytes());
            }
        }
        out
    }

    /// Deserializes an operation from a transaction payload.
    #[must_use]
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        let (&tag, rest) = bytes.split_first()?;
        let u64_at = |off: usize| -> Option<u64> {
            rest.get(off..off + 8)?.try_into().ok().map(u64::from_le_bytes)
        };
        let i64_at = |off: usize| -> Option<i64> {
            rest.get(off..off + 8)?.try_into().ok().map(i64::from_le_bytes)
        };
        match tag {
            0 => Some(AccountingOp::Open {
                account: Key(u64_at(0)?),
                balance: i64_at(8)?,
            }),
            1 => Some(AccountingOp::Transfer {
                from: Key(u64_at(0)?),
                to: Key(u64_at(8)?),
                amount: i64_at(16)?,
            }),
            2 => {
                let n = u32::from_le_bytes(rest.get(..4)?.try_into().ok()?) as usize;
                let mut sources = Vec::with_capacity(n);
                let mut off = 4;
                for _ in 0..n {
                    let key = Key(u64_at(off)?);
                    let share = i64_at(off + 8)?;
                    sources.push((key, share));
                    off += 16;
                }
                Some(AccountingOp::MultiTransfer {
                    sources,
                    to: Key(u64_at(off)?),
                })
            }
            3 => Some(AccountingOp::Audit {
                account: Key(u64_at(0)?),
            }),
            _ => None,
        }
    }
}

/// The accounting smart contract.
#[derive(Debug, Clone)]
pub struct AccountingContract {
    app: AppId,
}

impl AccountingContract {
    /// Creates the contract for application `app`.
    #[must_use]
    pub fn new(app: AppId) -> Self {
        AccountingContract { app }
    }

    /// Builds a signed-ready transaction for `op` (payload + declared
    /// read/write set).
    #[must_use]
    pub fn transaction(&self, client: ClientId, client_ts: u64, op: &AccountingOp) -> Transaction {
        Transaction::new(self.app, client, client_ts, op.rw_set(), op.encode())
    }
}

fn balance_of(state: &dyn StateReader, key: Key) -> Option<i64> {
    state.try_read(key).and_then(|value| value.as_int())
}

impl SmartContract for AccountingContract {
    fn app(&self) -> AppId {
        self.app
    }

    fn name(&self) -> &str {
        "accounting"
    }

    fn execute(&self, tx: &Transaction, state: &dyn StateReader) -> ExecOutcome {
        let Some(op) = AccountingOp::decode(tx.payload()) else {
            return ExecOutcome::Abort("malformed accounting payload".into());
        };
        match op {
            AccountingOp::Open { account, balance } => {
                if balance < 0 {
                    return ExecOutcome::Abort("negative opening balance".into());
                }
                if balance_of(state, account).is_some() {
                    return ExecOutcome::Abort("account already exists".into());
                }
                ExecOutcome::Commit(vec![(account, Value::Int(balance))])
            }
            AccountingOp::Transfer { from, to, amount } => {
                if amount <= 0 {
                    return ExecOutcome::Abort("non-positive transfer amount".into());
                }
                let Some(src) = balance_of(state, from) else {
                    return ExecOutcome::Abort("source account missing".into());
                };
                if src < amount {
                    return ExecOutcome::Abort("insufficient funds".into());
                }
                let dst = balance_of(state, to).unwrap_or(0);
                ExecOutcome::Commit(vec![
                    (from, Value::Int(src - amount)),
                    (to, Value::Int(dst + amount)),
                ])
            }
            AccountingOp::MultiTransfer { sources, to } => {
                let mut writes = Vec::with_capacity(sources.len() + 1);
                let mut total = 0i64;
                for (key, share) in &sources {
                    if *share <= 0 {
                        return ExecOutcome::Abort("non-positive share".into());
                    }
                    let Some(balance) = balance_of(state, *key) else {
                        return ExecOutcome::Abort("source account missing".into());
                    };
                    if balance < *share {
                        return ExecOutcome::Abort("insufficient funds".into());
                    }
                    writes.push((*key, Value::Int(balance - share)));
                    total += share;
                }
                let dst = balance_of(state, to).unwrap_or(0);
                writes.push((to, Value::Int(dst + total)));
                ExecOutcome::Commit(writes)
            }
            AccountingOp::Audit { .. } => ExecOutcome::Commit(Vec::new()),
        }
    }
}

#[cfg(test)]
mod tests {
    use parblock_ledger::KvState;

    use super::*;

    fn setup() -> (AccountingContract, KvState) {
        let contract = AccountingContract::new(AppId(0));
        let state = KvState::with_genesis([
            (Key(1001), Value::Int(100)),
            (Key(1002), Value::Int(50)),
        ]);
        (contract, state)
    }

    fn run(contract: &AccountingContract, state: &KvState, op: AccountingOp) -> ExecOutcome {
        let tx = contract.transaction(ClientId(1), 0, &op);
        contract.execute(&tx, state)
    }

    #[test]
    fn paper_example_transfer() {
        // "transfer x units from account 1001 to account 1002" — valid iff
        // the balance covers x.
        let (contract, state) = setup();
        let outcome = run(
            &contract,
            &state,
            AccountingOp::Transfer {
                from: Key(1001),
                to: Key(1002),
                amount: 30,
            },
        );
        assert_eq!(
            outcome.writes().unwrap(),
            &[(Key(1001), Value::Int(70)), (Key(1002), Value::Int(80))]
        );
    }

    #[test]
    fn insufficient_funds_aborts() {
        let (contract, state) = setup();
        let outcome = run(
            &contract,
            &state,
            AccountingOp::Transfer {
                from: Key(1001),
                to: Key(1002),
                amount: 1000,
            },
        );
        assert_eq!(outcome, ExecOutcome::Abort("insufficient funds".into()));
    }

    #[test]
    fn missing_source_aborts() {
        let (contract, state) = setup();
        let outcome = run(
            &contract,
            &state,
            AccountingOp::Transfer {
                from: Key(9999),
                to: Key(1002),
                amount: 1,
            },
        );
        assert!(!outcome.is_commit());
    }

    #[test]
    fn non_positive_amount_aborts() {
        let (contract, state) = setup();
        for amount in [0, -5] {
            let outcome = run(
                &contract,
                &state,
                AccountingOp::Transfer {
                    from: Key(1001),
                    to: Key(1002),
                    amount,
                },
            );
            assert!(!outcome.is_commit(), "amount {amount}");
        }
    }

    #[test]
    fn multi_transfer_debits_every_source() {
        let (contract, state) = setup();
        let outcome = run(
            &contract,
            &state,
            AccountingOp::MultiTransfer {
                sources: vec![(Key(1001), 40), (Key(1002), 10)],
                to: Key(1003),
            },
        );
        assert_eq!(
            outcome.writes().unwrap(),
            &[
                (Key(1001), Value::Int(60)),
                (Key(1002), Value::Int(40)),
                (Key(1003), Value::Int(50)),
            ]
        );
    }

    #[test]
    fn multi_transfer_all_or_nothing() {
        let (contract, state) = setup();
        let outcome = run(
            &contract,
            &state,
            AccountingOp::MultiTransfer {
                sources: vec![(Key(1001), 40), (Key(1002), 500)],
                to: Key(1003),
            },
        );
        assert!(!outcome.is_commit());
    }

    #[test]
    fn open_and_double_open() {
        let (contract, mut state) = setup();
        let op = AccountingOp::Open {
            account: Key(2000),
            balance: 5,
        };
        let outcome = run(&contract, &state, op.clone());
        assert!(outcome.is_commit());
        state.apply(
            outcome.writes().unwrap().iter().cloned(),
            parblock_ledger::Version::GENESIS,
        );
        assert!(!run(&contract, &state, op).is_commit(), "double open");
    }

    #[test]
    fn audit_is_read_only_and_valid() {
        let (contract, state) = setup();
        let op = AccountingOp::Audit { account: Key(1001) };
        assert!(op.rw_set().writes().is_empty());
        assert_eq!(run(&contract, &state, op), ExecOutcome::Commit(vec![]));
    }

    #[test]
    fn ops_round_trip_through_encoding() {
        let ops = [
            AccountingOp::Open {
                account: Key(1),
                balance: 10,
            },
            AccountingOp::Transfer {
                from: Key(1),
                to: Key(2),
                amount: 3,
            },
            AccountingOp::MultiTransfer {
                sources: vec![(Key(1), 2), (Key(3), 4)],
                to: Key(5),
            },
            AccountingOp::Audit { account: Key(7) },
        ];
        for op in ops {
            assert_eq!(AccountingOp::decode(&op.encode()), Some(op.clone()), "{op:?}");
        }
    }

    #[test]
    fn malformed_payload_aborts_not_panics() {
        let (contract, state) = setup();
        let tx = Transaction::new(AppId(0), ClientId(1), 0, RwSet::default(), vec![9, 9]);
        assert!(!contract.execute(&tx, &state).is_commit());
        let tx = Transaction::new(AppId(0), ClientId(1), 0, RwSet::default(), vec![]);
        assert!(!contract.execute(&tx, &state).is_commit());
    }

    #[test]
    fn rw_sets_match_declared_keys() {
        let op = AccountingOp::Transfer {
            from: Key(1),
            to: Key(2),
            amount: 1,
        };
        let rw = op.rw_set();
        assert!(rw.reads().contains(&Key(1)) && rw.reads().contains(&Key(2)));
        assert!(rw.writes().contains(&Key(1)) && rw.writes().contains(&Key(2)));
    }
}
