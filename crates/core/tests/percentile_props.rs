//! Property tests pinning `RunReport::latency_percentile` to a naive
//! nearest-rank reference, plus the survivor-bias guard on sweep points.
//!
//! The reference is deliberately implemented by *counting*, not
//! indexing: the p-th percentile is the smallest sample with at least
//! `p·N` samples at or below it. Any indexing bug in the fast path
//! (off-by-one at rank boundaries, tie mishandling, rounding that
//! understates the tail) diverges from the count.

use std::time::Duration;

use proptest::prelude::*;

use parblockchain::{RunReport, SaturatePoint};

/// Counting definition of the nearest-rank percentile.
fn reference_percentile(sorted: &[u64], p: f64) -> u64 {
    let n = sorted.len() as f64;
    for &v in sorted {
        let at_or_below = sorted.iter().filter(|&&x| x <= v).count() as f64;
        if at_or_below >= p * n {
            return v;
        }
    }
    *sorted.last().expect("non-empty")
}

fn report_with(samples: Vec<u64>) -> RunReport {
    let mut sorted = samples;
    sorted.sort_unstable();
    RunReport {
        latencies_us: sorted,
        ..RunReport::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The fast indexed path agrees with the counting reference on
    /// arbitrary samples (duplicates included — small value range forces
    /// ties) and arbitrary percentiles.
    #[test]
    fn percentile_matches_counting_reference(
        samples in proptest::collection::vec(0u64..50, 1..120),
        p_mill in 0u32..=1000,
    ) {
        let p = f64::from(p_mill) / 1000.0;
        let report = report_with(samples);
        let expected = reference_percentile(&report.latencies_us, p);
        prop_assert_eq!(
            report.latency_percentile(p),
            Duration::from_micros(expected),
            "p = {}",
            p
        );
    }

    /// Percentiles are monotone in p and bounded by the sample extremes.
    #[test]
    fn percentile_is_monotone_and_bounded(
        samples in proptest::collection::vec(0u64..1_000_000, 1..80),
        a_mill in 0u32..=1000,
        b_mill in 0u32..=1000,
    ) {
        let report = report_with(samples);
        let (lo, hi) = (a_mill.min(b_mill), a_mill.max(b_mill));
        let at_lo = report.latency_percentile(f64::from(lo) / 1000.0);
        let at_hi = report.latency_percentile(f64::from(hi) / 1000.0);
        prop_assert!(at_lo <= at_hi, "p{lo} = {at_lo:?} > p{hi} = {at_hi:?}");
        let min = Duration::from_micros(*report.latencies_us.first().unwrap());
        let max = Duration::from_micros(*report.latencies_us.last().unwrap());
        prop_assert!(at_lo >= min && at_hi <= max);
    }

    /// A single sample is every percentile.
    #[test]
    fn single_sample_is_every_percentile(
        sample in 0u64..1_000_000,
        p_mill in 0u32..=1000,
    ) {
        let report = report_with(vec![sample]);
        prop_assert_eq!(
            report.latency_percentile(f64::from(p_mill) / 1000.0),
            Duration::from_micros(sample)
        );
    }
}

#[test]
fn empty_samples_yield_zero_for_every_percentile() {
    let report = RunReport::default();
    for p in [0.0, 0.5, 0.99, 0.999, 1.0] {
        assert_eq!(report.latency_percentile(p), Duration::ZERO);
    }
}

/// Survivor-bias guard: percentiles only see *committed* transactions,
/// so a sweep point must carry the unresolved count right next to them —
/// a reader comparing two points can tell a genuine p999 from one whose
/// worst samples never committed at all.
#[test]
fn sweep_points_report_outstanding_alongside_percentiles() {
    let report = RunReport {
        committed: 10,
        outstanding: 90,
        measured_submitted: 100,
        measured_committed: 10,
        measure_window: Duration::from_secs(1),
        latencies_us: (1..=10).collect(),
        ..RunReport::default()
    };
    let point = SaturatePoint::from_report(1_000.0, &report);
    assert_eq!(point.outstanding, 90, "unresolved txs must ride along");
    assert_eq!(point.measured_committed, 10);
    assert_eq!(point.measured_submitted, 100);
    // The point visibly failed to keep up even though every *sample* is
    // tiny — that is exactly the bias `outstanding` exposes.
    assert!(!point.keeps_up(0.99));
    assert_eq!(point.p999, Duration::from_micros(10));
}
