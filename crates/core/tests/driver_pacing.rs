//! Pacing-accuracy regression tests for the open-loop driver.
//!
//! The old driver accrued submission budget per loop iteration
//! (`acc += per_tick`), so any tick that overran its 1 ms budget
//! silently stretched the schedule: the achieved rate drifted below the
//! offered rate with nothing reporting the loss. The rewritten driver
//! paces against an absolute intended-arrival schedule and catches up
//! after stalls, so below saturation the achieved rate must track the
//! offered rate within 1 % — the bound the saturation harness's knee
//! detection relies on.

use std::time::Duration;

use parblockchain::{run, ArrivalProcess, ClusterSpec, LoadSpec, SystemKind};

fn pacing_spec() -> ClusterSpec {
    let mut spec = ClusterSpec::new(SystemKind::Oxii);
    spec.block_cut = parblock_types::BlockCutConfig {
        max_txns: 20,
        max_bytes: usize::MAX,
        max_wait: Duration::from_millis(10),
    };
    spec.costs = parblock_types::ExecutionCosts::per_tx(Duration::from_micros(20));
    spec.topology.intra = Duration::from_micros(50);
    spec.exec_pool = 4;
    spec
}

/// Below saturation, the achieved rate over the measured window stays
/// within 1 % of the offered rate, and the driver's own lateness
/// counters confirm the driver (not the system) kept the schedule.
#[test]
fn achieved_rate_tracks_offered_within_one_percent() {
    let rate = 2_000.0;
    let load = LoadSpec {
        rate_tps: rate,
        duration: Duration::from_millis(1_200),
        drain: Duration::from_millis(800),
        arrival: ArrivalProcess::Uniform,
        warmup: Duration::from_millis(300),
        cooldown: Duration::from_millis(200),
        max_outstanding: None,
    };
    let report = run(&pacing_spec(), &load);

    // The measured window is [300 ms, 1000 ms) on intended arrivals:
    // exactly 1400 uniform arrivals at 500 µs spacing. Intended times
    // are schedule-determined, so this count is exact — a shortfall
    // means the driver quit early or dropped arrivals.
    assert_eq!(
        report.measured_submitted, 1_400,
        "driver must submit the full measured schedule"
    );
    let achieved = report.achieved_tps();
    assert!(
        (achieved - rate).abs() / rate < 0.01,
        "achieved {achieved:.1} tps vs offered {rate} tps — pacing drift \
         or incomplete drain (measured_committed = {}, outstanding = {})",
        report.measured_committed,
        report.outstanding
    );
    // Driver self-check. On a loaded or single-core host the driver
    // thread *will* be descheduled for milliseconds at a time, so the
    // overrun count is allowed to be nonzero — the point of the counter
    // is that the lateness is visible, not absent. What must hold is
    // that catch-up keeps lag bounded (no unbounded schedule stretch:
    // the old accrual bug showed up as lag growing with run length).
    assert!(
        report.driver_max_lag < Duration::from_millis(500),
        "driver lag {:?} approaches the run length — catch-up is broken \
         ({} overruns / {} submissions)",
        report.driver_max_lag,
        report.driver_overruns,
        report.submitted
    );
    assert_eq!(report.admission_shed, 0, "no cap configured, nothing shed");
}

/// The admission cap sheds arrivals instead of submitting them, and the
/// shed count is reported — offered minus (submitted + shed) stays zero.
#[test]
fn admission_cap_sheds_and_accounts_for_every_arrival() {
    let mut spec = pacing_spec();
    // Slow the system down so a tiny cap actually binds.
    spec.costs = parblock_types::ExecutionCosts::per_tx(Duration::from_millis(2));
    spec.workload.contention = 1.0;
    let load = LoadSpec {
        rate_tps: 2_000.0,
        duration: Duration::from_millis(500),
        drain: Duration::from_millis(300),
        arrival: ArrivalProcess::Uniform,
        warmup: Duration::ZERO,
        cooldown: Duration::ZERO,
        max_outstanding: Some(50),
    };
    let report = run(&spec, &load);
    assert!(report.admission_shed > 0, "a binding cap must shed");
    // Every intended arrival is accounted for exactly once: submitted or
    // shed. The uniform schedule over 500 ms at 2k tps has 1000 arrivals.
    assert_eq!(
        report.submitted + report.admission_shed,
        1_000,
        "arrivals lost without a trace: {report:?}"
    );
}
