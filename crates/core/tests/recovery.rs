//! Crash/recovery integration (ISSUE 4, satellite 2; DESIGN.md §9).
//!
//! A cluster running a fixed deterministic workload is killed mid-block
//! (every node crash-faulted), its per-node stores are reconciled to one
//! consistent watermark (`parblock_store::reconcile_cluster` — the
//! file-level startup state transfer), and a fresh cluster recovers from
//! disk via `Store::recover` inside each node's startup, resuming the
//! workload from the recovered watermark. The resumed run's ledger head
//! hash and state digest must be **byte-equal** to an uninterrupted
//! reference run: recovery loses nothing sealed and re-executes exactly
//! the unsealed suffix.

use std::path::Path;
use std::time::Duration;

use parblock_store::Store;
use parblockchain::{
    run_fixed, run_fixed_from, run_fixed_with_faults, ClusterSpec, DurabilityMode, SystemKind,
};

const COUNT: usize = 200;
const BLOCK_TXNS: usize = 25;

/// Count-cut-only OXII spec (deterministic block boundaries, as the
/// fault suite requires) with an aggressive checkpoint cadence so the
/// killed run exercises checkpoint + WAL-truncation recovery too.
fn recovery_spec(data_dir: &Path) -> ClusterSpec {
    let mut spec = ClusterSpec::new(SystemKind::Oxii);
    spec.block_cut = parblock_types::BlockCutConfig {
        max_txns: BLOCK_TXNS,
        max_bytes: usize::MAX,
        max_wait: Duration::from_secs(5),
    };
    spec.costs = parblock_types::ExecutionCosts::per_tx(Duration::from_micros(50));
    spec.topology.intra = Duration::from_micros(50);
    spec.exec_pool = 4;
    spec.exec_pipeline_depth = 2;
    spec.workload.contention = 0.5;
    spec.capture_state = true;
    spec.durability = DurabilityMode::on_disk(data_dir);
    spec.durability_config = parblock_types::DurabilityConfig {
        flush_interval: 8,
        checkpoint_interval: 2,
    };
    spec
}

#[test]
fn killed_cluster_recovers_to_byte_equal_ledger_and_state() {
    // Uninterrupted reference (durability mode does not affect the
    // chain; default spec durability keeps it comparable under the CI
    // on-disk matrix too).
    let tmp = parblock_store::testutil::TempDir::new("core-recovery");
    let reference = {
        let spec = recovery_spec(&tmp.path().join("reference"));
        let report = run_fixed(&spec, COUNT, 2_000.0, Duration::from_secs(30));
        assert_eq!(report.committed, COUNT as u64, "reference run: {report:?}");
        report
    };

    // Phase 1: run the same workload and kill every node mid-run. The
    // run cannot finish; the short timeout just bounds the wait.
    let data_dir = tmp.path().join("cluster");
    let spec = recovery_spec(&data_dir);
    let orderers: Vec<u32> = spec.orderer_ids().iter().map(|n| n.0).collect();
    let peers: Vec<u32> = spec.peer_ids().iter().map(|n| n.0).collect();
    let all: Vec<_> = spec
        .orderer_ids()
        .into_iter()
        .chain(spec.peer_ids())
        .collect();
    let killed = run_fixed_with_faults(
        &spec,
        COUNT,
        2_000.0,
        Duration::from_secs(3),
        move |faults| {
            std::thread::sleep(Duration::from_millis(60));
            for &node in &all {
                faults.crash(node);
            }
        },
    );
    assert!(
        killed.committed < COUNT as u64,
        "crash landed too late to interrupt the run: {killed:?}"
    );

    // Phase 2: startup state transfer — reconcile every store to the
    // most advanced *peer* watermark (orderer stores carry no effects).
    let watermark =
        parblock_store::reconcile_cluster(&data_dir, &peers, &orderers, spec.durability_config)
            .expect("reconcile");
    assert!(
        watermark.0 >= 1,
        "no block sealed before the crash; move the kill later"
    );
    assert!(
        (watermark.0 as usize) < COUNT / BLOCK_TXNS,
        "cluster finished before the crash; move the kill earlier"
    );

    // Phase 3: a fresh cluster recovers from disk and resumes the
    // deterministic workload past the recovered prefix.
    let skip = watermark.0 as usize * BLOCK_TXNS;
    let resumed = run_fixed_from(&spec, skip, COUNT, 2_000.0, Duration::from_secs(30));
    assert_eq!(
        resumed.committed,
        (COUNT - skip) as u64,
        "resumed run did not commit the suffix: {resumed:?}"
    );
    assert_eq!(resumed.aborted, 0);
    assert_eq!(
        resumed.ledger_head, reference.ledger_head,
        "recovered chain diverged from the uninterrupted run"
    );
    assert_eq!(
        resumed.state_digest, reference.state_digest,
        "recovered state diverged: a write was lost or applied twice"
    );

    // The resumed observer recovered a non-empty store and kept
    // persisting: its durability counters surface in the report.
    assert!(resumed.wal_bytes_written > 0, "{resumed:?}");
    assert!(resumed.fsync_count > 0);

    // End cap: the observer's store now holds the full chain, and a
    // cold `Store::open` recovery agrees with the reference head.
    let observer_dir = Store::node_dir(&data_dir, spec.observer().0);
    let (_, recovered) =
        Store::open(&observer_dir, spec.durability_config).expect("open observer store");
    assert_eq!(recovered.watermark.0 as usize, COUNT / BLOCK_TXNS);
    assert_eq!(Some(recovered.head), reference.ledger_head);
}

/// Recovery is idempotent: recovering and resuming with *zero* missing
/// transactions (the cluster finished, then restarted) emits no new
/// blocks and leaves chain and state untouched.
#[test]
fn restart_after_clean_finish_changes_nothing() {
    let tmp = parblock_store::testutil::TempDir::new("core-restart");
    let data_dir = tmp.path().join("cluster");
    let spec = recovery_spec(&data_dir);
    let first = run_fixed(&spec, COUNT, 2_000.0, Duration::from_secs(30));
    assert_eq!(first.committed, COUNT as u64, "{first:?}");

    let restarted = run_fixed_from(&spec, COUNT, COUNT, 2_000.0, Duration::from_secs(10));
    assert_eq!(restarted.committed, 0, "{restarted:?}");
    assert_eq!(restarted.blocks, 0, "a restarted idle cluster re-sealed blocks");

    let observer_dir = Store::node_dir(&data_dir, spec.observer().0);
    let (_, recovered) =
        Store::open(&observer_dir, spec.durability_config).expect("open observer store");
    assert_eq!(Some(recovered.head), first.ledger_head);
    assert_eq!(recovered.watermark.0 as usize, COUNT / BLOCK_TXNS);
}
