//! Fault injection against the pipelined OXII executor (DESIGN.md §7):
//! executor crash/restart and dropped COMMIT messages mid-pipeline must
//! never commit a block out of order or apply a write twice. Order and
//! write-once are asserted through the observer's ledger head hash (the
//! hash chain covers block contents *and* order) and final state digest,
//! both compared against an identical fault-free run.

use std::time::Duration;

use parblockchain::{run_fixed, run_fixed_with_faults, ClusterSpec, RunReport, SystemKind};

const COUNT: usize = 200;

/// Two agents per application with τ(A) = 1: every transaction is
/// executed (and multicast) redundantly, so one silenced or crashed
/// agent costs liveness nothing — and every peer constantly receives
/// duplicate votes for already-committed transactions, exercising the
/// double-apply guards.
fn redundant_spec(depth: usize) -> ClusterSpec {
    let mut spec = ClusterSpec::new(SystemKind::Oxii);
    // Count cuts only (COUNT is a multiple of 25), so block boundaries —
    // and hence the ledger head compared against the reference run — are
    // deterministic; wall-clock time cuts would vary run-to-run.
    spec.block_cut = parblock_types::BlockCutConfig {
        max_txns: 25,
        max_bytes: usize::MAX,
        max_wait: Duration::from_secs(5),
    };
    spec.costs = parblock_types::ExecutionCosts::per_tx(Duration::from_micros(50));
    spec.topology.intra = Duration::from_micros(50);
    spec.exec_pool = 4;
    spec.exec_pipeline_depth = depth;
    spec.executors_per_app = 2;
    spec.commit_quorum = Some(1);
    spec.workload.contention = 0.5;
    spec.capture_state = true;
    spec
}

fn reference(spec: &ClusterSpec) -> RunReport {
    let report = run_fixed(spec, COUNT, 2_000.0, Duration::from_secs(30));
    assert_eq!(report.committed, COUNT as u64, "fault-free reference: {report:?}");
    report
}

fn assert_matches_reference(report: &RunReport, reference: &RunReport, what: &str) {
    assert_eq!(report.committed, COUNT as u64, "{what}: {report:?}");
    assert_eq!(report.aborted, 0, "{what}");
    assert_eq!(
        report.ledger_head, reference.ledger_head,
        "{what}: blocks committed out of order or with different contents"
    );
    assert_eq!(
        report.state_digest, reference.state_digest,
        "{what}: a write was lost or applied twice"
    );
}

/// Every COMMIT message from one agent of each application is dropped for
/// the whole run (deterministic link-level loss). The redundant agents
/// carry the quorum; the observer's ledger and state must be identical
/// to the fault-free run.
#[test]
fn dropped_commit_messages_never_reorder_or_double_apply() {
    let spec = redundant_spec(4);
    let clean = reference(&spec);

    let peers = spec.peer_ids();
    // The second agent of each application (executors are grouped
    // app-major: [a0, a0, a1, a1, a2, a2]).
    let silenced: Vec<_> = spec
        .executor_ids()
        .chunks(2)
        .map(|agents| agents[1])
        .collect();
    let faulty = run_fixed_with_faults(
        &spec,
        COUNT,
        2_000.0,
        Duration::from_secs(30),
        move |faults| {
            for &from in &silenced {
                for &to in &peers {
                    if from != to {
                        faults.set_drop(from, to, 1.0);
                    }
                }
            }
        },
    );
    assert_matches_reference(&faulty, &clean, "dropped COMMITs");
}

/// One agent of each application crashes mid-pipeline and restarts
/// shortly after. It misses blocks (no retransmission protocol) and
/// simply stalls — the survivors must keep committing in order, without
/// losing or double-applying any write.
#[test]
fn crashed_and_restarted_executor_does_not_corrupt_survivors() {
    let spec = redundant_spec(4);
    let clean = reference(&spec);

    let victims: Vec<_> = spec
        .executor_ids()
        .chunks(2)
        .map(|agents| agents[1])
        .collect();
    let faulty = run_fixed_with_faults(
        &spec,
        COUNT,
        2_000.0,
        Duration::from_secs(30),
        move |faults| {
            std::thread::sleep(Duration::from_millis(30));
            for &victim in &victims {
                faults.crash(victim);
            }
            std::thread::sleep(Duration::from_millis(60));
            for &victim in &victims {
                faults.restart(victim);
            }
        },
    );
    assert_matches_reference(&faulty, &clean, "crash/restart");
}

/// A transient COMMIT-loss window mid-run (drops healed after 80 ms):
/// messages lost during the window are gone for good, but the redundant
/// agents cover them; afterwards the healed agent's late duplicate votes
/// for long-committed transactions must all be ignored.
#[test]
fn transient_commit_loss_window_heals_without_divergence() {
    let spec = redundant_spec(2);
    let clean = reference(&spec);

    let peers = spec.peer_ids();
    let silenced: Vec<_> = spec
        .executor_ids()
        .chunks(2)
        .map(|agents| agents[1])
        .collect();
    let faulty = run_fixed_with_faults(
        &spec,
        COUNT,
        2_000.0,
        Duration::from_secs(30),
        move |faults| {
            std::thread::sleep(Duration::from_millis(20));
            for &from in &silenced {
                for &to in &peers {
                    if from != to {
                        faults.set_drop(from, to, 1.0);
                    }
                }
            }
            std::thread::sleep(Duration::from_millis(80));
            faults.heal();
        },
    );
    assert_matches_reference(&faulty, &clean, "transient COMMIT loss");
}

/// A crashed-then-restarted *follower orderer* loses a window of NEWBLOCK
/// duplicates; with a sequencer quorum of 1 the leader's copies carry
/// every peer, and the executor pipeline must stay byte-identical.
#[test]
fn follower_orderer_crash_mid_pipeline_is_invisible_to_executors() {
    let spec = redundant_spec(4);
    let clean = reference(&spec);

    let follower = spec.orderer_ids()[2];
    let faulty = run_fixed_with_faults(
        &spec,
        COUNT,
        2_000.0,
        Duration::from_secs(30),
        move |faults| {
            std::thread::sleep(Duration::from_millis(25));
            faults.crash(follower);
            std::thread::sleep(Duration::from_millis(50));
            faults.restart(follower);
        },
    );
    assert_matches_reference(&faulty, &clean, "follower orderer crash");
}
