//! Open-loop saturation sweeps (DESIGN.md §13): rate-vs-latency curves
//! with honest percentiles and a detected knee.
//!
//! A sweep drives the cluster at each offered rate of a schedule for a
//! fixed window — explicit warm-up and cool-down phases excluded from
//! measurement — and records, per step, the achieved rate alongside
//! p50/p99/p999 commit latency. Because the driver is open-loop with
//! intended-arrival-time stamping (see the `driver` module), a step past
//! the system's capacity shows queueing-inflated percentiles instead of
//! the flat, survivor-biased curve a closed-loop driver would report.
//!
//! The **knee** is the highest offered rate the system still keeps up
//! with: achieved ≥ `knee_tolerance` × offered (0.99 by default —
//! matching the pacing-accuracy bound the driver regression test
//! enforces below saturation). The sweep stops early once achieved
//! collapses below `stop_ratio` × offered; further points would only
//! measure queue growth.
//!
//! Two legs share this module: [`saturate`] runs the threaded cluster in
//! real time, [`saturate_sim`] runs the same sweep on the deterministic
//! virtual-time simulator, where a repeated seed reproduces the curve
//! bit-for-bit (the property `crates/sim/tests/saturate_determinism.rs`
//! pins).

use std::time::Duration;

use parblock_types::ArrivalProcess;
use parblock_workload::ArrivalGen;

use crate::cluster::ClusterSpec;
use crate::metrics::RunReport;
use crate::runner::{run, LoadSpec};
use crate::sim::{run_sim, SimConfig};

/// One saturation sweep: a rate schedule plus the per-step load shape.
#[derive(Debug, Clone)]
pub struct SaturateConfig {
    /// The cluster under test.
    pub spec: ClusterSpec,
    /// Offered rates to sweep, in order (transactions per second).
    pub rates: Vec<f64>,
    /// Arrival process of every step.
    pub arrival: ArrivalProcess,
    /// Submission span of one step (warm-up and cool-down included).
    pub duration: Duration,
    /// Initial span of `duration` excluded from measurement.
    pub warmup: Duration,
    /// Final span of `duration` excluded from measurement.
    pub cooldown: Duration,
    /// Post-submission grace for in-flight commits.
    pub drain: Duration,
    /// Optional admission-control cap on in-flight transactions.
    pub max_outstanding: Option<u64>,
    /// Achieved/offered ratio that still counts as keeping up (knee
    /// detection).
    pub knee_tolerance: f64,
    /// Stop the sweep once achieved/offered falls below this — the
    /// system is past saturation and later points only measure queues.
    pub stop_ratio: f64,
}

impl SaturateConfig {
    /// A sweep over `rates` with the default step shape: 2 s per step
    /// (400 ms warm-up, 200 ms cool-down), uniform arrivals, no
    /// admission cap, 0.99 knee tolerance, 0.7 stop ratio.
    #[must_use]
    pub fn new(spec: ClusterSpec, rates: Vec<f64>) -> Self {
        SaturateConfig {
            spec,
            rates,
            arrival: ArrivalProcess::Uniform,
            duration: Duration::from_secs(2),
            warmup: Duration::from_millis(400),
            cooldown: Duration::from_millis(200),
            drain: Duration::from_millis(800),
            max_outstanding: None,
            knee_tolerance: 0.99,
            stop_ratio: 0.7,
        }
    }

    /// The measured span of one step (`duration − warmup − cooldown`).
    ///
    /// # Panics
    ///
    /// Panics when warm-up plus cool-down leaves no measured span.
    #[must_use]
    pub fn measured_span(&self) -> Duration {
        let phases = self.warmup + self.cooldown;
        assert!(
            phases < self.duration,
            "warm-up + cool-down ({phases:?}) must leave a measured span of {:?}",
            self.duration
        );
        self.duration - phases
    }
}

/// Per-stage-pair latency summary of one sweep step: which lifecycle
/// gap (DESIGN.md §14) holds how much of the commit latency at this
/// offered rate. Empty unless the swept spec enables tracing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageSummary {
    /// Gap start stage.
    pub from: parblock_trace::Stage,
    /// Gap end stage.
    pub to: parblock_trace::Stage,
    /// Transactions that passed through both stages.
    pub count: u64,
    /// Median gap latency.
    pub p50: Duration,
    /// 99th-percentile gap latency.
    pub p99: Duration,
}

/// One step of a saturation sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SaturatePoint {
    /// Target arrival rate (tps).
    pub offered_tps: f64,
    /// Commits of measured arrivals over the measured span (tps).
    pub achieved_tps: f64,
    /// Arrivals whose intended time fell in the measured span.
    pub measured_submitted: u64,
    /// Commits of those arrivals — the latency-sample population.
    pub measured_committed: u64,
    /// Submissions still unresolved when the step ended. Reported next
    /// to the percentiles on purpose: samples only exist for commits, so
    /// a large `outstanding` means the true tail is *worse* than p999
    /// (survivor bias) and the step is past saturation.
    pub outstanding: u64,
    /// Median commit latency (intended-arrival → commit).
    pub p50: Duration,
    /// 99th-percentile commit latency.
    pub p99: Duration,
    /// 99.9th-percentile commit latency.
    pub p999: Duration,
    /// Driver self-check: submissions sent ≥ 1 ms late. Nonzero here
    /// with achieved ≈ offered is harmless catch-up; large values mean
    /// the *driver* saturated, not the system.
    pub driver_overruns: u64,
    /// Worst driver send lag behind the intended schedule.
    pub driver_max_lag: Duration,
    /// Arrivals shed by the admission cap (zero without one).
    pub admission_shed: u64,
    /// Per-stage latency breakdown (populated when the spec traces):
    /// shows which lifecycle stage saturates first as the rate climbs.
    pub stages: Vec<StageSummary>,
}

impl SaturatePoint {
    /// Derives a sweep point from one run's report.
    #[must_use]
    pub fn from_report(offered_tps: f64, report: &RunReport) -> Self {
        let stages = report
            .trace
            .pairs
            .iter()
            .map(|pair| StageSummary {
                from: pair.from,
                to: pair.to,
                count: pair.hist.count(),
                p50: Duration::from_nanos(pair.hist.percentile(0.50)),
                p99: Duration::from_nanos(pair.hist.percentile(0.99)),
            })
            .collect();
        SaturatePoint {
            offered_tps,
            achieved_tps: report.achieved_tps(),
            measured_submitted: report.measured_submitted,
            measured_committed: report.measured_committed,
            outstanding: report.outstanding,
            p50: report.latency_percentile(0.50),
            p99: report.latency_percentile(0.99),
            p999: report.latency_percentile(0.999),
            driver_overruns: report.driver_overruns,
            driver_max_lag: report.driver_max_lag,
            admission_shed: report.admission_shed,
            stages,
        }
    }

    /// Whether this step kept up with its offered rate.
    #[must_use]
    pub fn keeps_up(&self, tolerance: f64) -> bool {
        self.achieved_tps >= tolerance * self.offered_tps
    }
}

/// A completed sweep: the curve plus the detected knee.
#[derive(Debug, Clone, PartialEq)]
pub struct SaturateOutcome {
    /// One point per swept rate, in schedule order (the sweep may have
    /// stopped early past saturation — compare against the configured
    /// rates to see how far it got).
    pub points: Vec<SaturatePoint>,
    /// The saturation knee: the highest offered rate whose step kept up
    /// (achieved ≥ tolerance × offered). `None` when no step kept up —
    /// the schedule started past saturation.
    pub knee_tps: Option<f64>,
}

impl SaturateOutcome {
    fn from_points(points: Vec<SaturatePoint>, tolerance: f64) -> Self {
        let knee_tps = points
            .iter()
            .filter(|p| p.keeps_up(tolerance))
            .map(|p| p.offered_tps)
            .fold(None, |acc: Option<f64>, r| {
                Some(acc.map_or(r, |a| a.max(r)))
            });
        SaturateOutcome { points, knee_tps }
    }
}

/// Runs the sweep on the threaded cluster in real time. One fresh
/// cluster per step — no state leaks across rates.
///
/// # Panics
///
/// Panics on an empty measured span (see
/// [`SaturateConfig::measured_span`]) or on inconsistent cluster specs.
#[must_use]
pub fn saturate(config: &SaturateConfig) -> SaturateOutcome {
    let _ = config.measured_span();
    let mut points = Vec::with_capacity(config.rates.len());
    for &rate in &config.rates {
        let load = LoadSpec {
            rate_tps: rate,
            duration: config.duration,
            drain: config.drain,
            arrival: config.arrival,
            warmup: config.warmup,
            cooldown: config.cooldown,
            max_outstanding: config.max_outstanding,
        };
        let report = run(&config.spec, &load);
        let point = SaturatePoint::from_report(rate, &report);
        let stop = !point.keeps_up(config.stop_ratio);
        points.push(point);
        if stop {
            break;
        }
    }
    SaturateOutcome::from_points(points, config.knee_tolerance)
}

/// Runs the same sweep on the deterministic virtual-time simulator
/// (OXII only): every step is a [`run_sim`] with the step's arrival
/// schedule and measurement window, so the whole curve — achieved
/// rates, every percentile — is a pure function of the spec's seed and
/// reproduces bit-for-bit.
///
/// # Panics
///
/// Panics on non-OXII specs or an empty measured span.
#[must_use]
pub fn saturate_sim(config: &SaturateConfig) -> SaturateOutcome {
    let _ = config.measured_span();
    let mut points = Vec::with_capacity(config.rates.len());
    for &rate in &config.rates {
        // The step submits exactly the arrivals of [0, duration) — the
        // same schedule the threaded driver would pace.
        let count = ArrivalGen::new(config.arrival, rate, config.spec.seed)
            .take_until(config.duration)
            .len();
        let mut sim = SimConfig::new(config.spec.clone(), count, rate);
        sim.arrival = config.arrival;
        sim.measure = Some((config.warmup, config.duration - config.cooldown));
        sim.virtual_deadline = config.duration + config.drain;
        let outcome = run_sim(&sim);
        let point = SaturatePoint::from_report(rate, &outcome.report);
        let stop = !point.keeps_up(config.stop_ratio);
        points.push(point);
        if stop {
            break;
        }
    }
    SaturateOutcome::from_points(points, config.knee_tolerance)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{DurabilityMode, SystemKind};

    fn sweep_spec() -> ClusterSpec {
        let mut spec = ClusterSpec::new(SystemKind::Oxii);
        spec.block_cut = parblock_types::BlockCutConfig {
            max_txns: 25,
            max_bytes: usize::MAX,
            max_wait: Duration::from_millis(10),
        };
        spec.costs = parblock_types::ExecutionCosts::per_tx(Duration::from_micros(500));
        // Full contention makes each block's dependency graph a chain, so
        // virtual execution is serialized at 500 µs/tx — a hard capacity
        // of 2 000 tps the sweep must find (the simulator's inline queue
        // has no lane limit; only dependencies bound its throughput).
        spec.workload.contention = 1.0;
        spec.durability = DurabilityMode::InMemory;
        spec.seed = 42;
        spec
    }

    fn quick_config(rates: Vec<f64>) -> SaturateConfig {
        let mut config = SaturateConfig::new(sweep_spec(), rates);
        config.duration = Duration::from_millis(600);
        config.warmup = Duration::from_millis(150);
        config.cooldown = Duration::from_millis(100);
        config.drain = Duration::from_millis(300);
        config
    }

    #[test]
    fn sim_sweep_finds_a_knee_and_stops_past_saturation() {
        // Chained execution at 500 µs/tx caps the cluster at 2 000 tps;
        // the sweep must keep up well below that and collapse well
        // above it.
        let config = quick_config(vec![500.0, 1_000.0, 20_000.0, 40_000.0]);
        let outcome = saturate_sim(&config);
        assert!(outcome.points.len() >= 3, "{outcome:?}");
        assert!(outcome.points[0].keeps_up(0.99), "{:?}", outcome.points[0]);
        assert!(outcome.points[1].keeps_up(0.99), "{:?}", outcome.points[1]);
        let knee = outcome.knee_tps.expect("two rates kept up");
        assert!((1_000.0..20_000.0).contains(&knee), "knee {knee}");
        let last = outcome.points.last().unwrap();
        assert!(
            !last.keeps_up(config.stop_ratio),
            "sweep should stop on collapse: {last:?}"
        );
        assert!(
            outcome.points.len() < config.rates.len()
                || !outcome.points.last().unwrap().keeps_up(config.knee_tolerance),
            "past-saturation points after a collapse"
        );
        // Past the knee the queueing delay must show up in the tail.
        assert!(
            last.p99 > outcome.points[0].p99,
            "saturated p99 {:?} vs idle p99 {:?}",
            last.p99,
            outcome.points[0].p99
        );
    }

    #[test]
    fn sim_sweep_is_bit_reproducible() {
        let config = quick_config(vec![800.0, 2_000.0]);
        let a = saturate_sim(&config);
        let b = saturate_sim(&config);
        assert_eq!(a, b, "same seed must reproduce the curve bit-for-bit");
    }

    #[test]
    fn knee_is_none_when_nothing_keeps_up() {
        let outcome = SaturateOutcome::from_points(
            vec![SaturatePoint {
                offered_tps: 1_000.0,
                achieved_tps: 100.0,
                measured_submitted: 1_000,
                measured_committed: 100,
                outstanding: 900,
                p50: Duration::ZERO,
                p99: Duration::ZERO,
                p999: Duration::ZERO,
                driver_overruns: 0,
                driver_max_lag: Duration::ZERO,
                admission_shed: 0,
                stages: Vec::new(),
            }],
            0.99,
        );
        assert_eq!(outcome.knee_tps, None);
    }

    #[test]
    #[should_panic(expected = "must leave a measured span")]
    fn degenerate_window_panics() {
        let mut config = SaturateConfig::new(sweep_spec(), vec![100.0]);
        config.warmup = config.duration;
        let _ = saturate(&config);
    }
}
