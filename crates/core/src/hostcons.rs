//! Hosting glue for the pluggable consensus protocols: a uniform wrapper
//! over PBFT and the quorum sequencer, plus deadline tracking for their
//! timers.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use parblock_consensus::{
    Action, OrderingProtocol, Pbft, ProtocolConfig, QuorumSequencer, TimerId,
};
use parblock_types::NodeId;

use crate::msg::ConsMsg;

/// A consensus instance of either kind, presenting [`ConsMsg`] uniformly.
#[derive(Debug)]
pub enum AnyConsensus {
    /// PBFT (Byzantine fault-tolerant, n ≥ 4).
    Pbft(Pbft),
    /// Quorum sequencer (crash fault-tolerant, n ≥ 2).
    Seq(QuorumSequencer),
}

fn map_actions<M>(actions: Vec<Action<M>>, wrap: fn(M) -> ConsMsg) -> Vec<Action<ConsMsg>> {
    actions
        .into_iter()
        .map(|a| match a {
            Action::Send { to, msg } => Action::Send { to, msg: wrap(msg) },
            Action::Broadcast { msg } => Action::Broadcast { msg: wrap(msg) },
            Action::Deliver { seq, payload } => Action::Deliver { seq, payload },
            Action::SetTimer { id, after } => Action::SetTimer { id, after },
            Action::CancelTimer { id } => Action::CancelTimer { id },
        })
        .collect()
}

impl AnyConsensus {
    /// Builds a PBFT instance.
    #[must_use]
    pub fn pbft(cfg: ProtocolConfig, timeout: Duration) -> Self {
        AnyConsensus::Pbft(Pbft::new(cfg, timeout))
    }

    /// Builds a sequencer instance.
    #[must_use]
    pub fn sequencer(cfg: ProtocolConfig, timeout: Duration) -> Self {
        AnyConsensus::Seq(QuorumSequencer::new(cfg, timeout))
    }
}

impl OrderingProtocol for AnyConsensus {
    type Msg = ConsMsg;

    fn submit(&mut self, payload: Vec<u8>) -> Vec<Action<ConsMsg>> {
        match self {
            AnyConsensus::Pbft(p) => map_actions(p.submit(payload), ConsMsg::Pbft),
            AnyConsensus::Seq(s) => map_actions(s.submit(payload), ConsMsg::Seq),
        }
    }

    fn on_message(&mut self, from: NodeId, msg: ConsMsg) -> Vec<Action<ConsMsg>> {
        match (self, msg) {
            (AnyConsensus::Pbft(p), ConsMsg::Pbft(m)) => {
                map_actions(p.on_message(from, m), ConsMsg::Pbft)
            }
            (AnyConsensus::Seq(s), ConsMsg::Seq(m)) => {
                map_actions(s.on_message(from, m), ConsMsg::Seq)
            }
            // Mixed traffic (misconfigured cluster) is dropped.
            _ => Vec::new(),
        }
    }

    fn on_timer(&mut self, id: TimerId) -> Vec<Action<ConsMsg>> {
        match self {
            AnyConsensus::Pbft(p) => map_actions(p.on_timer(id), ConsMsg::Pbft),
            AnyConsensus::Seq(s) => map_actions(s.on_timer(id), ConsMsg::Seq),
        }
    }

    fn id(&self) -> NodeId {
        match self {
            AnyConsensus::Pbft(p) => p.id(),
            AnyConsensus::Seq(s) => s.id(),
        }
    }

    fn is_leader(&self) -> bool {
        match self {
            AnyConsensus::Pbft(p) => p.is_leader(),
            AnyConsensus::Seq(s) => s.is_leader(),
        }
    }

    fn current_view(&self) -> u64 {
        match self {
            AnyConsensus::Pbft(p) => p.current_view(),
            AnyConsensus::Seq(s) => s.current_view(),
        }
    }
}

/// Deadlines for protocol timers ([`Action::SetTimer`] /
/// [`Action::CancelTimer`]).
///
/// The caller supplies *now* explicitly (from the cluster [`Clock`]), so
/// the table works identically under the wall clock and under the
/// deterministic simulator; a `BTreeMap` keeps expiry order a pure
/// function of the timer ids rather than of hash-map iteration order.
///
/// [`Clock`]: parblock_types::Clock
#[derive(Debug, Default)]
pub struct TimerTable {
    deadlines: BTreeMap<TimerId, Instant>,
}

impl TimerTable {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Applies the timer-related actions in `actions` (send/deliver
    /// actions are left for the caller), with deadlines measured from
    /// `now`.
    pub fn absorb<M>(&mut self, actions: &[Action<M>], now: Instant) {
        for action in actions {
            match action {
                Action::SetTimer { id, after } => {
                    self.deadlines.insert(*id, now + *after);
                }
                Action::CancelTimer { id } => {
                    self.deadlines.remove(id);
                }
                _ => {}
            }
        }
    }

    /// The earliest pending deadline.
    #[must_use]
    pub fn next_deadline(&self) -> Option<Instant> {
        self.deadlines.values().min().copied()
    }

    /// Removes and returns the timers expired as of `now`, in timer-id
    /// order.
    pub fn take_expired(&mut self, now: Instant) -> Vec<TimerId> {
        let expired: Vec<TimerId> = self
            .deadlines
            .iter()
            .filter(|(_, &d)| d <= now)
            .map(|(&id, _)| id)
            .collect();
        for id in &expired {
            self.deadlines.remove(id);
        }
        expired
    }
}

#[cfg(test)]
mod tests {
    use parblock_consensus::{PbftMsg, SeqMsg};

    use super::*;

    fn peers(n: u32) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    #[test]
    fn wrapped_sequencer_orders_payloads() {
        let cfg = ProtocolConfig::new(NodeId(0), peers(3));
        let mut leader = AnyConsensus::sequencer(cfg, Duration::from_millis(100));
        assert!(leader.is_leader());
        let actions = leader.submit(b"p".to_vec());
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::Broadcast { msg: ConsMsg::Seq(_) })));
    }

    #[test]
    fn wrapped_pbft_reports_identity() {
        let cfg = ProtocolConfig::new(NodeId(2), peers(4));
        let replica = AnyConsensus::pbft(cfg, Duration::from_millis(100));
        assert_eq!(replica.id(), NodeId(2));
        assert!(!replica.is_leader());
        assert_eq!(replica.current_view(), 0);
    }

    #[test]
    fn mixed_protocol_traffic_is_dropped() {
        let cfg = ProtocolConfig::new(NodeId(0), peers(3));
        let mut seq = AnyConsensus::sequencer(cfg, Duration::from_millis(100));
        let actions = seq.on_message(
            NodeId(1),
            ConsMsg::Pbft(parblock_consensus::PbftMsg::Forward { payload: vec![] }),
        );
        assert!(actions.is_empty());
    }

    #[test]
    fn timer_table_tracks_deadlines() {
        let mut table = TimerTable::new();
        let now = Instant::now();
        let actions: Vec<Action<ConsMsg>> = vec![
            Action::SetTimer {
                id: TimerId(1),
                after: Duration::ZERO,
            },
            Action::SetTimer {
                id: TimerId(2),
                after: Duration::from_secs(60),
            },
        ];
        table.absorb(&actions, now);
        assert!(table.next_deadline().is_some());
        let expired = table.take_expired(now);
        assert_eq!(expired, vec![TimerId(1)]);
        let cancel: Vec<Action<ConsMsg>> = vec![Action::CancelTimer { id: TimerId(2) }];
        table.absorb(&cancel, now);
        assert!(table.next_deadline().is_none());
    }

    #[test]
    fn timer_table_expiry_is_deterministic_and_time_driven() {
        let mut table = TimerTable::new();
        let now = Instant::now();
        let actions: Vec<Action<ConsMsg>> = (0..4)
            .map(|i| Action::SetTimer {
                id: TimerId(3 - i),
                after: Duration::from_millis(5),
            })
            .collect();
        table.absorb(&actions, now);
        assert!(table.take_expired(now).is_empty(), "nothing due yet");
        let expired = table.take_expired(now + Duration::from_millis(5));
        assert_eq!(
            expired,
            vec![TimerId(0), TimerId(1), TimerId(2), TimerId(3)],
            "expiry order is id order, not insertion or hash order"
        );
    }

    #[test]
    fn unused_import_guard() {
        // PbftMsg/SeqMsg are re-exported through ConsMsg construction.
        let _ = ConsMsg::Pbft(PbftMsg::Forward { payload: vec![] });
        let _ = ConsMsg::Seq(SeqMsg::Forward { payload: vec![] });
    }
}
