//! The orderer node: consensus hosting, request admission, block cutting,
//! dependency-graph generation and NEWBLOCK multicast (§III-A, §IV-B).
//!
//! One implementation serves all three systems: OXII orderers attach a
//! dependency graph to each block; OX and XOV orderers do not. Graph
//! generation happens *inside the cutter* as transactions stream in
//! (see [`BlockCutter::with_graph`]), so `emit_block` receives block and
//! graph together and the ordering critical path between a cut and the
//! `NEWBLOCK` multicast no longer pays a batch graph rebuild.

use std::collections::HashSet;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parblock_consensus::{Action, OrderingProtocol};
use parblock_crypto::hash_wire;
use parblock_depgraph::DependencyMode;
use parblock_ledger::Ledger;
use parblock_net::Endpoint;
use parblock_types::wire::Wire;
use parblock_types::{Block, BlockNumber, Hash32, NodeId, Transaction, TxId};

use crate::batch::Payload;
use crate::cutter::{BlockCutter, CutBlock};
use crate::hostcons::{AnyConsensus, TimerTable};
use crate::msg::{BlockBundle, ConsMsg, Msg};
use crate::shared::Shared;

/// How often buffered requests are flushed into a consensus batch.
const BATCH_INTERVAL: Duration = Duration::from_millis(1);
/// Idle receive timeout (stop-flag poll granularity).
const IDLE_TICK: Duration = Duration::from_micros(500);

pub(crate) struct Orderer {
    shared: Arc<Shared>,
    endpoint: Endpoint<Msg>,
    protocol: AnyConsensus,
    cutter: BlockCutter,
    timers: TimerTable,
    batch: Vec<Transaction>,
    last_flush: Instant,
    marker_sent: Option<Instant>,
    seen: HashSet<TxId>,
    prev_hash: Hash32,
    next_number: BlockNumber,
    dests: Vec<NodeId>,
    /// Orderers own the chain (§III-A): under on-disk durability every
    /// emitted block is sealed here *before* the NEWBLOCK multicast, and
    /// a restarted orderer recovers its chain position — and the
    /// exactly-once dedup set, from the persisted blocks — instead of
    /// renumbering from 1.
    store: Option<parblock_store::Store>,
}

impl Orderer {
    pub(crate) fn new(
        shared: Arc<Shared>,
        endpoint: Endpoint<Msg>,
        protocol: AnyConsensus,
        graph_mode: Option<DependencyMode>,
    ) -> Self {
        let cutter = match graph_mode {
            None => BlockCutter::new(shared.spec.block_cut.clone()),
            Some(mode) => BlockCutter::with_graph(
                shared.spec.block_cut.clone(),
                mode,
                shared.spec.graph_construction,
            ),
        };
        let dests = shared.spec.peer_ids();
        let mut seen = HashSet::new();
        let mut prev_hash = Ledger::genesis_hash();
        let mut next_number = BlockNumber(1);
        let store = match crate::durability::open_orderer_store(&shared.spec, endpoint.id()) {
            None => None,
            Some((store, recovered)) => {
                for (block, _) in &recovered.chain {
                    seen.extend(block.transactions().iter().map(Transaction::id));
                }
                prev_hash = recovered.head;
                next_number = BlockNumber(recovered.watermark.0 + 1);
                Some(store)
            }
        };
        let now = shared.clock.now();
        Orderer {
            shared,
            endpoint,
            protocol,
            cutter,
            timers: TimerTable::new(),
            batch: Vec::new(),
            last_flush: now,
            marker_sent: None,
            seen,
            prev_hash,
            next_number,
            dests,
            store,
        }
    }

    pub(crate) fn run(mut self) {
        while !self.shared.stop.load(Ordering::Relaxed) {
            let wait = self
                .timers
                .next_deadline()
                .map(|d| d.saturating_duration_since(self.shared.clock.now()))
                .unwrap_or(IDLE_TICK)
                .min(IDLE_TICK);
            if let Ok(envelope) = self.endpoint.recv_timeout(wait) {
                self.on_msg(envelope.from, envelope.msg);
                // Drain whatever else is queued before housekeeping.
                while let Some(envelope) = self.endpoint.try_recv() {
                    self.on_msg(envelope.from, envelope.msg);
                }
            }
            self.tick();
        }
    }

    /// One housekeeping pass against the cluster clock: expired protocol
    /// timers, batch flushing, and the leader's time-cut marker. The
    /// threaded loop calls this after every receive; the deterministic
    /// scheduler calls it at every virtual-time step.
    pub(crate) fn tick(&mut self) {
        let now = self.shared.clock.now();
        for timer in self.timers.take_expired(now) {
            let actions = self.protocol.on_timer(timer);
            self.apply(actions);
        }
        self.flush_batch_if_due(now);
        self.order_time_cut_if_due(now);
    }

    /// Drains the mailbox without blocking, then ticks. The deterministic
    /// scheduler's step function. Returns how many messages were handled.
    pub(crate) fn step(&mut self) -> usize {
        let mut handled = 0;
        while let Some(envelope) = self.endpoint.try_recv() {
            self.on_msg(envelope.from, envelope.msg);
            handled += 1;
        }
        self.tick();
        handled
    }

    /// The orderer's chain position: next block number to emit and the
    /// hash of the last emitted block. The simulation's orderer-
    /// convergence oracle compares these across replicas.
    pub(crate) fn chain_position(&self) -> (BlockNumber, Hash32) {
        (self.next_number, self.prev_hash)
    }

    /// The earliest instant this orderer has *time-driven* work: a
    /// consensus timer, a due batch flush, or (as leader) the cutter's
    /// time-cut deadline / marker resend. The deterministic scheduler
    /// advances virtual time straight to this instant when no message
    /// traffic is due, so wall-clock cut behaviour fires exactly on its
    /// deadline instead of being polled.
    pub(crate) fn next_due(&self) -> Option<Instant> {
        let mut due = self.timers.next_deadline();
        let mut merge = |candidate: Option<Instant>| {
            due = match (due, candidate) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
        };
        if !self.batch.is_empty() {
            merge(Some(self.last_flush + BATCH_INTERVAL));
        }
        if self.protocol.is_leader() {
            merge(self.cutter.time_cut_deadline());
            if self.cutter.first_pending().is_some() {
                if let Some(sent) = self.marker_sent {
                    merge(Some(sent + self.shared.spec.block_cut.max_wait));
                }
            }
        }
        due
    }

    fn on_msg(&mut self, from: NodeId, msg: Msg) {
        match msg {
            Msg::Request { tx, sig } => {
                // §III-A: orderers check signatures and access rights and
                // simply discard invalid requests.
                let signer = self.shared.spec.client_signer(tx.client());
                if !self.shared.keys.verify(signer, &tx.wire_bytes(), &sig) {
                    return;
                }
                if self
                    .shared
                    .registry
                    .check_access(tx.client(), tx.app())
                    .is_err()
                {
                    return;
                }
                self.batch.push(tx);
            }
            Msg::Cons(m) => {
                let actions = self.protocol.on_message(from, m);
                self.apply(actions);
            }
            // Orderers "do not have access to any smart contract or the
            // application state" (§III-A): everything else is not theirs.
            _ => {}
        }
    }

    fn apply(&mut self, actions: Vec<Action<ConsMsg>>) {
        self.timers.absorb(&actions, self.shared.clock.now());
        for action in actions {
            match action {
                Action::Send { to, msg } => self.endpoint.send(to, Msg::Cons(msg)),
                Action::Broadcast { msg } => {
                    let peers = self.shared.spec.orderer_ids();
                    self.endpoint.multicast(peers.iter(), &Msg::Cons(msg));
                }
                Action::Deliver { payload, .. } => self.on_delivery(&payload),
                Action::SetTimer { .. } | Action::CancelTimer { .. } => {}
            }
        }
    }

    /// Every orderer replays the same delivered stream, so lifecycle
    /// stages are stamped once, at the entry orderer, instead of racing
    /// three first-record-wins writes per transaction.
    fn traces_stages(&self) -> bool {
        self.shared.trace.enabled() && self.endpoint.id() == self.shared.spec.entry_orderer()
    }

    fn on_delivery(&mut self, payload: &[u8]) {
        let traces = self.traces_stages();
        match Payload::decode(payload) {
            Some(Payload::Batch(txs)) => {
                for tx in txs {
                    // Exactly-once: client timestamps deduplicate
                    // deterministic re-proposals after view changes.
                    if !self.seen.insert(tx.id()) {
                        continue;
                    }
                    let now = self.shared.clock.now();
                    if traces {
                        self.shared
                            .trace
                            .record_at(tx.id(), parblock_trace::Stage::Sequenced, now);
                    }
                    if let Some(full) = self.cutter.push(tx, now) {
                        self.emit_block(full);
                    }
                }
            }
            Some(Payload::CutMarker { first_pending }) => {
                self.marker_sent = None;
                if let Some(full) = self.cutter.cut_marker(first_pending) {
                    self.emit_block(full);
                }
            }
            None => { /* malformed payload from a faulty orderer: skip */ }
        }
    }

    /// Announces one cut block. The dependency graph arrives ready-made
    /// from the cutter — nothing here grows with the square of the block
    /// size, so consensus delivery of the next block is never stalled
    /// behind graph generation.
    fn emit_block(&mut self, cut: CutBlock) {
        let CutBlock { txs, graph } = cut;
        if self.traces_stages() {
            let now = self.shared.clock.now();
            for tx in &txs {
                self.shared
                    .trace
                    .record_at(tx.id(), parblock_trace::Stage::Cut, now);
            }
        }
        let block = Block::new(self.next_number, self.prev_hash, txs);
        let hash = hash_wire(&block);
        // Persist before announcing: a NEWBLOCK must never reference a
        // block this orderer could forget in a crash (DESIGN.md §9).
        if let Some(store) = &mut self.store {
            store
                .seal_block(&block, graph.as_ref(), hash)
                .expect("orderer block persist failed");
        }
        let bundle = Arc::new(BlockBundle { block, graph, hash });
        let signer = self.shared.spec.node_signer(self.endpoint.id());
        let sig = self.shared.keys.sign(signer, &hash.0);
        let msg = Msg::NewBlock {
            bundle,
            orderer: self.endpoint.id(),
            sig,
        };
        self.endpoint.multicast(self.dests.iter(), &msg);
        self.prev_hash = hash;
        self.next_number = self.next_number.next();
    }

    fn flush_batch_if_due(&mut self, now: Instant) {
        if self.batch.is_empty() {
            return;
        }
        let due = self.batch.len() >= self.shared.spec.batch_max
            || now.saturating_duration_since(self.last_flush) >= BATCH_INTERVAL;
        if due {
            let txs = std::mem::take(&mut self.batch);
            let payload = Payload::Batch(txs).encode();
            let actions = self.protocol.submit(payload);
            self.apply(actions);
            self.last_flush = now;
        }
    }

    /// §IV-B: the time-based cut condition is made deterministic by the
    /// leader ordering an explicit cut-block marker. The marker carries
    /// the oldest pending transaction's id so that, if a count/byte cut
    /// overtakes it in the ordered stream, every cutter recognises it as
    /// stale instead of prematurely cutting the next block.
    fn order_time_cut_if_due(&mut self, now: Instant) {
        if !self.protocol.is_leader() || !self.cutter.wants_time_cut(now) {
            return;
        }
        let Some(first_pending) = self.cutter.first_pending() else {
            return;
        };
        // `>=` so the resend fires exactly at the instant `next_due`
        // advertises (`sent + max_wait`) — the deterministic scheduler
        // advances the clock to precisely that deadline.
        let resend_due = self.marker_sent.is_none_or(|at| {
            now.saturating_duration_since(at) >= self.shared.spec.block_cut.max_wait
        });
        if resend_due {
            self.marker_sent = Some(now);
            let actions = self
                .protocol
                .submit(Payload::CutMarker { first_pending }.encode());
            self.apply(actions);
        }
    }
}

/// Spawns an orderer thread.
pub(crate) fn spawn_orderer(
    shared: Arc<Shared>,
    endpoint: Endpoint<Msg>,
    protocol: AnyConsensus,
    graph_mode: Option<DependencyMode>,
) -> std::thread::JoinHandle<()> {
    let name = format!("orderer-{}", endpoint.id());
    // lint:allow(thread-spawn) — node threads are the threaded runner's
    // execution model; the deterministic harness uses the sim scheduler
    std::thread::Builder::new()
        .name(name)
        .spawn(move || Orderer::new(shared, endpoint, protocol, graph_mode).run())
        .expect("spawn orderer")
}
