//! Consensus payloads: batches of transactions and the cut-block marker.
//!
//! Orderers batch client requests before submitting them to consensus
//! (§III-A: batching "improves the performance of the blockchain … and
//! amortizes the cost of cryptography"). The time-based block-cut
//! condition is made deterministic by ordering an explicit cut marker
//! through consensus — the paper's "the primary sends a cut-block message
//! in the consensus step" (§IV-B).

use parblock_types::wire::{Reader, Wire};
use parblock_types::{ClientId, Transaction, TxId};

const TAG_BATCH: u8 = 0;
const TAG_CUT: u8 = 1;

/// A consensus payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Payload {
    /// A batch of client transactions, in submission order.
    Batch(Vec<Transaction>),
    /// The leader's cut-block marker (time-based cut condition), tagged
    /// with the oldest pending transaction it was ordered for. Cutters
    /// ignore a marker whose tag no longer matches their oldest pending
    /// transaction — a count/byte cut got there first, and cutting
    /// whatever is now pending would prematurely flush a tiny fresh
    /// block.
    CutMarker {
        /// Id of the first pending transaction at the leader when the
        /// marker was ordered.
        first_pending: TxId,
    },
}

impl Payload {
    /// Encodes the payload for ordering.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Payload::Batch(txs) => {
                out.push(TAG_BATCH);
                (txs.len() as u64).encode(&mut out);
                for tx in txs {
                    tx.encode(&mut out);
                }
            }
            Payload::CutMarker { first_pending } => {
                out.push(TAG_CUT);
                first_pending.client.0.encode(&mut out);
                first_pending.client_ts.encode(&mut out);
            }
        }
        out
    }

    /// Decodes an ordered payload. Returns `None` on malformed bytes.
    #[must_use]
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        let mut reader = Reader::new(bytes);
        match reader.u8()? {
            TAG_BATCH => {
                let n = usize::try_from(reader.u64()?).ok()?;
                let mut txs = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    txs.push(Transaction::decode(&mut reader)?);
                }
                reader.is_exhausted().then_some(Payload::Batch(txs))
            }
            TAG_CUT => {
                let client = ClientId(reader.u32()?);
                let client_ts = reader.u64()?;
                reader.is_exhausted().then_some(Payload::CutMarker {
                    first_pending: TxId::new(client, client_ts),
                })
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use parblock_types::{AppId, ClientId, Key, RwSet, Transaction};

    use super::*;

    fn tx(ts: u64) -> Transaction {
        Transaction::new(
            AppId(0),
            ClientId(1),
            ts,
            RwSet::new([Key(1)], [Key(2)]),
            vec![1, 2, 3],
        )
    }

    #[test]
    fn batch_round_trip() {
        let batch = Payload::Batch(vec![tx(1), tx(2), tx(3)]);
        assert_eq!(Payload::decode(&batch.encode()), Some(batch));
    }

    #[test]
    fn empty_batch_round_trip() {
        let batch = Payload::Batch(vec![]);
        assert_eq!(Payload::decode(&batch.encode()), Some(batch));
    }

    #[test]
    fn cut_marker_round_trip() {
        let marker = Payload::CutMarker {
            first_pending: TxId::new(ClientId(7), 99),
        };
        assert_eq!(Payload::decode(&marker.encode()), Some(marker));
    }

    #[test]
    fn malformed_inputs_decode_to_none() {
        assert_eq!(Payload::decode(&[]), None);
        assert_eq!(Payload::decode(&[9]), None);
        let mut bytes = Payload::Batch(vec![tx(1)]).encode();
        bytes.truncate(bytes.len() - 1);
        assert_eq!(Payload::decode(&bytes), None);
        // Truncated and over-long cut markers.
        assert_eq!(Payload::decode(&[TAG_CUT, 0]), None);
        let mut marker = Payload::CutMarker {
            first_pending: TxId::new(ClientId(1), 2),
        }
        .encode();
        marker.push(0);
        assert_eq!(Payload::decode(&marker), None);
    }
}
