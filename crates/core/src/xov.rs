//! The execute-order-validate (XOV) baseline: Hyperledger Fabric's
//! paradigm (§II, Fig 1c).
//!
//! 1. The client sends its request to the endorsers of the application;
//!    each endorser *simulates* the transaction against its current state
//!    and returns the read versions and proposed writes.
//! 2. The client assembles an envelope from a sufficient number of
//!    matching endorsements and submits it to the ordering service.
//! 3. Orderers sequence envelopes into blocks (no dependency graph).
//! 4. Every peer validates each envelope in block order — stale read
//!    versions (MVCC check) abort the transaction — and applies the
//!    surviving writes.
//!
//! Contention therefore translates directly into validation aborts, which
//! is the effect Figs 5–6 measure.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use parblock_contracts::ExecOutcome;
use parblock_crypto::{sha256, Signature};
use parblock_ledger::{KvState, Ledger, Version};
use parblock_net::Endpoint;
use parblock_types::wire::{Reader, Wire};
use parblock_types::{
    BlockNumber, Hash32, Key, NodeId, SeqNo, Transaction, TxId, Value,
};
use parblock_workload::WorkloadGen;

use crate::msg::{BlockBundle, Envelope, Msg};
use crate::quorum::NewBlockQuorum;
use crate::shared::Shared;

const IDLE_TICK: Duration = Duration::from_micros(500);
const TICK: Duration = Duration::from_millis(1);

// ---- envelope wire format ---------------------------------------------

fn encode_value(value: &Value, out: &mut Vec<u8>) {
    match value {
        Value::Unit => out.push(0),
        Value::Int(i) => {
            out.push(1);
            i.encode(out);
        }
        Value::Text(s) => {
            out.push(2);
            s.as_str().encode(out);
        }
        Value::Bytes(b) => {
            out.push(3);
            b.encode(out);
        }
    }
}

fn decode_value(reader: &mut Reader<'_>) -> Option<Value> {
    match reader.u8()? {
        0 => Some(Value::Unit),
        1 => Some(Value::Int(reader.i64()?)),
        2 => Some(Value::Text(
            String::from_utf8(reader.bytes()?.to_vec()).ok()?,
        )),
        3 => Some(Value::Bytes(reader.bytes()?.to_vec())),
        _ => None,
    }
}

impl Envelope {
    /// Serializes the envelope into a transaction payload.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        (self.read_versions.len() as u64).encode(&mut out);
        for (key, version) in &self.read_versions {
            key.0.encode(&mut out);
            match version {
                None => out.push(0),
                Some(v) => {
                    out.push(1);
                    v.block.0.encode(&mut out);
                    v.seq.0.encode(&mut out);
                }
            }
        }
        (self.writes.len() as u64).encode(&mut out);
        for (key, value) in &self.writes {
            key.0.encode(&mut out);
            encode_value(value, &mut out);
        }
        out
    }

    /// Deserializes an envelope from a transaction payload.
    #[must_use]
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        let mut reader = Reader::new(bytes);
        let n_reads = usize::try_from(reader.u64()?).ok()?;
        let mut read_versions = Vec::with_capacity(n_reads.min(4096));
        for _ in 0..n_reads {
            let key = Key(reader.u64()?);
            let version = match reader.u8()? {
                0 => None,
                1 => Some(Version::new(
                    BlockNumber(reader.u64()?),
                    SeqNo(reader.u32()?),
                )),
                _ => return None,
            };
            read_versions.push((key, version));
        }
        let n_writes = usize::try_from(reader.u64()?).ok()?;
        let mut writes = Vec::with_capacity(n_writes.min(4096));
        for _ in 0..n_writes {
            let key = Key(reader.u64()?);
            writes.push((key, decode_value(&mut reader)?));
        }
        reader.is_exhausted().then_some(Envelope {
            read_versions,
            writes,
        })
    }

    /// Digest for endorsement signatures and matching.
    #[must_use]
    pub fn digest(&self) -> Hash32 {
        sha256(&self.encode())
    }
}

// ---- peer (endorser + validator) ----------------------------------------

/// An XOV peer: endorser for its applications, validator for all blocks.
pub(crate) struct XovPeer {
    shared: Arc<Shared>,
    endpoint: Endpoint<Msg>,
    state: KvState,
    ledger: Ledger,
    admission: NewBlockQuorum,
    ready: BTreeMap<u64, Arc<BlockBundle>>,
    is_observer: bool,
}

impl XovPeer {
    pub(crate) fn new(shared: Arc<Shared>, endpoint: Endpoint<Msg>) -> Self {
        let state = KvState::with_genesis(shared.genesis.iter().cloned());
        let is_observer = endpoint.id() == shared.spec.observer();
        let admission = NewBlockQuorum::new(shared.spec.newblock_quorum());
        XovPeer {
            shared,
            endpoint,
            state,
            ledger: Ledger::new(),
            admission,
            ready: BTreeMap::new(),
            is_observer,
        }
    }

    pub(crate) fn run(mut self) {
        while !self.shared.stop.load(Ordering::Relaxed) {
            if let Ok(envelope) = self.endpoint.recv_timeout(IDLE_TICK) {
                match envelope.msg {
                    Msg::EndorseReq { tx } => self.endorse(envelope.from, tx),
                    Msg::NewBlock {
                        bundle,
                        orderer,
                        sig,
                    } => self.on_new_block(envelope.from, bundle, orderer, &sig),
                    _ => {}
                }
            }
            self.validate_ready_blocks();
        }
    }

    /// Phase 1: simulate the transaction and return the endorsement.
    ///
    /// Endorsers execute requests one at a time (the paper: "XOV can
    /// execute 3 — the number of applications — transactions in
    /// parallel", i.e. one per endorser).
    fn endorse(&mut self, client_node: NodeId, tx: Transaction) {
        let me = self.endpoint.id();
        if !self.shared.registry.is_agent(me, tx.app()) {
            return;
        }
        let per_tx = self.shared.spec.costs.per_tx;
        if !per_tx.is_zero() {
            std::thread::sleep(per_tx);
        }
        let Ok(contract) = self.shared.registry.contract(tx.app()) else {
            return;
        };
        let writes = match contract.execute(&tx, &self.state) {
            ExecOutcome::Commit(writes) => writes,
            // Application-level rejection: endorse an empty write set; the
            // client will still order it and validation will commit the
            // no-op (Fabric endorsers would refuse; the difference does
            // not affect the measured paths because the workload's
            // transactions are balance-valid).
            ExecOutcome::Abort(_) => Vec::new(),
        };
        let read_versions = tx
            .rw_set()
            .reads()
            .iter()
            .map(|k| (*k, self.state.version_of(*k)))
            .collect();
        let envelope = Envelope {
            read_versions,
            writes,
        };
        let signer = self.shared.spec.node_signer(me);
        let sig = self.shared.keys.sign(signer, &envelope.digest().0);
        self.endpoint.send(
            client_node,
            Msg::Endorsement {
                tx: tx.id(),
                envelope,
                endorser: me,
                sig,
            },
        );
    }

    fn on_new_block(
        &mut self,
        from: NodeId,
        bundle: Arc<BlockBundle>,
        orderer: NodeId,
        sig: &Signature,
    ) {
        let next_needed = self.ledger.next_number().0;
        if let Some(validated) =
            self.admission
                .admit(&self.shared, from, bundle, orderer, sig, next_needed)
        {
            self.ready.insert(validated.block.number().0, validated);
        }
    }

    fn validate_ready_blocks(&mut self) {
        loop {
            let next = self.ledger.next_number().0;
            let Some(bundle) = self.ready.remove(&next) else {
                return;
            };
            self.validate_block(&bundle);
        }
    }

    /// Phase 3: the MVCC validation pass (§II: Fabric "validates a
    /// transaction … by checking the endorsement policy and read-write
    /// conflicts and then updates the ledger").
    fn validate_block(&mut self, bundle: &Arc<BlockBundle>) {
        let per_block = self.shared.spec.costs.per_block;
        if !per_block.is_zero() {
            std::thread::sleep(per_block);
        }
        for (seq, tx) in bundle.block.iter_seq() {
            let committed = Envelope::decode(tx.payload())
                .filter(|env| {
                    env.read_versions
                        .iter()
                        .all(|(key, version)| self.state.version_of(*key) == *version)
                })
                .map(|env| env.writes);
            match committed {
                Some(writes) => {
                    let version = Version::new(bundle.block.number(), seq);
                    self.state.apply(writes, version);
                    if self.is_observer {
                        self.shared.metrics.record_commit(tx.id());
                    }
                }
                None => {
                    if self.is_observer {
                        self.shared.metrics.record_abort(tx.id());
                    }
                }
            }
        }
        self.ledger
            .append(bundle.block.clone())
            .expect("blocks arrive in order with verified links");
        if self.is_observer {
            self.shared.metrics.record_block();
            if self.shared.spec.capture_state {
                self.shared.metrics.set_state_digest(self.state.digest());
            }
        }
    }
}

// ---- client driver -------------------------------------------------------

/// Pending endorsement collection at the client.
struct PendingTx {
    tx: Transaction,
    votes: Vec<(NodeId, Envelope)>,
}

/// Runs the XOV client driver: rate-paced endorsement requests, envelope
/// assembly, and submission to the orderers.
pub(crate) fn run_xov_driver(
    shared: &Arc<Shared>,
    endpoint: &Endpoint<Msg>,
    rate_tps: f64,
    duration: Duration,
) {
    let mut gen = WorkloadGen::new(shared.spec.workload_config());
    let mut buffer: std::collections::VecDeque<Transaction> = Default::default();
    let mut pending: HashMap<TxId, PendingTx> = HashMap::new();
    let entry = shared.spec.entry_orderer();
    let mut acc = 0.0f64;
    let start = shared.clock.now();
    let mut last_accrual = start;

    while !shared.stop.load(Ordering::Relaxed) {
        let in_submit_window = shared.clock.now().duration_since(start) < duration;
        if !in_submit_window && pending.is_empty() {
            break;
        }
        let tick_start = shared.clock.now();
        if in_submit_window {
            // Accrue budget by the time actually elapsed, not one tick
            // per iteration: an endorsement phase that overruns its tick
            // must not silently shrink the offered rate (pacing drift).
            acc += rate_tps * tick_start.duration_since(last_accrual).as_secs_f64();
            last_accrual = tick_start;
            let n = acc.floor() as usize;
            acc -= n as f64;
            for _ in 0..n {
                let tx = match buffer.pop_front() {
                    Some(tx) => tx,
                    None => {
                        buffer.extend(gen.window());
                        buffer.pop_front().expect("window is non-empty")
                    }
                };
                shared.metrics.record_submit(tx.id());
                // Phase 1: ask every agent of the application.
                for agent in shared.registry.agents(tx.app()) {
                    endpoint.send(agent, Msg::EndorseReq { tx: tx.clone() });
                }
                pending.insert(tx.id(), PendingTx { tx, votes: Vec::new() });
            }
        }
        // Phase 2: collect endorsements until the tick budget is spent.
        while shared.clock.now().duration_since(tick_start) < TICK {
            let wait = TICK.saturating_sub(shared.clock.now().duration_since(tick_start));
            let Ok(envelope) = endpoint.recv_timeout(wait.max(Duration::from_micros(50))) else {
                break;
            };
            let Msg::Endorsement {
                tx: tx_id,
                envelope: endorsement,
                endorser,
                sig,
            } = envelope.msg
            else {
                continue;
            };
            let signer = shared.spec.node_signer(endorser);
            if !shared.keys.verify(signer, &endorsement.digest().0, &sig) {
                continue;
            }
            let Some(entry_state) = pending.get_mut(&tx_id) else {
                continue;
            };
            if !shared.registry.is_agent(endorser, entry_state.tx.app()) {
                continue;
            }
            if entry_state.votes.iter().any(|(a, _)| *a == endorser) {
                continue;
            }
            entry_state.votes.push((endorser, endorsement));
            let required = shared
                .spec
                .commit_policy()
                .required(entry_state.tx.app());
            // Enough matching endorsements → assemble and order.
            let matched = entry_state
                .votes
                .iter()
                .map(|(_, candidate)| {
                    (
                        candidate,
                        entry_state
                            .votes
                            .iter()
                            .filter(|(_, e)| e == candidate)
                            .count(),
                    )
                })
                .find(|(_, count)| *count >= required)
                .map(|(e, _)| e.clone());
            if let Some(envelope) = matched {
                let pending_tx = pending.remove(&tx_id).expect("present");
                let tx = pending_tx.tx;
                let envelope_tx = Transaction::new(
                    tx.app(),
                    tx.client(),
                    tx.id().client_ts,
                    tx.rw_set().clone(),
                    envelope.encode(),
                );
                let signer = shared.spec.client_signer(envelope_tx.client());
                let sig = shared.keys.sign(signer, &envelope_tx.wire_bytes());
                endpoint.send(entry, Msg::Request { tx: envelope_tx, sig });
            }
        }
        // Give up on endorsements only when the run is over.
        if !in_submit_window
            && shared.clock.now().duration_since(start) > duration + Duration::from_secs(5)
        {
            break;
        }
    }
}

/// Spawns an XOV peer thread.
pub(crate) fn spawn_peer(
    shared: Arc<Shared>,
    endpoint: Endpoint<Msg>,
) -> std::thread::JoinHandle<()> {
    let name = format!("xov-peer-{}", endpoint.id());
    // lint:allow(thread-spawn) — node threads are the threaded runner's
    // execution model; the deterministic harness uses the sim scheduler
    std::thread::Builder::new()
        .name(name)
        .spawn(move || XovPeer::new(shared, endpoint).run())
        .expect("spawn xov peer")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_round_trip() {
        let envelope = Envelope {
            read_versions: vec![
                (Key(1), None),
                (Key(2), Some(Version::new(BlockNumber(3), SeqNo(4)))),
            ],
            writes: vec![
                (Key(1), Value::Int(-9)),
                (Key(5), Value::Unit),
                (Key(6), Value::Text("hi".into())),
                (Key(7), Value::Bytes(vec![1, 2])),
            ],
        };
        assert_eq!(Envelope::decode(&envelope.encode()), Some(envelope));
    }

    #[test]
    fn envelope_decode_rejects_garbage() {
        assert_eq!(Envelope::decode(&[1, 2, 3]), None);
        let mut bytes = Envelope {
            read_versions: vec![],
            writes: vec![(Key(1), Value::Int(1))],
        }
        .encode();
        bytes.push(0); // trailing garbage
        assert_eq!(Envelope::decode(&bytes), None);
    }

    #[test]
    fn digest_changes_with_content() {
        let a = Envelope {
            read_versions: vec![(Key(1), None)],
            writes: vec![],
        };
        let b = Envelope {
            read_versions: vec![(Key(2), None)],
            writes: vec![],
        };
        assert_ne!(a.digest(), b.digest());
    }
}
