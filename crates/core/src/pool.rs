//! The executor-side worker pool: parallel contract execution against
//! per-transaction read snapshots.
//!
//! The executor's main thread owns the blockchain state. When a
//! transaction becomes ready it snapshots the declared read set and hands
//! the work item to the pool; workers model the execution cost as a timed
//! wait (see DESIGN.md §3), run the contract, and report the result back
//! on a channel the main loop selects on.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, Sender};

use parblock_contracts::{ExecOutcome, SmartContract, StateReader};
use parblock_types::{BlockNumber, Key, SeqNo, Transaction, Value};

use crate::msg::ExecResult;

/// A read view over a snapshot taken by the executor's main thread.
///
/// Entries cover the transaction's **declared** read set; `Some(value)`
/// is a key present at the reader's version position, `None` a key with
/// no committed version there — so contracts can distinguish "key
/// absent" from "key holds zero" (via [`StateReader::try_read`]) and
/// abort observably on missing state.
///
/// A read outside the declared set is a scheduling-contract violation
/// (the dependency graph never ordered it): it is flagged, and the
/// worker pool deterministically aborts the execution instead of
/// silently serving a default value.
#[derive(Debug)]
pub(crate) struct SnapshotReader {
    entries: HashMap<Key, Option<Value>>,
    undeclared: AtomicBool,
}

impl SnapshotReader {
    pub(crate) fn new(entries: HashMap<Key, Option<Value>>) -> Self {
        SnapshotReader {
            entries,
            undeclared: AtomicBool::new(false),
        }
    }

    /// Whether the contract read a key outside the declared read set.
    pub(crate) fn undeclared_read(&self) -> bool {
        self.undeclared.load(Ordering::Relaxed)
    }
}

impl StateReader for SnapshotReader {
    fn read(&self, key: Key) -> Value {
        self.try_read(key).unwrap_or_default()
    }

    fn try_read(&self, key: Key) -> Option<Value> {
        match self.entries.get(&key) {
            Some(present) => present.clone(),
            None => {
                self.undeclared.store(true, Ordering::Relaxed);
                None
            }
        }
    }
}

/// One unit of work: execute `tx` against `snapshot`.
pub(crate) struct WorkItem {
    pub block: BlockNumber,
    pub seq: SeqNo,
    /// Which attempt at this position the snapshot belongs to: always 0
    /// under the pessimistic scheduler; the optimistic engine bumps it on
    /// every abort/re-execute so stale completions are dropped.
    pub incarnation: u32,
    pub tx: Transaction,
    pub snapshot: SnapshotReader,
    pub contract: Arc<dyn SmartContract>,
    pub cost: Duration,
}

/// A completed execution.
pub(crate) struct Completion {
    pub block: BlockNumber,
    pub seq: SeqNo,
    /// Echo of [`WorkItem::incarnation`].
    pub incarnation: u32,
    pub result: ExecResult,
}

/// Executes one work item against its snapshot (the cost model wait is
/// the caller's concern: threaded workers sleep it, the deterministic
/// queue charges it as a virtual completion delay instead).
fn execute_item(item: &WorkItem) -> Completion {
    let outcome = item.contract.execute(&item.tx, &item.snapshot);
    // A read outside the declared set executed against state the
    // scheduler never ordered: abort deterministically (every agent sees
    // the same declared set, so all agents agree).
    let result = if item.snapshot.undeclared_read() {
        ExecResult::Aborted(format!(
            "undeclared read outside the declared read set of {:?}",
            item.tx.id()
        ))
    } else {
        match outcome {
            ExecOutcome::Commit(writes) => ExecResult::Committed(writes),
            ExecOutcome::Abort(reason) => ExecResult::Aborted(reason),
        }
    };
    Completion {
        block: item.block,
        seq: item.seq,
        incarnation: item.incarnation,
        result,
    }
}

/// A fixed pool of execution workers.
pub(crate) struct ExecPool {
    work_tx: Option<Sender<WorkItem>>,
    done_rx: Receiver<Completion>,
    handles: Vec<JoinHandle<()>>,
}

impl ExecPool {
    pub(crate) fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let (work_tx, work_rx) = unbounded::<WorkItem>();
        let (done_tx, done_rx) = unbounded::<Completion>();
        let mut handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let work_rx = work_rx.clone();
            let done_tx = done_tx.clone();
            let handle = std::thread::Builder::new()
                .name(format!("exec-worker-{i}"))
                .spawn(move || {
                    while let Ok(item) = work_rx.recv() {
                        if !item.cost.is_zero() {
                            std::thread::sleep(item.cost);
                        }
                        let _ = done_tx.send(execute_item(&item));
                    }
                })
                .expect("spawn exec worker");
            handles.push(handle);
        }
        ExecPool {
            work_tx: Some(work_tx),
            done_rx,
            handles,
        }
    }

    pub(crate) fn dispatch(&self, item: WorkItem) {
        self.work_tx
            .as_ref()
            .expect("pool running")
            .send(item)
            .expect("workers alive");
    }

    /// Hands a whole ready set to the workers in one call: the channel
    /// handle is resolved once and items stream out back-to-back, so a
    /// 1000-transaction low-conflict block is one handoff, not 1000
    /// (DESIGN.md §15).
    pub(crate) fn dispatch_batch(&self, items: Vec<WorkItem>) {
        let tx = self.work_tx.as_ref().expect("pool running");
        for item in items {
            tx.send(item).expect("workers alive");
        }
    }

    pub(crate) fn completions(&self) -> &Receiver<Completion> {
        &self.done_rx
    }

    /// Stops the workers (drops the work channel and joins).
    pub(crate) fn shutdown(mut self) {
        self.work_tx = None;
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for ExecPool {
    fn drop(&mut self) {
        // Closing the channel lets workers exit; joining here would risk
        // blocking in a destructor (C-DTOR-BLOCK), so we only signal.
        self.work_tx = None;
    }
}

/// The deterministic execution backend (DESIGN.md §10): no worker
/// threads. A dispatched item is executed immediately (its snapshot is
/// already taken, so the result is position-correct regardless of when
/// it is *observed*), and the completion is held until virtual time
/// reaches `dispatch + cost` — the same cost model as the threaded pool,
/// minus the host scheduler. Completions surface in `(due, dispatch
/// order)`, a pure function of the schedule.
pub(crate) struct InlineQueue {
    pending: std::collections::BinaryHeap<std::cmp::Reverse<InlineEntry>>,
    next_ticket: u64,
}

struct InlineEntry {
    due: std::time::Instant,
    ticket: u64,
    completion: Completion,
}

impl PartialEq for InlineEntry {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.ticket == other.ticket
    }
}
impl Eq for InlineEntry {}
impl PartialOrd for InlineEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for InlineEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.due, self.ticket).cmp(&(other.due, other.ticket))
    }
}

impl InlineQueue {
    pub(crate) fn new() -> Self {
        InlineQueue {
            pending: std::collections::BinaryHeap::new(),
            next_ticket: 0,
        }
    }

    /// Executes `item` now; its completion becomes visible at
    /// `now + item.cost`.
    pub(crate) fn dispatch(&mut self, item: WorkItem, now: std::time::Instant) {
        let due = now + item.cost;
        let completion = execute_item(&item);
        let ticket = self.next_ticket;
        self.next_ticket += 1;
        self.pending.push(std::cmp::Reverse(InlineEntry {
            due,
            ticket,
            completion,
        }));
    }

    /// Dispatches a whole ready set at one instant: every completion is
    /// due at `now + cost`, with tickets in input order. One clock read
    /// covers the batch (per-item [`InlineQueue::dispatch`] reads agree
    /// anyway under the virtual clock, which only advances between
    /// settles — so batching is byte-identical, just cheaper).
    pub(crate) fn dispatch_batch(&mut self, items: Vec<WorkItem>, now: std::time::Instant) {
        for item in items {
            self.dispatch(item, now);
        }
    }

    /// The earliest pending completion's due time.
    pub(crate) fn next_due(&self) -> Option<std::time::Instant> {
        self.pending.peek().map(|std::cmp::Reverse(e)| e.due)
    }

    /// Removes and returns every completion due at or before `now`.
    pub(crate) fn take_due(&mut self, now: std::time::Instant) -> Vec<Completion> {
        let mut out = Vec::new();
        while let Some(std::cmp::Reverse(entry)) = self.pending.peek() {
            if entry.due > now {
                break;
            }
            let std::cmp::Reverse(entry) = self.pending.pop().expect("peeked");
            out.push(entry.completion);
        }
        out
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use parblock_contracts::{AccountingContract, AccountingOp};
    use parblock_types::{AppId, ClientId};

    use super::*;

    #[test]
    fn pool_executes_and_reports() {
        let pool = ExecPool::new(2);
        let contract = Arc::new(AccountingContract::new(AppId(0)));
        let op = AccountingOp::Transfer {
            from: Key(1),
            to: Key(2),
            amount: 5,
        };
        let tx = contract.transaction(ClientId(1), 0, &op);
        // `to` is declared but absent: transfers create the destination.
        let mut entries = HashMap::new();
        entries.insert(Key(1), Some(Value::Int(10)));
        entries.insert(Key(2), None);
        pool.dispatch(WorkItem {
            block: BlockNumber(1),
            seq: SeqNo(0),
            incarnation: 0,
            tx,
            snapshot: SnapshotReader::new(entries),
            contract,
            cost: Duration::from_micros(50),
        });
        let done = pool
            .completions()
            .recv_timeout(Duration::from_secs(1))
            .expect("completion");
        assert_eq!(done.seq, SeqNo(0));
        match done.result {
            ExecResult::Committed(writes) => {
                assert_eq!(writes, vec![(Key(1), Value::Int(5)), (Key(2), Value::Int(5))]);
            }
            ExecResult::Aborted(r) => panic!("unexpected abort: {r}"),
        }
        pool.shutdown();
    }

    #[test]
    fn snapshot_reader_distinguishes_absent_from_zero() {
        let reader = SnapshotReader::new(HashMap::from([
            (Key(1), Some(Value::Int(0))),
            (Key(2), None),
        ]));
        assert_eq!(reader.try_read(Key(1)), Some(Value::Int(0)), "stored zero");
        assert_eq!(reader.try_read(Key(2)), None, "declared but absent");
        assert_eq!(reader.read(Key(2)), Value::Unit);
        assert!(!reader.undeclared_read(), "declared reads never flag");
    }

    #[test]
    fn snapshot_reader_flags_undeclared_reads() {
        let reader = SnapshotReader::new(HashMap::from([(Key(1), Some(Value::Int(1)))]));
        assert_eq!(reader.read(Key(1)), Value::Int(1));
        assert!(!reader.undeclared_read());
        assert_eq!(reader.read(Key(9)), Value::Unit, "undeclared key");
        assert!(reader.undeclared_read());
    }

    #[test]
    fn inline_queue_orders_completions_by_due_then_dispatch() {
        use std::time::Instant;
        let contract: Arc<dyn SmartContract> = Arc::new(AccountingContract::new(AppId(0)));
        let maker = AccountingContract::new(AppId(0));
        let item = |seq: u32, cost_us: u64| {
            let op = AccountingOp::Transfer {
                from: Key(1),
                to: Key(2),
                amount: 1,
            };
            let tx = maker.transaction(ClientId(1), u64::from(seq), &op);
            WorkItem {
                block: BlockNumber(1),
                seq: SeqNo(seq),
                incarnation: 0,
                tx,
                snapshot: SnapshotReader::new(HashMap::from([
                    (Key(1), Some(Value::Int(10))),
                    (Key(2), None),
                ])),
                contract: Arc::clone(&contract),
                cost: Duration::from_micros(cost_us),
            }
        };
        let mut q = InlineQueue::new();
        let t0 = Instant::now();
        q.dispatch(item(0, 100), t0);
        q.dispatch(item(1, 50), t0);
        q.dispatch(item(2, 50), t0);
        assert_eq!(q.next_due(), Some(t0 + Duration::from_micros(50)));
        assert!(q.take_due(t0).is_empty(), "nothing due at dispatch time");
        let due = q.take_due(t0 + Duration::from_micros(60));
        assert_eq!(
            due.iter().map(|c| c.seq).collect::<Vec<_>>(),
            vec![SeqNo(1), SeqNo(2)],
            "equal due times resolve in dispatch order"
        );
        let rest = q.take_due(t0 + Duration::from_millis(1));
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].seq, SeqNo(0));
        assert!(q.is_empty());
    }

    #[test]
    fn aborts_propagate() {
        let pool = ExecPool::new(1);
        let contract = Arc::new(AccountingContract::new(AppId(0)));
        let op = AccountingOp::Transfer {
            from: Key(1),
            to: Key(2),
            amount: 5,
        };
        let tx = contract.transaction(ClientId(1), 0, &op);
        // Both accounts declared but absent: source account missing.
        pool.dispatch(WorkItem {
            block: BlockNumber(1),
            seq: SeqNo(3),
            incarnation: 0,
            tx,
            snapshot: SnapshotReader::new(HashMap::from([(Key(1), None), (Key(2), None)])),
            contract,
            cost: Duration::ZERO,
        });
        let done = pool
            .completions()
            .recv_timeout(Duration::from_secs(1))
            .expect("completion");
        match done.result {
            ExecResult::Aborted(reason) => {
                assert!(
                    reason.contains("missing"),
                    "missing-state abort must be observable, got: {reason}"
                );
            }
            ExecResult::Committed(_) => panic!("expected abort"),
        }
        pool.shutdown();
    }

    #[test]
    fn undeclared_reads_abort_instead_of_committing_on_defaults() {
        let pool = ExecPool::new(1);
        let contract = Arc::new(AccountingContract::new(AppId(0)));
        let op = AccountingOp::Transfer {
            from: Key(1),
            to: Key(2),
            amount: 5,
        };
        let tx = contract.transaction(ClientId(1), 0, &op);
        // Snapshot omits the declared keys entirely (mimics a scheduler
        // bug): previously this committed against silent defaults.
        pool.dispatch(WorkItem {
            block: BlockNumber(1),
            seq: SeqNo(0),
            incarnation: 0,
            tx,
            snapshot: SnapshotReader::new(HashMap::from([(Key(1), Some(Value::Int(100)))])),
            contract,
            cost: Duration::ZERO,
        });
        let done = pool
            .completions()
            .recv_timeout(Duration::from_secs(1))
            .expect("completion");
        match done.result {
            ExecResult::Aborted(reason) => {
                assert!(reason.contains("undeclared read"), "got: {reason}");
            }
            ExecResult::Committed(w) => panic!("must not commit on undeclared reads: {w:?}"),
        }
        pool.shutdown();
    }
}
