//! The executor-side worker pool: parallel contract execution against
//! per-transaction read snapshots.
//!
//! The executor's main thread owns the blockchain state. When a
//! transaction becomes ready it snapshots the declared read set and hands
//! the work item to the pool; workers model the execution cost as a timed
//! wait (see DESIGN.md §3), run the contract, and report the result back
//! on a channel the main loop selects on.

use std::collections::HashMap;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, Sender};

use parblock_contracts::{ExecOutcome, SmartContract, StateReader};
use parblock_types::{BlockNumber, Key, SeqNo, Transaction, Value};

use crate::msg::ExecResult;

/// A read view over a snapshot taken by the executor's main thread.
#[derive(Debug, Clone)]
pub(crate) struct SnapshotReader {
    values: HashMap<Key, Value>,
}

impl SnapshotReader {
    pub(crate) fn new(values: HashMap<Key, Value>) -> Self {
        SnapshotReader { values }
    }
}

impl StateReader for SnapshotReader {
    fn read(&self, key: Key) -> Value {
        self.values.get(&key).cloned().unwrap_or_default()
    }
}

/// One unit of work: execute `tx` against `snapshot`.
pub(crate) struct WorkItem {
    pub block: BlockNumber,
    pub seq: SeqNo,
    pub tx: Transaction,
    pub snapshot: SnapshotReader,
    pub contract: Arc<dyn SmartContract>,
    pub cost: Duration,
}

/// A completed execution.
pub(crate) struct Completion {
    pub block: BlockNumber,
    pub seq: SeqNo,
    pub result: ExecResult,
}

/// A fixed pool of execution workers.
pub(crate) struct ExecPool {
    work_tx: Option<Sender<WorkItem>>,
    done_rx: Receiver<Completion>,
    handles: Vec<JoinHandle<()>>,
}

impl ExecPool {
    pub(crate) fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let (work_tx, work_rx) = unbounded::<WorkItem>();
        let (done_tx, done_rx) = unbounded::<Completion>();
        let mut handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let work_rx = work_rx.clone();
            let done_tx = done_tx.clone();
            let handle = std::thread::Builder::new()
                .name(format!("exec-worker-{i}"))
                .spawn(move || {
                    while let Ok(item) = work_rx.recv() {
                        if !item.cost.is_zero() {
                            std::thread::sleep(item.cost);
                        }
                        let result = match item.contract.execute(&item.tx, &item.snapshot) {
                            ExecOutcome::Commit(writes) => ExecResult::Committed(writes),
                            ExecOutcome::Abort(reason) => ExecResult::Aborted(reason),
                        };
                        let _ = done_tx.send(Completion {
                            block: item.block,
                            seq: item.seq,
                            result,
                        });
                    }
                })
                .expect("spawn exec worker");
            handles.push(handle);
        }
        ExecPool {
            work_tx: Some(work_tx),
            done_rx,
            handles,
        }
    }

    pub(crate) fn dispatch(&self, item: WorkItem) {
        self.work_tx
            .as_ref()
            .expect("pool running")
            .send(item)
            .expect("workers alive");
    }

    pub(crate) fn completions(&self) -> &Receiver<Completion> {
        &self.done_rx
    }

    /// Stops the workers (drops the work channel and joins).
    pub(crate) fn shutdown(mut self) {
        self.work_tx = None;
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for ExecPool {
    fn drop(&mut self) {
        // Closing the channel lets workers exit; joining here would risk
        // blocking in a destructor (C-DTOR-BLOCK), so we only signal.
        self.work_tx = None;
    }
}

#[cfg(test)]
mod tests {
    use parblock_contracts::{AccountingContract, AccountingOp};
    use parblock_types::{AppId, ClientId};

    use super::*;

    #[test]
    fn pool_executes_and_reports() {
        let pool = ExecPool::new(2);
        let contract = Arc::new(AccountingContract::new(AppId(0)));
        let op = AccountingOp::Transfer {
            from: Key(1),
            to: Key(2),
            amount: 5,
        };
        let tx = contract.transaction(ClientId(1), 0, &op);
        let mut values = HashMap::new();
        values.insert(Key(1), Value::Int(10));
        pool.dispatch(WorkItem {
            block: BlockNumber(1),
            seq: SeqNo(0),
            tx,
            snapshot: SnapshotReader::new(values),
            contract,
            cost: Duration::from_micros(50),
        });
        let done = pool
            .completions()
            .recv_timeout(Duration::from_secs(1))
            .expect("completion");
        assert_eq!(done.seq, SeqNo(0));
        match done.result {
            ExecResult::Committed(writes) => {
                assert_eq!(writes, vec![(Key(1), Value::Int(5)), (Key(2), Value::Int(5))]);
            }
            ExecResult::Aborted(r) => panic!("unexpected abort: {r}"),
        }
        pool.shutdown();
    }

    #[test]
    fn snapshot_reader_defaults_to_unit() {
        let reader = SnapshotReader::new(HashMap::new());
        assert_eq!(reader.read(Key(9)), Value::Unit);
    }

    #[test]
    fn aborts_propagate() {
        let pool = ExecPool::new(1);
        let contract = Arc::new(AccountingContract::new(AppId(0)));
        let op = AccountingOp::Transfer {
            from: Key(1),
            to: Key(2),
            amount: 5,
        };
        let tx = contract.transaction(ClientId(1), 0, &op);
        // Empty snapshot: source account missing.
        pool.dispatch(WorkItem {
            block: BlockNumber(1),
            seq: SeqNo(3),
            tx,
            snapshot: SnapshotReader::new(HashMap::new()),
            contract,
            cost: Duration::ZERO,
        });
        let done = pool
            .completions()
            .recv_timeout(Duration::from_secs(1))
            .expect("completion");
        assert!(matches!(done.result, ExecResult::Aborted(_)));
        pool.shutdown();
    }
}
