//! Deterministic whole-cluster simulation (DESIGN.md §10).
//!
//! The threaded [`runner`](crate::runner) exercises whatever
//! interleavings the host scheduler happens to produce; this module runs
//! the *same* node implementations — the `orderer` and OXII `oxii`
//! executor state machines, the same network engine, the same stores —
//! under a seeded, virtual-time cooperative scheduler instead:
//!
//! * one thread, no pools: executions complete on the virtual clock
//!   (`dispatch + cost`), network messages deliver in `(due, seq)` order
//!   via [`SimNetwork::deliver_due`], and node steps happen in a fixed
//!   node order — the whole schedule is a pure function of
//!   `ClusterSpec::seed` and the [`FaultPlan`];
//! * faults — crashes (the node struct is *destroyed*, not just
//!   silenced), restarts (with on-disk recovery and optional WAL-tail
//!   tearing), partitions, link silences — fire at exact virtual
//!   instants, so a failing schedule replays bit-for-bit from its seed;
//! * the outcome exposes every replica's ledger position and state
//!   digest, every orderer's chain position, and the full observer
//!   chain, which is what the serializability / convergence /
//!   exactly-once / recovery oracles in `parblock_sim` consume.
//!
//! Only [`SystemKind::Oxii`](crate::SystemKind) clusters are simulated —
//! the paper's contribution is the OXII execution phase, and that is
//! where schedule diversity finds races.

use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parblock_consensus::ProtocolConfig;
use parblock_net::{NetworkBuilder, SimNetwork};
use parblock_types::{ArrivalProcess, Block, BlockNumber, Clock, Hash32, NodeId, Transaction, TxId};
use parblock_workload::{ArrivalGen, WorkloadGen};

use crate::cluster::{ClusterSpec, ConsensusKind, DurabilityMode, SystemKind};
use crate::hostcons::AnyConsensus;
use crate::metrics::RunReport;
use crate::msg::Msg;
use crate::orderer::Orderer;
use crate::oxii::Executor;
use crate::shared::Shared;
use crate::driver;

/// Scheduler safety net: the virtual clock never advances by more than
/// this between node housekeeping passes. Every known time-driven
/// deadline (message due times, execution completions, driver
/// submissions, fault instants, orderer timers / batch flushes /
/// cut-marker deadlines) is enumerated explicitly in the time-advance
/// step, so the grain only bounds the cost of anything unenumerated —
/// it is not the scheduler's precision.
const GRAIN: Duration = Duration::from_millis(1);

/// How long the cluster must stay fully quiet (nothing queued, nothing
/// executing, driver done) after the observer processed every
/// transaction before the run is declared drained.
const DRAIN_GRACE: Duration = Duration::from_millis(2);

/// One scheduled fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultEvent {
    /// Virtual offset from run start.
    pub at: Duration,
    /// What happens.
    pub kind: FaultKind,
}

/// The fault vocabulary of the simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultKind {
    /// Destroy the node: its in-memory state (pipeline, votes, consensus
    /// log, mailbox) is dropped and all its traffic is cut. An on-disk
    /// node keeps its store files, an in-memory node loses everything.
    Crash {
        /// The victim.
        node: NodeId,
    },
    /// Reconnect and reconstruct a crashed node. On-disk nodes run the
    /// full recovery path (checkpoint + WAL replay + chain verification);
    /// in-memory nodes restart from genesis.
    Restart {
        /// The node to bring back.
        node: NodeId,
        /// Bytes to tear off the tail of the node's write-ahead log
        /// before recovery, simulating page-cache writes lost at the
        /// crash (fsync tearing). Zero = clean media; a no-op for
        /// in-memory durability.
        tear_wal_bytes: u64,
    },
    /// Cut every link between the two groups (both directions).
    Partition {
        /// Nodes marked as the faulted side (the minority, by
        /// convention of the plan generators).
        left: Vec<NodeId>,
        /// The other side.
        right: Vec<NodeId>,
    },
    /// Heal exactly the partition installed by the matching
    /// [`FaultKind::Partition`].
    HealPartition {
        /// Left group of the partition being healed.
        left: Vec<NodeId>,
        /// Right group of the partition being healed.
        right: Vec<NodeId>,
    },
    /// Drop every message `from → to` (deterministic link loss).
    SilenceLink {
        /// Sending node (marked faulted).
        from: NodeId,
        /// Receiving node.
        to: NodeId,
    },
    /// Undo the matching [`FaultKind::SilenceLink`].
    HealLink {
        /// Sending node of the silenced link.
        from: NodeId,
        /// Receiving node of the silenced link.
        to: NodeId,
    },
}

/// A schedule of faults, applied at exact virtual instants.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// A fault-free plan.
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// Builds a plan from events (sorted by time; ties keep insertion
    /// order, which keeps plans deterministic).
    #[must_use]
    pub fn new(mut events: Vec<FaultEvent>) -> Self {
        events.sort_by_key(|e| e.at);
        FaultPlan { events }
    }

    /// The scheduled events, in time order.
    #[must_use]
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Whether the plan injects anything.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// One deterministic run specification.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// The cluster. Must be [`SystemKind::Oxii`].
    pub spec: ClusterSpec,
    /// Exactly this many transactions of the seeded workload stream are
    /// submitted.
    pub count: usize,
    /// Open-loop submission rate in virtual transactions per second.
    pub rate_tps: f64,
    /// Shape of the virtual arrival process. [`ArrivalProcess::Uniform`]
    /// reproduces the simulator's historical closed-form schedule
    /// bit-for-bit, so pinned exploration seeds replay unchanged.
    pub arrival: ArrivalProcess,
    /// Measurement window as `(begin, end)` offsets from run start on
    /// *intended* arrival times (see
    /// [`crate::Metrics::set_measurement_window`]); `None` measures
    /// everything (the historical behaviour).
    pub measure: Option<(Duration, Duration)>,
    /// Hard cap on virtual time; a run that has not drained by then is
    /// reported with `completed = false` instead of hanging.
    pub virtual_deadline: Duration,
    /// The fault schedule.
    pub plan: FaultPlan,
}

impl SimConfig {
    /// A config with the default deadline (30 virtual seconds).
    #[must_use]
    pub fn new(spec: ClusterSpec, count: usize, rate_tps: f64) -> Self {
        SimConfig {
            spec,
            count,
            rate_tps,
            arrival: ArrivalProcess::Uniform,
            measure: None,
            virtual_deadline: Duration::from_secs(30),
            plan: FaultPlan::none(),
        }
    }
}

/// Final position of one executor/non-executor replica.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaOutcome {
    /// The node.
    pub node: NodeId,
    /// Whether any fault ever touched this node.
    pub faulted: bool,
    /// Sealed chain height (number of the last sealed block).
    pub height: u64,
    /// Ledger head hash at that height.
    pub head: Hash32,
    /// State digest at the commit watermark (in-flight later-block
    /// writes excluded).
    pub state_digest: Hash32,
}

/// Final chain position of one orderer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrdererOutcome {
    /// The node.
    pub node: NodeId,
    /// Whether any fault ever touched this node.
    pub faulted: bool,
    /// The next block number it would emit.
    pub next_number: BlockNumber,
    /// Hash of the last block it emitted (genesis hash if none).
    pub head: Hash32,
}

/// Everything a deterministic run produces, oracle-ready.
#[derive(Debug, Clone)]
pub struct SimOutcome {
    /// The usual measurement report (deterministic under the virtual
    /// clock — compare [`RunReport::digest`] across reruns).
    pub report: RunReport,
    /// Whether the observer processed every submitted transaction before
    /// the virtual deadline.
    pub completed: bool,
    /// Virtual time consumed.
    pub virtual_elapsed: Duration,
    /// Scheduler events handled (messages + completions), a cheap
    /// schedule fingerprint.
    pub events: u64,
    /// Every submitted transaction id, in submission order.
    pub submitted: Vec<TxId>,
    /// The observer's sealed chain (the reference history the
    /// serializability oracle replays).
    pub observer_chain: Vec<Block>,
    /// Per-replica final positions (replicas still crashed at the end of
    /// the run are absent — they have no state to compare).
    pub replicas: Vec<ReplicaOutcome>,
    /// Per-orderer final chain positions (crashed orderers absent).
    pub orderers: Vec<OrdererOutcome>,
}

fn build_protocol(spec: &ClusterSpec, id: NodeId) -> AnyConsensus {
    let cfg = ProtocolConfig::new(id, spec.orderer_ids());
    match spec.consensus {
        ConsensusKind::Sequencer => AnyConsensus::sequencer(cfg, spec.consensus_timeout),
        ConsensusKind::Pbft => AnyConsensus::pbft(cfg, spec.consensus_timeout),
    }
}

/// The single-threaded cluster: every node is a plain struct stepped in
/// a fixed order; `None` marks a currently-crashed node.
struct SimCluster {
    shared: Arc<Shared>,
    net: SimNetwork<Msg>,
    orderer_ids: Vec<NodeId>,
    peer_ids: Vec<NodeId>,
    orderers: Vec<Option<Orderer>>,
    peers: Vec<Option<Executor>>,
    ever_faulted: BTreeSet<NodeId>,
    events: u64,
}

impl SimCluster {
    fn new(spec: &ClusterSpec, clock: &Clock) -> Self {
        assert_eq!(
            spec.system,
            SystemKind::Oxii,
            "the deterministic simulator runs OXII clusters"
        );
        let shared = Shared::with_clock(spec.clone(), clock.clone());
        let net: SimNetwork<Msg> = NetworkBuilder::new()
            .topology(spec.build_topology())
            .seed(spec.seed)
            .clock(clock.clone())
            .manual_delivery()
            .legacy_mailboxes(spec.legacy_mailboxes)
            .build();
        let orderer_ids = spec.orderer_ids();
        let peer_ids = spec.peer_ids();
        let orderers = orderer_ids
            .iter()
            .map(|&id| {
                Some(Orderer::new(
                    Arc::clone(&shared),
                    net.endpoint(id),
                    build_protocol(spec, id),
                    Some(spec.depgraph_mode),
                ))
            })
            .collect();
        let peers = peer_ids
            .iter()
            .map(|&id| Some(Executor::new_stepped(Arc::clone(&shared), net.endpoint(id))))
            .collect();
        SimCluster {
            shared,
            net,
            orderer_ids,
            peer_ids,
            orderers,
            peers,
            ever_faulted: BTreeSet::new(),
            events: 0,
        }
    }

    fn crash(&mut self, node: NodeId) {
        self.ever_faulted.insert(node);
        self.net.faults().crash(node);
        if let Some(i) = self.orderer_ids.iter().position(|&id| id == node) {
            self.orderers[i] = None;
        }
        if let Some(i) = self.peer_ids.iter().position(|&id| id == node) {
            self.peers[i] = None;
        }
    }

    fn restart(&mut self, node: NodeId, tear_wal_bytes: u64) {
        if tear_wal_bytes > 0 {
            if let DurabilityMode::OnDisk { data_dir, .. } = &self.shared.spec.durability {
                let wal_dir = parblock_store::Store::node_dir(data_dir, node.0).join("wal");
                parblock_store::tear_wal_tail(&wal_dir, tear_wal_bytes)
                    .expect("tearing the WAL tail is a file truncation");
            }
        }
        self.net.faults().restart(node);
        if let Some(i) = self.orderer_ids.iter().position(|&id| id == node) {
            self.orderers[i] = Some(Orderer::new(
                Arc::clone(&self.shared),
                self.net.endpoint(node),
                build_protocol(&self.shared.spec, node),
                Some(self.shared.spec.depgraph_mode),
            ));
        }
        if let Some(i) = self.peer_ids.iter().position(|&id| id == node) {
            self.peers[i] = Some(Executor::new_stepped(
                Arc::clone(&self.shared),
                self.net.endpoint(node),
            ));
        }
    }

    fn apply_fault(&mut self, kind: &FaultKind) {
        let faults = self.net.faults();
        match kind {
            FaultKind::Crash { node } => self.crash(*node),
            FaultKind::Restart {
                node,
                tear_wal_bytes,
            } => self.restart(*node, *tear_wal_bytes),
            FaultKind::Partition { left, right } => {
                self.ever_faulted.extend(left.iter().copied());
                faults.partition_groups(left, right);
            }
            FaultKind::HealPartition { left, right } => {
                faults.unpartition_groups(left, right);
            }
            FaultKind::SilenceLink { from, to } => {
                self.ever_faulted.insert(*from);
                faults.set_drop(*from, *to, 1.0);
            }
            FaultKind::HealLink { from, to } => faults.clear_drop(*from, *to),
        }
    }

    /// Steps every live node until no node makes progress at the current
    /// instant (zero-latency sends are chased to a fixpoint).
    fn settle(&mut self, now: Instant) {
        loop {
            let mut work = 0;
            for orderer in self.orderers.iter_mut().flatten() {
                work += orderer.step();
            }
            for peer in self.peers.iter_mut().flatten() {
                work += peer.step();
            }
            work += self.net.deliver_due(now);
            self.events += work as u64;
            if work == 0 {
                return;
            }
        }
    }

    /// Earliest pending virtual completion across live executors.
    fn next_completion_due(&self) -> Option<Instant> {
        self.peers
            .iter()
            .flatten()
            .filter_map(Executor::next_completion_due)
            .min()
    }

    fn quiet(&self) -> bool {
        self.net.queued() == 0
            && self
                .peers
                .iter()
                .flatten()
                .all(|p| !p.has_pending_work())
    }
}

/// Runs one deterministic cluster simulation.
///
/// The schedule — message delivery order, execution completion order,
/// block boundaries, fault instants — is a pure function of
/// `config.spec.seed` and `config.plan`: re-running the same config
/// produces a byte-identical [`SimOutcome`] (compare
/// [`RunReport::digest`]).
///
/// # Panics
///
/// Panics on non-OXII specs, and on internal invariant violations (the
/// same ones the threaded runner would surface as node panics).
#[must_use]
pub fn run_sim(config: &SimConfig) -> SimOutcome {
    let clock = Clock::simulated();
    let mut cluster = SimCluster::new(&config.spec, &clock);
    let client = cluster.net.endpoint(config.spec.client_node());
    let entry = config.spec.entry_orderer();

    // The deterministic workload prefix this run submits, with its
    // intended virtual arrival schedule. For the Uniform process the
    // offsets are bit-identical to the historical closed-form
    // `(1e9 / rate) as u64 * i`, so pinned seeds replay unchanged.
    let txs: Vec<Transaction> =
        WorkloadGen::new(config.spec.workload_config()).take_txs(config.count);
    let submitted: Vec<TxId> = txs.iter().map(Transaction::id).collect();
    let offsets: Vec<Duration> = if config.rate_tps > 0.0 {
        let mut arrivals = ArrivalGen::new(config.arrival, config.rate_tps, config.spec.seed);
        (0..config.count).map(|_| arrivals.next_offset()).collect()
    } else {
        vec![Duration::ZERO; config.count]
    };

    let start = clock.now();
    let deadline = start + config.virtual_deadline;
    let expected = config.count as u64;
    let submit_at = |i: usize| start + offsets[i];
    if let Some((begin, end)) = config.measure {
        cluster
            .shared
            .metrics
            .set_measurement_window(start + begin, start + end);
    }

    let mut next_submit = 0usize;
    let mut next_fault = 0usize;
    let mut drained_since: Option<Instant> = None;
    let completed = loop {
        let now = clock.now();

        // 1. Faults due at this instant.
        while next_fault < config.plan.events().len()
            && start + config.plan.events()[next_fault].at <= now
        {
            let kind = config.plan.events()[next_fault].kind.clone();
            cluster.apply_fault(&kind);
            next_fault += 1;
        }

        // 2. Driver submissions due, stamped at their intended arrival
        // (== now except when several events share an instant).
        while next_submit < txs.len() && submit_at(next_submit) <= now {
            driver::submit_at(
                &cluster.shared,
                &client,
                entry,
                txs[next_submit].clone(),
                submit_at(next_submit),
            );
            next_submit += 1;
        }

        // 3. Deliver due traffic and step the cluster to a fixpoint
        // (settle's loop starts with a delivery pass of its own, and
        // counts everything it handles into the event fingerprint).
        cluster.settle(now);

        // 4. Termination.
        let processed = cluster.shared.metrics.processed();
        if processed >= expected && next_submit == txs.len() && cluster.quiet() {
            match drained_since {
                // Quiet must *hold* for the grace window: a block cut
                // marker or retransmission could still be one grain away.
                Some(since) if now.duration_since(since) >= DRAIN_GRACE => break true,
                Some(_) => {}
                None => drained_since = Some(now),
            }
        } else {
            drained_since = None;
        }
        if now >= deadline {
            break processed >= expected;
        }

        // 5. Advance virtual time to the earliest scheduled event —
        // an arbitrarily long jump when the cluster is idle until a
        // deadline (e.g. a 5 s cut-marker wait costs one iteration, not
        // a polling crawl). The grain is only the fallback when nothing
        // at all is scheduled (the drain-grace countdown).
        let mut next: Option<Instant> = None;
        // Deadlines at or before `now` were already serviced by this
        // iteration's settle pass (or are gated on a *different* future
        // event, like a cut deadline whose marker is already in flight);
        // only strictly-future instants may drive the advance.
        let merge = |next: &mut Option<Instant>, due: Instant| {
            if due > now {
                *next = Some(next.map_or(due, |n| n.min(due)));
            }
        };
        if let Some(due) = cluster.net.next_due() {
            merge(&mut next, due);
        }
        if let Some(due) = cluster.next_completion_due() {
            merge(&mut next, due);
        }
        for orderer in cluster.orderers.iter().flatten() {
            if let Some(due) = orderer.next_due() {
                merge(&mut next, due);
            }
        }
        if next_submit < txs.len() {
            merge(&mut next, submit_at(next_submit));
        }
        if next_fault < config.plan.events().len() {
            merge(&mut next, start + config.plan.events()[next_fault].at);
        }
        let next = next.unwrap_or(now + GRAIN);
        clock.advance_to(next.min(deadline).max(now + Duration::from_nanos(1)));
    };
    let virtual_elapsed = clock.now().duration_since(start);

    // Finalize observability, then collect oracle inputs.
    for peer in cluster.peers.iter_mut().flatten() {
        peer.finalize();
    }
    let observer = config.spec.observer();
    let observer_chain: Vec<Block> = cluster
        .peers
        .iter()
        .flatten()
        .find(|p| p.node_id() == observer)
        .map(|p| p.ledger().iter().cloned().collect())
        .unwrap_or_default();
    let replicas: Vec<ReplicaOutcome> = cluster
        .peers
        .iter()
        .flatten()
        .map(|p| ReplicaOutcome {
            node: p.node_id(),
            faulted: cluster.ever_faulted.contains(&p.node_id()),
            height: p.watermark().0,
            head: p.ledger().head_hash(),
            state_digest: p.state_digest_at_watermark(),
        })
        .collect();
    let orderers: Vec<OrdererOutcome> = cluster
        .orderer_ids
        .iter()
        .zip(&cluster.orderers)
        .filter_map(|(&node, slot)| {
            slot.as_ref().map(|orderer| {
                let (next_number, head) = orderer.chain_position();
                OrdererOutcome {
                    node,
                    faulted: cluster.ever_faulted.contains(&node),
                    next_number,
                    head,
                }
            })
        })
        .collect();

    let mut report = cluster.shared.metrics.report();
    report.messages = cluster.net.stats().sent();
    report.trace = cluster.shared.trace.snapshot();
    let events = cluster.events;
    cluster.net.shutdown();
    SimOutcome {
        report,
        completed,
        virtual_elapsed,
        events,
        submitted,
        observer_chain,
        replicas,
        orderers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterSpec;

    fn sim_spec(seed: u64) -> ClusterSpec {
        let mut spec = ClusterSpec::new(SystemKind::Oxii);
        spec.block_cut = parblock_types::BlockCutConfig {
            max_txns: 25,
            max_bytes: usize::MAX,
            max_wait: Duration::from_secs(5),
        };
        spec.costs = parblock_types::ExecutionCosts::per_tx(Duration::from_micros(50));
        spec.capture_state = true;
        spec.durability = DurabilityMode::InMemory;
        spec.seed = seed;
        spec
    }

    #[test]
    fn a_simulated_cluster_commits_everything_in_virtual_time() {
        let config = SimConfig::new(sim_spec(7), 100, 2_000.0);
        let real_start = std::time::Instant::now();
        let outcome = run_sim(&config);
        assert!(outcome.completed, "{:?}", outcome.report);
        assert_eq!(outcome.report.committed, 100);
        assert_eq!(outcome.report.aborted, 0);
        assert_eq!(outcome.report.blocks, 4);
        assert_eq!(outcome.observer_chain.len(), 4);
        // Virtual time covers the 50 ms submission window; real time must
        // not (the cost model waits are virtual, not slept).
        assert!(outcome.virtual_elapsed >= Duration::from_millis(49));
        assert!(
            real_start.elapsed() < outcome.virtual_elapsed + Duration::from_secs(5),
            "simulation wall time should not track virtual waits"
        );
    }

    #[test]
    fn same_seed_reruns_are_bit_identical() {
        let config = SimConfig::new(sim_spec(11), 75, 1_500.0);
        let a = run_sim(&config);
        let b = run_sim(&config);
        assert_eq!(a.report, b.report);
        assert_eq!(a.report.digest(), b.report.digest());
        assert_eq!(a.events, b.events, "schedules diverged");
        assert_eq!(a.observer_chain, b.observer_chain);
    }

    #[test]
    fn different_seeds_explore_different_schedules() {
        let a = run_sim(&SimConfig::new(sim_spec(1), 50, 1_500.0));
        let b = run_sim(&SimConfig::new(sim_spec(2), 50, 1_500.0));
        // Different workloads → different histories (heads differ even
        // though both commit 50).
        assert_ne!(a.report.ledger_head, b.report.ledger_head);
    }

    #[test]
    fn all_replicas_converge_without_faults() {
        let outcome = run_sim(&SimConfig::new(sim_spec(3), 100, 2_000.0));
        assert!(outcome.completed);
        let head = outcome.replicas[0].head;
        let digest = outcome.replicas[0].state_digest;
        for replica in &outcome.replicas {
            assert!(!replica.faulted);
            assert_eq!(replica.head, head, "replica {:?}", replica.node);
            assert_eq!(replica.state_digest, digest);
        }
        let orderer_head = outcome.orderers[0].head;
        for orderer in &outcome.orderers {
            assert_eq!(orderer.head, orderer_head);
        }
    }
}
