//! The experiment runner: builds a cluster per the spec, applies load,
//! and reports throughput/latency.
//!
//! # Measurement methodology
//!
//! Load is open-loop: the driver submits at a fixed rate regardless of
//! backpressure, like the paper's "increasing number of clients until
//! the end-to-end throughput is saturated". Throughput is committed
//! transactions over the first-submit→last-commit window; latency is
//! submit-at-client → commit-at-observer (the first executor), matching
//! §V-C's "when the executors … receive enough number of matching
//! results, the transaction is counted as committed". Points past
//! saturation show queueing-inflated latency — that is the saturation
//! knee the figures look for, not an artifact.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parblock_consensus::ProtocolConfig;
use parblock_net::{Faults, NetworkBuilder, SimNetwork};
use parblock_types::ArrivalProcess;

use crate::cluster::{ClusterSpec, ConsensusKind, SystemKind};
use crate::hostcons::AnyConsensus;
use crate::metrics::RunReport;
use crate::msg::Msg;
use crate::shared::Shared;
use crate::{driver, orderer, ox, oxii, xov};

/// Offered load for one run.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadSpec {
    /// Open-loop submission rate (transactions per second).
    pub rate_tps: f64,
    /// How long the driver submits.
    pub duration: Duration,
    /// Grace period after submission stops, letting in-flight
    /// transactions commit before measurement ends.
    pub drain: Duration,
    /// Shape of the arrival process (uniform, Poisson, bursty). The
    /// schedule is seeded from the cluster seed, so two runs of the same
    /// spec offer identical arrival instants.
    pub arrival: ArrivalProcess,
    /// Initial span of `duration` whose arrivals are excluded from the
    /// measured rate and the latency percentiles (pipelines filling,
    /// caches cold). Zero measures from the first arrival.
    pub warmup: Duration,
    /// Final span of `duration` excluded from measurement (transactions
    /// arriving this late race the end of the run). Zero measures to the
    /// last arrival.
    pub cooldown: Duration,
    /// Admission-control cap: arrivals finding this many transactions
    /// already in flight are shed (counted in
    /// [`RunReport::admission_shed`], never submitted). `None` submits
    /// unconditionally — the honest open-loop default.
    pub max_outstanding: Option<u64>,
}

impl Default for LoadSpec {
    fn default() -> Self {
        LoadSpec {
            rate_tps: 1_000.0,
            duration: Duration::from_secs(1),
            drain: Duration::from_millis(800),
            arrival: ArrivalProcess::Uniform,
            warmup: Duration::ZERO,
            cooldown: Duration::ZERO,
            max_outstanding: None,
        }
    }
}

/// Runs one experiment: spins up the cluster described by `spec`,
/// applies `load`, and returns the measured report.
///
/// # Panics
///
/// Panics on inconsistent specs (e.g. PBFT with fewer than 4 orderers) —
/// these are configuration bugs, surfaced early.
#[must_use]
pub fn run(spec: &ClusterSpec, load: &LoadSpec) -> RunReport {
    let shared = Shared::new(spec.clone());
    let net: SimNetwork<Msg> = NetworkBuilder::new()
        .topology(spec.build_topology())
        .seed(spec.seed)
        .legacy_mailboxes(spec.legacy_mailboxes)
        .build();

    let mut handles: Vec<JoinHandle<()>> = Vec::new();

    // Orderers.
    let orderer_ids = spec.orderer_ids();
    for &id in &orderer_ids {
        let protocol_cfg = ProtocolConfig::new(id, orderer_ids.clone());
        let protocol = match spec.consensus {
            ConsensusKind::Sequencer => {
                AnyConsensus::sequencer(protocol_cfg, spec.consensus_timeout)
            }
            ConsensusKind::Pbft => AnyConsensus::pbft(protocol_cfg, spec.consensus_timeout),
        };
        let graph_mode = match spec.system {
            SystemKind::Oxii => Some(spec.depgraph_mode),
            SystemKind::Ox | SystemKind::Xov => None,
        };
        handles.push(orderer::spawn_orderer(
            Arc::clone(&shared),
            net.endpoint(id),
            protocol,
            graph_mode,
        ));
    }

    // Peers (executors + non-executors).
    for &id in &spec.peer_ids() {
        let endpoint = net.endpoint(id);
        let handle = match spec.system {
            SystemKind::Oxii => oxii::spawn_executor(Arc::clone(&shared), endpoint),
            SystemKind::Ox => ox::spawn_peer(Arc::clone(&shared), endpoint),
            SystemKind::Xov => xov::spawn_peer(Arc::clone(&shared), endpoint),
        };
        handles.push(handle);
    }

    // Client driver (runs on the caller thread). The measurement window
    // is anchored to the driver's schedule origin so warm-up/cool-down
    // spans cut on *intended* arrival times.
    let client_endpoint = net.endpoint(spec.client_node());
    let drive_start = shared.clock.now();
    if (!load.warmup.is_zero() || !load.cooldown.is_zero())
        && load.warmup + load.cooldown < load.duration
    {
        shared.metrics.set_measurement_window(
            drive_start + load.warmup,
            drive_start + (load.duration - load.cooldown),
        );
    }
    match spec.system {
        SystemKind::Oxii | SystemKind::Ox => {
            driver::run_driver(&shared, &client_endpoint, load, drive_start);
        }
        SystemKind::Xov => {
            xov::run_xov_driver(&shared, &client_endpoint, load.rate_tps, load.duration);
        }
    }

    // Let in-flight work drain, then stop everything.
    std::thread::sleep(load.drain);
    shared.stop.store(true, Ordering::Relaxed);
    for handle in handles {
        let _ = handle.join();
    }
    let messages = net.stats().sent();
    net.shutdown();
    let mut report = shared.metrics.report();
    report.messages = messages;
    report.trace = shared.trace.snapshot();
    report
}

/// Runs a *fixed-count* experiment: submits exactly `count` transactions
/// at `rate_tps`, then waits (up to `timeout`) until the observer has
/// processed all of them. Returns the report.
///
/// Used by correctness tests that compare final states across systems —
/// the committed transaction *set* is identical run-to-run, so state
/// digests are comparable.
///
/// # Panics
///
/// Panics for [`SystemKind::Xov`]: endorsement-phase timing makes an
/// exact count guarantee meaningless there, and the state comparison is
/// invalid anyway because XOV aborts conflicting transactions.
#[must_use]
pub fn run_fixed(spec: &ClusterSpec, count: usize, rate_tps: f64, timeout: Duration) -> RunReport {
    run_fixed_impl(spec, 0, count, rate_tps, timeout, None)
}

/// Like [`run_fixed`], but resumes a recovered cluster: transactions
/// `[0, skip)` of the deterministic workload stream are generated and
/// *discarded* (they are already in the chain the nodes recovered from
/// disk), transactions `[skip, count)` are submitted, and the runner
/// waits until `count - skip` of them are processed at the observer.
///
/// `skip` must equal `watermark × block_size` of the reconciled stores
/// (see `parblock_store::reconcile_cluster`), and the spec must use
/// count-only block cuts so block boundaries are deterministic — the
/// same requirement the fault suite's byte-equality assertions rely on.
///
/// # Panics
///
/// Panics for [`SystemKind::Xov`], like [`run_fixed`].
#[must_use]
pub fn run_fixed_from(
    spec: &ClusterSpec,
    skip: usize,
    count: usize,
    rate_tps: f64,
    timeout: Duration,
) -> RunReport {
    run_fixed_impl(spec, skip, count, rate_tps, timeout, None)
}

/// Like [`run_fixed`], but hands the network's live [`Faults`] plan to
/// `fault_script` on a separate thread once the cluster is up, so a test
/// can crash/restart nodes or drop links **mid-run**. The script must
/// return (it is joined before the report is taken).
///
/// # Panics
///
/// Panics for [`SystemKind::Xov`], like [`run_fixed`].
#[must_use]
pub fn run_fixed_with_faults(
    spec: &ClusterSpec,
    count: usize,
    rate_tps: f64,
    timeout: Duration,
    fault_script: impl FnOnce(Faults) + Send + 'static,
) -> RunReport {
    run_fixed_impl(spec, 0, count, rate_tps, timeout, Some(Box::new(fault_script)))
}

fn run_fixed_impl(
    spec: &ClusterSpec,
    skip: usize,
    count: usize,
    rate_tps: f64,
    timeout: Duration,
    fault_script: Option<Box<dyn FnOnce(Faults) + Send>>,
) -> RunReport {
    assert!(
        spec.system != SystemKind::Xov,
        "run_fixed supports OX and OXII only"
    );
    let shared = Shared::new(spec.clone());
    let net: SimNetwork<Msg> = NetworkBuilder::new()
        .topology(spec.build_topology())
        .seed(spec.seed)
        .legacy_mailboxes(spec.legacy_mailboxes)
        .build();

    let mut handles: Vec<JoinHandle<()>> = Vec::new();
    let orderer_ids = spec.orderer_ids();
    for &id in &orderer_ids {
        let protocol_cfg = ProtocolConfig::new(id, orderer_ids.clone());
        let protocol = match spec.consensus {
            ConsensusKind::Sequencer => {
                AnyConsensus::sequencer(protocol_cfg, spec.consensus_timeout)
            }
            ConsensusKind::Pbft => AnyConsensus::pbft(protocol_cfg, spec.consensus_timeout),
        };
        let graph_mode = match spec.system {
            SystemKind::Oxii => Some(spec.depgraph_mode),
            SystemKind::Ox | SystemKind::Xov => None,
        };
        handles.push(orderer::spawn_orderer(
            Arc::clone(&shared),
            net.endpoint(id),
            protocol,
            graph_mode,
        ));
    }
    for &id in &spec.peer_ids() {
        let endpoint = net.endpoint(id);
        let handle = match spec.system {
            SystemKind::Oxii => oxii::spawn_executor(Arc::clone(&shared), endpoint),
            SystemKind::Ox => ox::spawn_peer(Arc::clone(&shared), endpoint),
            SystemKind::Xov => unreachable!("rejected above"),
        };
        handles.push(handle);
    }

    let script_handle = fault_script.map(|script| {
        let faults = net.faults();
        // lint:allow(thread-spawn) — the fault script runs beside the threaded
        // cluster it perturbs; deterministic runs use the sim scheduler instead
        std::thread::Builder::new()
            .name("fault-script".into())
            .spawn(move || script(faults))
            .expect("spawn fault script")
    });

    let client_endpoint = net.endpoint(spec.client_node());
    driver::run_driver_count_from(&shared, &client_endpoint, rate_tps, skip, count);

    let expected = count.saturating_sub(skip) as u64;
    let deadline = shared.clock.now() + timeout;
    while shared.metrics.processed() < expected && shared.clock.now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    shared.stop.store(true, Ordering::Relaxed);
    if let Some(handle) = script_handle {
        // A crashed fault script means the faults were never injected —
        // surface it instead of letting the test pass vacuously.
        if let Err(panic) = handle.join() {
            std::panic::resume_unwind(panic);
        }
    }
    for handle in handles {
        let _ = handle.join();
    }
    let messages = net.stats().sent();
    net.shutdown();
    let mut report = shared.metrics.report();
    report.messages = messages;
    report.trace = shared.trace.snapshot();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_load(rate: f64) -> LoadSpec {
        LoadSpec {
            rate_tps: rate,
            duration: Duration::from_millis(400),
            drain: Duration::from_millis(400),
            ..LoadSpec::default()
        }
    }

    fn quick_spec(system: SystemKind) -> ClusterSpec {
        let mut spec = ClusterSpec::new(system);
        spec.block_cut = parblock_types::BlockCutConfig {
            max_txns: 20,
            max_bytes: usize::MAX,
            max_wait: Duration::from_millis(10),
        };
        spec.costs = parblock_types::ExecutionCosts::per_tx(Duration::from_micros(20));
        spec.topology.intra = Duration::from_micros(50);
        spec.exec_pool = 4;
        spec
    }

    #[test]
    fn oxii_end_to_end_commits_transactions() {
        let report = run(&quick_spec(SystemKind::Oxii), &quick_load(500.0));
        assert!(report.committed > 50, "committed = {}", report.committed);
        assert!(report.blocks > 0);
        assert_eq!(report.aborted, 0);
        assert!(!report.latencies_us.is_empty());
    }

    #[test]
    fn ox_end_to_end_commits_transactions() {
        let report = run(&quick_spec(SystemKind::Ox), &quick_load(500.0));
        assert!(report.committed > 50, "committed = {}", report.committed);
        assert_eq!(report.aborted, 0);
    }

    #[test]
    fn xov_end_to_end_commits_transactions() {
        let report = run(&quick_spec(SystemKind::Xov), &quick_load(300.0));
        assert!(report.committed > 30, "committed = {}", report.committed);
    }

    #[test]
    fn xov_aborts_under_full_contention() {
        let mut spec = quick_spec(SystemKind::Xov);
        spec.workload.contention = 1.0;
        let report = run(&spec, &quick_load(300.0));
        assert!(
            report.aborted > report.committed,
            "committed={} aborted={}",
            report.committed,
            report.aborted
        );
    }

    #[test]
    fn oxii_does_not_abort_under_full_contention() {
        let mut spec = quick_spec(SystemKind::Oxii);
        spec.workload.contention = 1.0;
        let report = run(&spec, &quick_load(300.0));
        assert_eq!(report.aborted, 0);
        assert!(report.committed > 30, "committed = {}", report.committed);
    }

    #[test]
    fn oxii_with_pbft_ordering_works() {
        let spec = quick_spec(SystemKind::Oxii).with_pbft();
        let report = run(&spec, &quick_load(300.0));
        assert!(report.committed > 30, "committed = {}", report.committed);
    }
}
