//! NEWBLOCK admission shared by every peer kind: signature/hash
//! verification and quorum counting over matching orderer announcements
//! (§IV-C: a peer "marks the new block as a valid block" after "a
//! specified number of matching new block messages", e.g. f + 1 under
//! PBFT).

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;

use parblock_crypto::{hash_wire, Signature};
use parblock_types::{Hash32, NodeId};

use crate::msg::BlockBundle;
use crate::shared::Shared;

struct Candidate {
    bundle: Arc<BlockBundle>,
    signers: HashSet<NodeId>,
}

/// Tracks NEWBLOCK announcements until a block reaches its quorum.
pub(crate) struct NewBlockQuorum {
    required: usize,
    candidates: BTreeMap<u64, HashMap<Hash32, Candidate>>,
}

impl NewBlockQuorum {
    pub(crate) fn new(required: usize) -> Self {
        NewBlockQuorum {
            required: required.max(1),
            candidates: BTreeMap::new(),
        }
    }

    /// Verifies an announcement end-to-end (transport sender = claimed
    /// orderer, known orderer, valid signature over the hash, hash
    /// matches the block) and counts it. Returns the validated bundle
    /// the moment its quorum is reached.
    pub(crate) fn admit(
        &mut self,
        shared: &Shared,
        from: NodeId,
        bundle: Arc<BlockBundle>,
        orderer: NodeId,
        sig: &Signature,
        next_needed: u64,
    ) -> Option<Arc<BlockBundle>> {
        if from != orderer || !shared.spec.orderer_ids().contains(&orderer) {
            return None;
        }
        let signer = shared.spec.node_signer(orderer);
        if !shared.keys.verify(signer, &bundle.hash.0, sig) {
            return None;
        }
        if hash_wire(&bundle.block) != bundle.hash {
            return None;
        }
        let number = bundle.block.number().0;
        if number < next_needed {
            return None; // already applied
        }
        let slot = self.candidates.entry(number).or_default();
        let candidate = slot.entry(bundle.hash).or_insert_with(|| Candidate {
            bundle,
            signers: HashSet::new(),
        });
        candidate.signers.insert(orderer);
        if candidate.signers.len() >= self.required {
            let validated = Arc::clone(&candidate.bundle);
            self.candidates.remove(&number);
            Some(validated)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use parblock_types::{Block, BlockNumber};

    use crate::cluster::{ClusterSpec, SystemKind};

    use super::*;

    fn setup() -> (Arc<Shared>, Arc<BlockBundle>) {
        let mut spec = ClusterSpec::new(SystemKind::Oxii);
        spec.consensus = crate::cluster::ConsensusKind::Pbft;
        spec.orderers = 4;
        let shared = Shared::new(spec);
        let block = Block::new(BlockNumber(1), parblock_ledger::Ledger::genesis_hash(), vec![]);
        let hash = hash_wire(&block);
        let bundle = Arc::new(BlockBundle {
            block,
            graph: None,
            hash,
        });
        (shared, bundle)
    }

    fn announce(
        quorum: &mut NewBlockQuorum,
        shared: &Shared,
        bundle: &Arc<BlockBundle>,
        orderer: NodeId,
    ) -> Option<Arc<BlockBundle>> {
        let sig = shared
            .keys
            .sign(shared.spec.node_signer(orderer), &bundle.hash.0);
        quorum.admit(shared, orderer, Arc::clone(bundle), orderer, &sig, 1)
    }

    #[test]
    fn quorum_requires_distinct_orderers() {
        let (shared, bundle) = setup();
        let mut quorum = NewBlockQuorum::new(2);
        assert!(announce(&mut quorum, &shared, &bundle, NodeId(0)).is_none());
        // Duplicate from the same orderer does not help.
        assert!(announce(&mut quorum, &shared, &bundle, NodeId(0)).is_none());
        assert!(announce(&mut quorum, &shared, &bundle, NodeId(1)).is_some());
    }

    #[test]
    fn forged_sender_and_bad_signature_rejected() {
        let (shared, bundle) = setup();
        let mut quorum = NewBlockQuorum::new(1);
        // Transport sender differs from the claimed orderer.
        let sig = shared
            .keys
            .sign(shared.spec.node_signer(NodeId(0)), &bundle.hash.0);
        assert!(quorum
            .admit(&shared, NodeId(3), Arc::clone(&bundle), NodeId(0), &sig, 1)
            .is_none());
        // Signature from the wrong key.
        let bad_sig = shared
            .keys
            .sign(shared.spec.node_signer(NodeId(1)), &bundle.hash.0);
        assert!(quorum
            .admit(&shared, NodeId(0), Arc::clone(&bundle), NodeId(0), &bad_sig, 1)
            .is_none());
        // Non-orderer announcer.
        let sig9 = shared
            .keys
            .sign(shared.spec.node_signer(NodeId(5)), &bundle.hash.0);
        assert!(quorum
            .admit(&shared, NodeId(5), Arc::clone(&bundle), NodeId(5), &sig9, 1)
            .is_none());
    }

    #[test]
    fn stale_blocks_rejected() {
        let (shared, bundle) = setup();
        let mut quorum = NewBlockQuorum::new(1);
        let sig = shared
            .keys
            .sign(shared.spec.node_signer(NodeId(0)), &bundle.hash.0);
        // next_needed = 2 > block number 1.
        assert!(quorum
            .admit(&shared, NodeId(0), bundle, NodeId(0), &sig, 2)
            .is_none());
    }

    #[test]
    fn tampered_block_content_rejected() {
        let (shared, bundle) = setup();
        let mut quorum = NewBlockQuorum::new(1);
        // Re-wrap with a mismatching hash.
        let tampered = Arc::new(BlockBundle {
            block: bundle.block.clone(),
            graph: None,
            hash: Hash32([9; 32]),
        });
        let sig = shared
            .keys
            .sign(shared.spec.node_signer(NodeId(0)), &tampered.hash.0);
        assert!(quorum
            .admit(&shared, NodeId(0), tampered, NodeId(0), &sig, 1)
            .is_none());
    }
}
