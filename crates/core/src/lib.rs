//! ParBlockchain: a permissioned blockchain in the OXII paradigm (§IV),
//! plus the two baselines the paper evaluates against.
//!
//! Three complete systems share the same substrates (network, crypto,
//! ledger, contracts, workload):
//!
//! * [`oxii`] — **ParBlockchain**: clients → orderers (consensus + block
//!   cutting + dependency-graph generation) → executors running the three
//!   concurrent procedures of §IV-C (execute following the graph,
//!   multicast cut-based COMMIT messages, update state on τ(A) matching
//!   results).
//! * [`ox`] — the classic order-execute paradigm: order first, then every
//!   peer executes sequentially.
//! * [`xov`] — the execute-order-validate paradigm of Hyperledger Fabric:
//!   clients gather endorsements, orderers sequence envelopes, every peer
//!   validates read versions and aborts stale transactions.
//!
//! The [`runner`] module exposes a uniform experiment API used by the
//! examples and the benchmark harness:
//!
//! ```no_run
//! use std::time::Duration;
//! use parblockchain::{run, ClusterSpec, LoadSpec, SystemKind};
//!
//! let spec = ClusterSpec::new(SystemKind::Oxii);
//! let load = LoadSpec {
//!     rate_tps: 2_000.0,
//!     duration: Duration::from_secs(2),
//!     ..LoadSpec::default()
//! };
//! let report = run(&spec, &load);
//! println!("{} tx/s at {:?} avg latency", report.throughput_tps(), report.avg_latency());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod cluster;
pub mod cutter;
mod driver;
mod durability;
pub mod hostcons;
pub mod metrics;
pub mod msg;
mod orderer;
pub mod ox;
pub mod oxii;
mod pool;
mod quorum;
pub mod runner;
pub mod saturate;
mod shared;
pub mod sim;
pub mod xov;

pub use cluster::{
    ClusterSpec, CommitFlush, ConsensusKind, DurabilityMode, GraphConstruction, MovedGroup,
    SystemKind, TopologySpec,
};
pub use parblock_types::ExecutionMode;
pub use metrics::{Metrics, RunReport};
pub use parblock_trace::{
    Histogram, Stage, StagePair, TraceConfig, TraceRecorder, TraceReport, TxTimeline, STAGE_COUNT,
};
pub use parblock_types::ArrivalProcess;
pub use runner::{run, run_fixed, run_fixed_from, run_fixed_with_faults, LoadSpec};
pub use saturate::{
    saturate, saturate_sim, SaturateConfig, SaturateOutcome, SaturatePoint, StageSummary,
};
pub use sim::{
    run_sim, FaultEvent, FaultKind, FaultPlan, OrdererOutcome, ReplicaOutcome, SimConfig,
    SimOutcome,
};
