//! The client load driver for OX and OXII: rate-paced REQUEST submission
//! straight to the ordering service (§IV-B: "clients send requests to the
//! orderer nodes").

use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use parblock_net::Endpoint;
use parblock_types::wire::Wire;
use parblock_types::Transaction;
use parblock_workload::WorkloadGen;

use crate::msg::Msg;
use crate::shared::Shared;

/// Submission pacing tick.
const TICK: Duration = Duration::from_millis(1);

/// Runs an open-loop driver: `rate_tps` transactions per second for
/// `duration`, then returns (commits continue to drain afterwards).
pub(crate) fn run_driver(
    shared: &Arc<Shared>,
    endpoint: &Endpoint<Msg>,
    rate_tps: f64,
    duration: Duration,
) {
    run_driver_inner(shared, endpoint, rate_tps, Some(duration), None, 0);
}

/// Submits transactions `[skip, count)` of the deterministic workload
/// stream at `rate_tps`: the first `skip` are generated and discarded
/// (they are already in the recovered chain of a resumed cluster), the
/// rest are submitted.
pub(crate) fn run_driver_count_from(
    shared: &Arc<Shared>,
    endpoint: &Endpoint<Msg>,
    rate_tps: f64,
    skip: usize,
    count: usize,
) {
    run_driver_inner(
        shared,
        endpoint,
        rate_tps,
        None,
        Some(count.saturating_sub(skip)),
        skip,
    );
}

fn run_driver_inner(
    shared: &Arc<Shared>,
    endpoint: &Endpoint<Msg>,
    rate_tps: f64,
    duration: Option<Duration>,
    count: Option<usize>,
    skip: usize,
) {
    let mut gen = WorkloadGen::new(shared.spec.workload_config());
    let mut buffer: VecDeque<Transaction> = VecDeque::new();
    // Fast-forward the deterministic stream past the already-committed
    // prefix without submitting (or timing) it.
    let mut to_skip = skip;
    while to_skip > 0 {
        if buffer.is_empty() {
            buffer.extend(gen.window());
        }
        let drop = to_skip.min(buffer.len());
        buffer.drain(..drop);
        to_skip -= drop;
    }
    let entry = shared.spec.entry_orderer();
    let per_tick = rate_tps * TICK.as_secs_f64();
    let mut acc = 0.0f64;
    let mut sent = 0usize;
    let start = shared.clock.now();

    loop {
        if shared.stop.load(Ordering::Relaxed) {
            return;
        }
        if duration.is_some_and(|d| shared.clock.now().duration_since(start) >= d) {
            return;
        }
        if count.is_some_and(|c| sent >= c) {
            return;
        }
        let tick_start = shared.clock.now();
        acc += per_tick;
        let mut n = acc.floor() as usize;
        acc -= n as f64;
        if let Some(c) = count {
            n = n.min(c - sent);
        }
        for _ in 0..n {
            let tx = match buffer.pop_front() {
                Some(tx) => tx,
                None => {
                    buffer.extend(gen.window());
                    buffer.pop_front().expect("window is non-empty")
                }
            };
            submit(shared, endpoint, entry, tx);
            sent += 1;
        }
        let elapsed = shared.clock.now().duration_since(tick_start);
        if elapsed < TICK {
            std::thread::sleep(TICK - elapsed);
        }
    }
}

pub(crate) fn submit(
    shared: &Arc<Shared>,
    endpoint: &Endpoint<Msg>,
    entry: parblock_types::NodeId,
    tx: Transaction,
) {
    let signer = shared.spec.client_signer(tx.client());
    let sig = shared.keys.sign(signer, &tx.wire_bytes());
    shared.metrics.record_submit(tx.id());
    endpoint.send(entry, Msg::Request { tx, sig });
}
