//! The client load driver for OX and OXII: rate-paced REQUEST submission
//! straight to the ordering service (§IV-B: "clients send requests to the
//! orderer nodes").
//!
//! # Pacing
//!
//! The driver is open-loop against an **absolute intended-arrival
//! schedule**: the full schedule (arrival offset + transaction) is
//! materialised before the first send, and the paced loop sleeps toward
//! each intended instant, submitting late arrivals back-to-back when it
//! falls behind. Two classes of bug shaped this design:
//!
//! * **Pacing drift.** The previous per-tick accrual (`acc += per_tick`
//!   once per loop iteration) credited exactly one tick of budget per
//!   iteration, so any iteration that overran its tick — signing bursts,
//!   scheduler preemption — silently stretched the schedule and the
//!   achieved rate fell below the offered rate without anything
//!   reporting it. An absolute schedule cannot drift: lateness is
//!   caught up, not forgotten.
//! * **Generation stalls.** Workload generation used to run inside the
//!   paced loop (refilling a window buffer between sends), so a slow
//!   window materialisation stalled the submit path and showed up as
//!   tail latency of the *system*. Generation and signing inputs are now
//!   prepared entirely off the hot path.
//!
//! Lateness that does occur is charged honestly: every submission is
//! stamped with its intended arrival ([`crate::metrics::Metrics::record_submit_at`]),
//! so driver overruns inflate the reported latency instead of hiding it,
//! and are counted separately as `driver_overruns` for self-checks.

use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parblock_net::Endpoint;
use parblock_types::wire::Wire;
use parblock_types::{ArrivalProcess, Transaction};
use parblock_workload::{ArrivalGen, WorkloadGen};

use crate::msg::Msg;
use crate::runner::LoadSpec;
use crate::shared::Shared;

/// Longest single sleep of the paced loop — the stop flag is re-checked
/// at least this often.
const TICK: Duration = Duration::from_millis(1);

/// Within this distance of the intended arrival the driver yields
/// instead of sleeping: `thread::sleep` overshoots by whole scheduler
/// ticks (commonly 1–4 ms), which would turn every sub-millisecond gap
/// into a counted overrun. Yielding (rather than spinning) keeps the
/// cluster runnable on low-core hosts — residual lag there is expected,
/// counted, and charged to the latency samples rather than hidden.
const SPIN_THRESHOLD: Duration = Duration::from_millis(2);

/// Runs an open-loop driver: the arrival schedule of `load` (rate,
/// arrival process, duration), anchored at `start`, then returns
/// (commits continue to drain afterwards). Arrivals beyond
/// `load.max_outstanding` in-flight transactions are shed.
pub(crate) fn run_driver(
    shared: &Arc<Shared>,
    endpoint: &Endpoint<Msg>,
    load: &LoadSpec,
    start: Instant,
) {
    let offsets = ArrivalGen::new(load.arrival, load.rate_tps, shared.spec.seed)
        .take_until(load.duration);
    run_schedule(shared, endpoint, &offsets, 0, start, load.max_outstanding);
}

/// Submits transactions `[skip, count)` of the deterministic workload
/// stream at `rate_tps` with uniform spacing: the first `skip` are
/// generated and discarded (they are already in the recovered chain of a
/// resumed cluster), the rest are submitted. No shedding — fixed-count
/// runs need the exact set.
pub(crate) fn run_driver_count_from(
    shared: &Arc<Shared>,
    endpoint: &Endpoint<Msg>,
    rate_tps: f64,
    skip: usize,
    count: usize,
) {
    let n = count.saturating_sub(skip);
    let mut gen = ArrivalGen::new(ArrivalProcess::Uniform, rate_tps, shared.spec.seed);
    let offsets: Vec<Duration> = (0..n).map(|_| gen.next_offset()).collect();
    let start = shared.clock.now();
    run_schedule(shared, endpoint, &offsets, skip, start, None);
}

/// Paces `offsets.len()` transactions of the workload stream (after
/// discarding the first `skip`) so that transaction `i` is submitted at
/// `start + offsets[i]`, or as soon after as the driver manages.
fn run_schedule(
    shared: &Arc<Shared>,
    endpoint: &Endpoint<Msg>,
    offsets: &[Duration],
    skip: usize,
    start: Instant,
    max_outstanding: Option<u64>,
) {
    // Materialise the whole transaction stream before pacing begins:
    // generation never runs on the hot submit path.
    let mut gen = WorkloadGen::new(shared.spec.workload_config());
    let mut buffer: VecDeque<Transaction> = VecDeque::new();
    let mut to_skip = skip;
    while to_skip > 0 {
        if buffer.is_empty() {
            buffer.extend(gen.window());
        }
        let drop = to_skip.min(buffer.len());
        buffer.drain(..drop);
        to_skip -= drop;
    }
    let mut txs: Vec<Transaction> = Vec::with_capacity(offsets.len());
    while txs.len() < offsets.len() {
        if buffer.is_empty() {
            buffer.extend(gen.window());
        }
        let take = buffer.len().min(offsets.len() - txs.len());
        txs.extend(buffer.drain(..take));
    }

    let entry = shared.spec.entry_orderer();
    for (&offset, tx) in offsets.iter().zip(txs) {
        let intended = start + offset;
        // Sleep toward the intended arrival in short chunks (the stop
        // flag stays responsive), spinning out the last stretch where
        // sleep granularity would overshoot. When behind schedule, fall
        // through and submit immediately — due arrivals go out
        // back-to-back and the lag lands in the latency samples, not in
        // a stretched schedule.
        loop {
            if shared.stop.load(Ordering::Relaxed) {
                return;
            }
            let now = shared.clock.now();
            if now >= intended {
                break;
            }
            let remaining = intended - now;
            if remaining > SPIN_THRESHOLD {
                std::thread::sleep((remaining - SPIN_THRESHOLD).min(TICK));
            } else {
                std::thread::yield_now();
            }
        }
        if let Some(cap) = max_outstanding {
            if shared.metrics.outstanding() >= cap {
                shared.metrics.record_admission_shed();
                continue;
            }
        }
        submit_at(shared, endpoint, entry, tx, intended);
    }
}

pub(crate) fn submit_at(
    shared: &Arc<Shared>,
    endpoint: &Endpoint<Msg>,
    entry: parblock_types::NodeId,
    tx: Transaction,
    intended: Instant,
) {
    let signer = shared.spec.client_signer(tx.client());
    let sig = shared.keys.sign(signer, &tx.wire_bytes());
    shared.metrics.record_submit_at(tx.id(), intended);
    // The trace stamps the *intended* arrival too: driver lag widens the
    // submitted→sequenced gap instead of disappearing (coordinated
    // omission, see the module docs).
    shared
        .trace
        .record_at(tx.id(), parblock_trace::Stage::Submitted, intended);
    endpoint.send(entry, Msg::Request { tx, sig });
}
