//! The order-execute (OX) baseline (§II, §V): orderers establish a total
//! order, then *every* peer executes every transaction sequentially with
//! its local copy of every smart contract.
//!
//! There is no commit-message exchange: each peer's sequential execution
//! is self-sufficient (this is exactly why OX has no confidentiality and
//! no parallelism).

use std::collections::BTreeMap;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use parblock_contracts::ExecOutcome;
use parblock_crypto::Signature;
use parblock_ledger::{KvState, Ledger, Version};
use parblock_net::Endpoint;
use parblock_types::NodeId;

use crate::msg::{BlockBundle, Msg};
use crate::quorum::NewBlockQuorum;
use crate::shared::Shared;

const IDLE_TICK: Duration = Duration::from_micros(500);

/// An OX peer: validates NEWBLOCK quorums and executes blocks serially.
pub(crate) struct OxPeer {
    shared: Arc<Shared>,
    endpoint: Endpoint<Msg>,
    state: KvState,
    ledger: Ledger,
    admission: NewBlockQuorum,
    ready: BTreeMap<u64, Arc<BlockBundle>>,
    is_observer: bool,
}

impl OxPeer {
    pub(crate) fn new(shared: Arc<Shared>, endpoint: Endpoint<Msg>) -> Self {
        let state = KvState::with_genesis(shared.genesis.iter().cloned());
        let is_observer = endpoint.id() == shared.spec.observer();
        let admission = NewBlockQuorum::new(shared.spec.newblock_quorum());
        OxPeer {
            shared,
            endpoint,
            state,
            ledger: Ledger::new(),
            admission,
            ready: BTreeMap::new(),
            is_observer,
        }
    }

    pub(crate) fn run(mut self) {
        while !self.shared.stop.load(Ordering::Relaxed) {
            if let Ok(envelope) = self.endpoint.recv_timeout(IDLE_TICK) {
                if let Msg::NewBlock {
                    bundle,
                    orderer,
                    sig,
                } = envelope.msg
                {
                    self.on_new_block(envelope.from, bundle, orderer, &sig);
                }
            }
            self.execute_ready_blocks();
        }
    }

    fn on_new_block(
        &mut self,
        from: NodeId,
        bundle: Arc<BlockBundle>,
        orderer: NodeId,
        sig: &Signature,
    ) {
        let next_needed = self.ledger.next_number().0;
        if let Some(validated) =
            self.admission
                .admit(&self.shared, from, bundle, orderer, sig, next_needed)
        {
            self.ready.insert(validated.block.number().0, validated);
        }
    }

    fn execute_ready_blocks(&mut self) {
        loop {
            let next = self.ledger.next_number().0;
            let Some(bundle) = self.ready.remove(&next) else {
                return;
            };
            self.execute_block(&bundle);
            if self.shared.stop.load(Ordering::Relaxed) {
                return;
            }
        }
    }

    /// §II: "the node executes the transactions within a block
    /// sequentially."
    fn execute_block(&mut self, bundle: &Arc<BlockBundle>) {
        let per_tx = self.shared.spec.costs.per_tx;
        let per_block = self.shared.spec.costs.per_block;
        if !per_block.is_zero() {
            std::thread::sleep(per_block);
        }
        for (seq, tx) in bundle.block.iter_seq() {
            if !per_tx.is_zero() {
                std::thread::sleep(per_tx);
            }
            let Ok(contract) = self.shared.registry.contract(tx.app()) else {
                continue;
            };
            let outcome = contract.execute(tx, &self.state);
            match outcome {
                ExecOutcome::Commit(writes) => {
                    let version = Version::new(bundle.block.number(), seq);
                    self.state.apply(writes, version);
                    if self.is_observer {
                        self.shared.metrics.record_commit(tx.id());
                    }
                }
                ExecOutcome::Abort(_) => {
                    if self.is_observer {
                        self.shared.metrics.record_abort(tx.id());
                    }
                }
            }
        }
        self.ledger
            .append(bundle.block.clone())
            .expect("blocks arrive in order with verified links");
        if self.is_observer {
            self.shared.metrics.record_block();
            if self.shared.spec.capture_state {
                self.shared.metrics.set_state_digest(self.state.digest());
            }
        }
    }
}

/// Spawns an OX peer thread.
pub(crate) fn spawn_peer(
    shared: Arc<Shared>,
    endpoint: Endpoint<Msg>,
) -> std::thread::JoinHandle<()> {
    let name = format!("ox-peer-{}", endpoint.id());
    // lint:allow(thread-spawn) — node threads are the threaded runner's
    // execution model; the deterministic harness uses the sim scheduler
    std::thread::Builder::new()
        .name(name)
        .spawn(move || OxPeer::new(shared, endpoint).run())
        .expect("spawn ox peer")
}
