//! Cluster specification: node layout, topology, application deployment.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use parblock_contracts::{AccountingContract, AppRegistry};
use parblock_crypto::{KeyRegistry, SignerId};
use parblock_depgraph::DependencyMode;
use parblock_net::{DcId, Topology};
use parblock_types::{
    AppId, BlockCutConfig, ClientId, CommitPolicy, DurabilityConfig, ExecutionCosts,
    ExecutionMode, NodeId,
};
use parblock_workload::WorkloadConfig;

pub use crate::cutter::GraphConstruction;

/// Which of the three systems to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SystemKind {
    /// Order-execute: sequential execution on every peer.
    Ox,
    /// Execute-order-validate (Fabric-style).
    Xov,
    /// OXII / ParBlockchain.
    Oxii,
}

impl std::fmt::Display for SystemKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            SystemKind::Ox => "OX",
            SystemKind::Xov => "XOV",
            SystemKind::Oxii => "OXII",
        };
        f.write_str(s)
    }
}

/// Which ordering protocol the orderers run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConsensusKind {
    /// Kafka-like CFT sequencer (the paper's evaluation setup).
    Sequencer,
    /// PBFT (the paper's Fig 2 setup).
    Pbft,
}

/// When OXII executors multicast their COMMIT messages (§IV-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CommitFlush {
    /// Algorithm 2: buffer results, multicast when a result is needed by
    /// another application's agents (and at end of share).
    #[default]
    Cut,
    /// Naive alternative the paper rejects: one commit message per
    /// transaction ("the number of exchanged commit messages will be
    /// large … n·m messages for the block").
    PerTransaction,
}

/// The node group moved to the far datacenter in the Fig 7 experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MovedGroup {
    /// Fig 7(a).
    Clients,
    /// Fig 7(b).
    Orderers,
    /// Fig 7(c).
    Executors,
    /// Fig 7(d).
    NonExecutors,
}

/// Where OXII nodes persist their ledger and state (DESIGN.md §9).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DurabilityMode {
    /// No persistence: the seed behaviour. A crashed node loses its
    /// ledger and state.
    InMemory,
    /// Durable `parblock_store` under `data_dir/node-<id>` per node:
    /// write-ahead log, block store, checkpoints, crash recovery.
    OnDisk {
        /// The cluster data directory.
        data_dir: PathBuf,
        /// When `true`, each run starts from an empty store (existing
        /// node directories are wiped at cluster startup). Set by the
        /// `PARBLOCK_DATA_DIR` env default so unrelated runs sharing a
        /// spec never recover each other's state; explicit
        /// crash-recovery setups clear it.
        fresh: bool,
    },
}

impl DurabilityMode {
    /// Stable on-disk durability under `data_dir` (recovery across
    /// runs: the node directories are reused, never wiped).
    #[must_use]
    pub fn on_disk(data_dir: impl Into<PathBuf>) -> Self {
        DurabilityMode::OnDisk {
            data_dir: data_dir.into(),
            fresh: false,
        }
    }

    /// `true` for any on-disk variant.
    #[must_use]
    pub fn is_on_disk(&self) -> bool {
        matches!(self, DurabilityMode::OnDisk { .. })
    }
}

/// The default durability mode: when `PARBLOCK_DATA_DIR` is set (the CI
/// durability job points it at a tempdir), every cluster persists under
/// a unique fresh subdirectory of it; otherwise in-memory.
fn env_durability() -> DurabilityMode {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    match std::env::var("PARBLOCK_DATA_DIR") {
        Ok(base) if !base.trim().is_empty() => {
            let n = COUNTER.fetch_add(1, Ordering::Relaxed);
            DurabilityMode::OnDisk {
                data_dir: PathBuf::from(base.trim())
                    .join(format!("run-{}-{n}", std::process::id())),
                fresh: true,
            }
        }
        _ => DurabilityMode::InMemory,
    }
}

/// The default executor pipeline depth: the `PARBLOCK_PIPELINE_DEPTH`
/// environment variable when it parses to a positive integer (the CI
/// test matrix sets it), 2 otherwise.
fn env_pipeline_depth() -> usize {
    std::env::var("PARBLOCK_PIPELINE_DEPTH")
        .ok()
        .and_then(|raw| raw.trim().parse::<usize>().ok())
        .filter(|&depth| depth >= 1)
        .unwrap_or(2)
}

/// The default execution mode: the `PARBLOCK_EXEC_MODE` environment
/// variable when it parses (`pessimistic` / `optimistic` / `hybrid` —
/// the CI test matrix sets it), pessimistic otherwise.
fn env_exec_mode() -> ExecutionMode {
    std::env::var("PARBLOCK_EXEC_MODE")
        .ok()
        .and_then(|raw| ExecutionMode::parse(&raw))
        .unwrap_or_default()
}

/// The default mailbox engine: the `PARBLOCK_LEGACY_MAILBOXES` environment
/// variable when it parses to a boolean (`1`/`true` pins the pre-§15
/// single-queue engine; the equivalence battery sets it), sharded otherwise.
fn env_legacy_mailboxes() -> bool {
    std::env::var("PARBLOCK_LEGACY_MAILBOXES")
        .ok()
        .map(|raw| matches!(raw.trim(), "1" | "true" | "yes"))
        .unwrap_or(false)
}

/// Datacenter latency model for an experiment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopologySpec {
    /// Link latency within a datacenter.
    pub intra: Duration,
    /// Link latency between the two datacenters.
    pub inter: Duration,
    /// The group placed in the far datacenter, if any.
    pub moved: Option<MovedGroup>,
}

impl Default for TopologySpec {
    fn default() -> Self {
        TopologySpec {
            intra: Duration::from_micros(200),
            inter: Duration::from_millis(10),
            moved: None,
        }
    }
}

/// Full specification of a simulated cluster.
#[derive(Debug, Clone)]
pub struct ClusterSpec {
    /// The system under test.
    pub system: SystemKind,
    /// Ordering protocol.
    pub consensus: ConsensusKind,
    /// Number of orderer replicas (3 for the sequencer, 4 for PBFT).
    pub orderers: usize,
    /// Number of applications (the paper uses 3).
    pub apps: usize,
    /// Executor (endorser) nodes per application; τ(A) equals this.
    pub executors_per_app: usize,
    /// Passive peers that execute nothing (Fig 7d).
    pub non_executors: usize,
    /// Block-cutting conditions.
    pub block_cut: BlockCutConfig,
    /// Synthetic execution cost model.
    pub costs: ExecutionCosts,
    /// Dependency-graph construction mode (OXII only).
    pub depgraph_mode: DependencyMode,
    /// When the orderers compute each block's graph (OXII only):
    /// incrementally over the transaction stream (default) or as a batch
    /// rebuild at cut time (the `ablation-streaming` baseline).
    pub graph_construction: GraphConstruction,
    /// Workload shape (contention etc.). `block_size` is kept in sync
    /// with `block_cut.max_txns` by [`ClusterSpec::workload_config`].
    pub workload: WorkloadConfig,
    /// Latency topology.
    pub topology: TopologySpec,
    /// Worker threads per OXII executor.
    pub exec_pool: usize,
    /// How many blocks an OXII executor may keep **in flight** at once,
    /// executing block `n + 1` over multi-version snapshots while block
    /// `n`'s tail still commits (§III-A's multi-version adaptation).
    /// `1` reproduces the paper's strict block-at-a-time barrier (the
    /// `ablation-pipeline` baseline). Defaults to 2, or to the
    /// `PARBLOCK_PIPELINE_DEPTH` environment variable when set (the CI
    /// test matrix pins 1 and 4); values below 1 are treated as 1.
    pub exec_pipeline_depth: usize,
    /// How OXII executors schedule a block's transactions: the paper's
    /// pessimistic dependency-graph engine, the Block-STM optimistic
    /// engine (speculate / validate / re-execute), or a per-block hybrid
    /// choice driven by the shipped graph's conflict density. Both
    /// engines commit byte-identical ledgers and states; the mode is a
    /// performance knob (`repro ablation-mode`). Defaults to the
    /// `PARBLOCK_EXEC_MODE` environment variable when set (the CI test
    /// matrix pins all three spellings), pessimistic otherwise.
    pub execution_mode: ExecutionMode,
    /// τ(A) override: matching results required to commit a transaction.
    /// `None` (default) requires all of an application's agents; fault
    /// tests lower it so a redundant agent set tolerates a crashed or
    /// silenced agent. Clamped to `1..=executors_per_app`.
    pub commit_quorum: Option<usize>,
    /// Maximum transactions per consensus batch.
    pub batch_max: usize,
    /// Consensus view-change timeout.
    pub consensus_timeout: Duration,
    /// Where OXII nodes (orderers and executor peers) persist their
    /// chain and state. Defaults to `PARBLOCK_DATA_DIR` when set (a
    /// fresh unique subdirectory per spec), in-memory otherwise.
    pub durability: DurabilityMode,
    /// Fsync batching and checkpoint cadence for on-disk durability.
    pub durability_config: DurabilityConfig,
    /// When set, the observer records a digest of the blockchain state
    /// after every block, exposed as `RunReport::state_digest` (used by
    /// correctness tests; costs one state hash per block).
    pub capture_state: bool,
    /// OXII commit-message batching strategy (ablation knob).
    pub commit_flush: CommitFlush,
    /// Per-transaction lifecycle tracing (DESIGN.md §14). Disabled by
    /// default: recording costs one branch per stage and the
    /// `RunReport` digest stays byte-identical to pre-tracing runs.
    pub trace: parblock_trace::TraceConfig,
    /// Ablation knob: run the network on the pre-§15 single-queue
    /// mailbox engine (one global lock + condvar, one wakeup per
    /// enqueue) instead of the per-destination sharded engine. Both
    /// engines deliver bit-identical schedules; the equivalence battery
    /// pins that. Defaults to the `PARBLOCK_LEGACY_MAILBOXES`
    /// environment variable when set, sharded otherwise.
    pub legacy_mailboxes: bool,
    /// RNG seed.
    pub seed: u64,
}

impl ClusterSpec {
    /// A paper-like default: 3 orderers (sequencer), 3 applications with
    /// one executor each, one non-executor, 200-transaction blocks.
    #[must_use]
    pub fn new(system: SystemKind) -> Self {
        ClusterSpec {
            system,
            consensus: ConsensusKind::Sequencer,
            orderers: 3,
            apps: 3,
            executors_per_app: 1,
            non_executors: 1,
            block_cut: BlockCutConfig::default(),
            costs: ExecutionCosts::default(),
            depgraph_mode: DependencyMode::Reduced,
            graph_construction: GraphConstruction::default(),
            workload: WorkloadConfig::default(),
            topology: TopologySpec::default(),
            exec_pool: 16,
            exec_pipeline_depth: env_pipeline_depth(),
            execution_mode: env_exec_mode(),
            commit_quorum: None,
            batch_max: 64,
            consensus_timeout: Duration::from_secs(5),
            durability: env_durability(),
            durability_config: DurabilityConfig::default(),
            capture_state: false,
            commit_flush: CommitFlush::default(),
            trace: parblock_trace::TraceConfig::default(),
            legacy_mailboxes: env_legacy_mailboxes(),
            seed: 42,
        }
    }

    /// Switches to PBFT ordering with 4 orderers.
    #[must_use]
    pub fn with_pbft(mut self) -> Self {
        self.consensus = ConsensusKind::Pbft;
        self.orderers = 4;
        self
    }

    // ---- node layout -----------------------------------------------

    /// Orderer node ids: `0..orderers`.
    #[must_use]
    pub fn orderer_ids(&self) -> Vec<NodeId> {
        (0..self.orderers as u32).map(NodeId).collect()
    }

    /// Executor node ids, grouped `apps × executors_per_app`, following
    /// the orderers.
    #[must_use]
    pub fn executor_ids(&self) -> Vec<NodeId> {
        let base = self.orderers as u32;
        (0..(self.apps * self.executors_per_app) as u32)
            .map(|i| NodeId(base + i))
            .collect()
    }

    /// Non-executor peer ids, following the executors.
    #[must_use]
    pub fn non_executor_ids(&self) -> Vec<NodeId> {
        let base = (self.orderers + self.apps * self.executors_per_app) as u32;
        (0..self.non_executors as u32).map(|i| NodeId(base + i)).collect()
    }

    /// All peers that receive blocks (executors + non-executors).
    #[must_use]
    pub fn peer_ids(&self) -> Vec<NodeId> {
        let mut ids = self.executor_ids();
        ids.extend(self.non_executor_ids());
        ids
    }

    /// The client driver's node id (one shared endpoint for all clients).
    #[must_use]
    pub fn client_node(&self) -> NodeId {
        NodeId(
            (self.orderers + self.apps * self.executors_per_app + self.non_executors) as u32,
        )
    }

    /// Total number of network nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.orderers + self.apps * self.executors_per_app + self.non_executors + 1
    }

    /// The peer whose commits are measured (the first executor).
    #[must_use]
    pub fn observer(&self) -> NodeId {
        self.executor_ids()[0]
    }

    /// The orderer clients submit to (leader of view/epoch 0).
    #[must_use]
    pub fn entry_orderer(&self) -> NodeId {
        self.orderer_ids()[0]
    }

    // ---- deployment -------------------------------------------------

    /// The agents of application `i`: executors `i·k .. (i+1)·k`.
    #[must_use]
    pub fn agents_of(&self, app: AppId) -> Vec<NodeId> {
        let executors = self.executor_ids();
        let k = self.executors_per_app;
        let start = app.0 as usize * k;
        executors[start..start + k].to_vec()
    }

    /// Builds the application registry: one accounting contract per
    /// application (the paper's §V workload), agents per
    /// [`ClusterSpec::agents_of`].
    #[must_use]
    pub fn registry(&self) -> AppRegistry {
        let mut registry = AppRegistry::new();
        for i in 0..self.apps as u16 {
            let app = AppId(i);
            registry.deploy(
                Arc::new(AccountingContract::new(app)),
                self.agents_of(app),
            );
        }
        registry
    }

    /// τ(A): matching results required per application — every agent by
    /// default, or the [`ClusterSpec::commit_quorum`] override clamped to
    /// `1..=executors_per_app`.
    #[must_use]
    pub fn commit_policy(&self) -> CommitPolicy {
        let tau = self
            .commit_quorum
            .unwrap_or(self.executors_per_app)
            .clamp(1, self.executors_per_app.max(1));
        CommitPolicy::uniform(tau)
    }

    /// How many matching NEWBLOCK copies a peer waits for (`f + 1` under
    /// PBFT, 1 under the crash-only sequencer).
    #[must_use]
    pub fn newblock_quorum(&self) -> usize {
        match self.consensus {
            ConsensusKind::Sequencer => 1,
            ConsensusKind::Pbft => (self.orderers - 1) / 3 + 1,
        }
    }

    /// The network topology with the configured group in the far DC.
    #[must_use]
    pub fn build_topology(&self) -> Topology {
        let mut topo = Topology::two_dc(self.topology.intra, self.topology.inter);
        let far: Vec<NodeId> = match self.topology.moved {
            None => Vec::new(),
            Some(MovedGroup::Clients) => vec![self.client_node()],
            Some(MovedGroup::Orderers) => self.orderer_ids(),
            Some(MovedGroup::Executors) => self.executor_ids(),
            Some(MovedGroup::NonExecutors) => self.non_executor_ids(),
        };
        topo.place_all(far, DcId(1));
        topo
    }

    /// The workload configuration, with the conflict-shaping window tied
    /// to the block size and app list matching the deployment.
    #[must_use]
    pub fn workload_config(&self) -> WorkloadConfig {
        let mut cfg = self.workload.clone();
        cfg.apps = (0..self.apps as u16).map(AppId).collect();
        cfg.block_size = self.block_cut.max_txns.clamp(1, 4096);
        cfg.seed = self.seed;
        cfg
    }

    // ---- signers ----------------------------------------------------

    /// The signer for a node.
    #[must_use]
    pub fn node_signer(&self, node: NodeId) -> SignerId {
        SignerId(node.0)
    }

    /// The signer for a client.
    #[must_use]
    pub fn client_signer(&self, client: ClientId) -> SignerId {
        SignerId(self.node_count() as u32 + client.0)
    }

    /// A key registry covering every node and client.
    #[must_use]
    pub fn build_keys(&self) -> KeyRegistry {
        KeyRegistry::deterministic(self.node_count() as u32 + self.workload.clients)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_layout_is_contiguous_and_disjoint() {
        let spec = ClusterSpec::new(SystemKind::Oxii);
        assert_eq!(spec.orderer_ids(), vec![NodeId(0), NodeId(1), NodeId(2)]);
        assert_eq!(
            spec.executor_ids(),
            vec![NodeId(3), NodeId(4), NodeId(5)]
        );
        assert_eq!(spec.non_executor_ids(), vec![NodeId(6)]);
        assert_eq!(spec.client_node(), NodeId(7));
        assert_eq!(spec.node_count(), 8);
        assert_eq!(spec.observer(), NodeId(3));
    }

    #[test]
    fn agents_partition_executors() {
        let mut spec = ClusterSpec::new(SystemKind::Oxii);
        spec.executors_per_app = 2;
        assert_eq!(spec.agents_of(AppId(0)), vec![NodeId(3), NodeId(4)]);
        assert_eq!(spec.agents_of(AppId(2)), vec![NodeId(7), NodeId(8)]);
        assert_eq!(spec.commit_policy().required(AppId(1)), 2);
    }

    #[test]
    fn registry_matches_layout() {
        let spec = ClusterSpec::new(SystemKind::Oxii);
        let registry = spec.registry();
        assert_eq!(registry.len(), 3);
        assert!(registry.is_agent(NodeId(4), AppId(1)));
        assert!(!registry.is_agent(NodeId(4), AppId(0)));
    }

    #[test]
    fn pbft_variant_has_four_orderers_and_quorum_two() {
        let spec = ClusterSpec::new(SystemKind::Oxii).with_pbft();
        assert_eq!(spec.orderers, 4);
        assert_eq!(spec.newblock_quorum(), 2);
        assert_eq!(
            ClusterSpec::new(SystemKind::Oxii).newblock_quorum(),
            1
        );
    }

    #[test]
    fn moved_groups_land_in_far_dc() {
        let mut spec = ClusterSpec::new(SystemKind::Oxii);
        spec.topology.moved = Some(MovedGroup::Executors);
        let topo = spec.build_topology();
        assert_eq!(topo.dc_of(spec.executor_ids()[0]), DcId(1));
        assert_eq!(topo.dc_of(spec.orderer_ids()[0]), DcId(0));
        assert_eq!(topo.dc_of(spec.client_node()), DcId(0));
    }

    #[test]
    fn workload_window_follows_block_size() {
        let mut spec = ClusterSpec::new(SystemKind::Oxii);
        spec.block_cut = BlockCutConfig::with_max_txns(50);
        let cfg = spec.workload_config();
        assert_eq!(cfg.block_size, 50);
        assert_eq!(cfg.apps.len(), 3);
    }

    #[test]
    fn pipeline_depth_defaults_sane_and_quorum_clamps() {
        let mut spec = ClusterSpec::new(SystemKind::Oxii);
        assert!(spec.exec_pipeline_depth >= 1);
        spec.executors_per_app = 2;
        assert_eq!(spec.commit_policy().required(AppId(0)), 2, "default τ = all");
        spec.commit_quorum = Some(1);
        assert_eq!(spec.commit_policy().required(AppId(0)), 1);
        spec.commit_quorum = Some(99);
        assert_eq!(spec.commit_policy().required(AppId(0)), 2, "clamped to agents");
        spec.commit_quorum = Some(0);
        assert_eq!(spec.commit_policy().required(AppId(0)), 1, "clamped to ≥ 1");
    }

    #[test]
    fn durability_mode_constructors() {
        let spec = ClusterSpec::new(SystemKind::Oxii);
        // Env-independent invariant: whatever the default resolved to,
        // the explicit constructor is stable and non-fresh.
        let explicit = DurabilityMode::on_disk("/tmp/x");
        assert!(explicit.is_on_disk());
        assert_eq!(
            explicit,
            DurabilityMode::OnDisk {
                data_dir: PathBuf::from("/tmp/x"),
                fresh: false
            }
        );
        assert!(!DurabilityMode::InMemory.is_on_disk());
        assert!(spec.durability_config.flush_interval >= 1);
    }

    #[test]
    fn signers_do_not_collide() {
        let spec = ClusterSpec::new(SystemKind::Oxii);
        let node_max = spec.node_signer(spec.client_node());
        let client0 = spec.client_signer(ClientId(0));
        assert!(client0.0 > node_max.0);
        let keys = spec.build_keys();
        assert!(keys.len() >= spec.node_count());
    }

    #[test]
    fn display_names() {
        assert_eq!(SystemKind::Ox.to_string(), "OX");
        assert_eq!(SystemKind::Xov.to_string(), "XOV");
        assert_eq!(SystemKind::Oxii.to_string(), "OXII");
    }
}
