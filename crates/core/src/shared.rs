//! Context shared by every thread of a simulated cluster.

use std::sync::atomic::AtomicBool;
use std::sync::Arc;

use parblock_contracts::AppRegistry;
use parblock_crypto::KeyRegistry;
use parblock_trace::TraceRecorder;
use parblock_types::{Clock, Key, Value};
use parblock_workload::WorkloadGen;

use crate::cluster::ClusterSpec;
use crate::metrics::Metrics;

/// Immutable cluster-wide context, one `Arc` per thread.
pub(crate) struct Shared {
    pub spec: ClusterSpec,
    pub registry: AppRegistry,
    pub keys: KeyRegistry,
    pub metrics: Metrics,
    pub stop: Arc<AtomicBool>,
    pub genesis: Vec<(Key, Value)>,
    /// The cluster's time source: the wall clock under the threaded
    /// runner, a simulated clock under the deterministic scheduler
    /// (DESIGN.md §10). Every node reads *now* through this.
    pub clock: Clock,
    /// Per-transaction lifecycle recorder (DESIGN.md §14); disabled
    /// unless `spec.trace.enabled`. Stage hooks across the driver,
    /// orderer, scheduler, executors and store all write here.
    pub trace: TraceRecorder,
}

impl Shared {
    pub(crate) fn new(spec: ClusterSpec) -> Arc<Self> {
        Self::with_clock(spec, Clock::wall())
    }

    pub(crate) fn with_clock(spec: ClusterSpec, clock: Clock) -> Arc<Self> {
        // Fresh on-disk mode (the env-driven default): each run starts
        // from an empty store, so unrelated runs sharing one spec never
        // recover each other's state. Wiped once here — node threads
        // open their stores strictly after Shared exists.
        if let crate::cluster::DurabilityMode::OnDisk {
            data_dir,
            fresh: true,
        } = &spec.durability
        {
            // lint:allow(file-io) — wiping the previous run's store dir is
            // setup, not durability; the store owns all live-path file I/O
            let _ = std::fs::remove_dir_all(data_dir);
        }
        let genesis = WorkloadGen::new(spec.workload_config()).genesis();
        let trace = TraceRecorder::new(&clock, spec.trace);
        Arc::new(Shared {
            registry: spec.registry(),
            keys: spec.build_keys(),
            metrics: Metrics::with_clock_and_trace(clock.clone(), trace.clone()),
            stop: Arc::new(AtomicBool::new(false)),
            genesis,
            clock,
            trace,
            spec,
        })
    }
}
