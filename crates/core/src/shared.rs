//! Context shared by every thread of a simulated cluster.

use std::sync::atomic::AtomicBool;
use std::sync::Arc;

use parblock_contracts::AppRegistry;
use parblock_crypto::KeyRegistry;
use parblock_types::{Key, Value};
use parblock_workload::WorkloadGen;

use crate::cluster::ClusterSpec;
use crate::metrics::Metrics;

/// Immutable cluster-wide context, one `Arc` per thread.
pub(crate) struct Shared {
    pub spec: ClusterSpec,
    pub registry: AppRegistry,
    pub keys: KeyRegistry,
    pub metrics: Metrics,
    pub stop: Arc<AtomicBool>,
    pub genesis: Vec<(Key, Value)>,
}

impl Shared {
    pub(crate) fn new(spec: ClusterSpec) -> Arc<Self> {
        let genesis = WorkloadGen::new(spec.workload_config()).genesis();
        Arc::new(Shared {
            registry: spec.registry(),
            keys: spec.build_keys(),
            metrics: Metrics::new(),
            stop: Arc::new(AtomicBool::new(false)),
            genesis,
            spec,
        })
    }
}
